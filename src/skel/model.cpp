#include "skel/model.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::skel {

namespace {

bool type_matches(const Json& value, const std::string& type) {
  if (type == "int") return value.is_int();
  if (type == "double") return value.is_number();
  if (type == "string") return value.is_string();
  if (type == "bool") return value.is_bool();
  if (type == "array") return value.is_array();
  if (type == "object") return value.is_object();
  if (type == "any") return true;
  throw ValidationError("ModelSchema: unknown field type '" + type + "'");
}

/// Set a dotted path in `doc`, creating intermediate objects. Array indices
/// are not supported for defaults (defaults describe scalars/containers).
void set_path(Json& doc, std::string_view path, const Json& value) {
  Json* node = &doc;
  size_t pos = 0;
  while (true) {
    const size_t dot = path.find('.', pos);
    const std::string key{path.substr(
        pos, dot == std::string_view::npos ? std::string_view::npos : dot - pos)};
    if (dot == std::string_view::npos) {
      (*node)[key] = value;
      return;
    }
    node = &(*node)[key];
    pos = dot + 1;
  }
}

}  // namespace

ModelSchema& ModelSchema::require(std::string path, std::string type,
                                  std::string description) {
  fields_.push_back(FieldSpec{std::move(path), std::move(type), true, Json(),
                              std::move(description)});
  return *this;
}

ModelSchema& ModelSchema::optional(std::string path, std::string type,
                                   Json default_value, std::string description) {
  fields_.push_back(FieldSpec{std::move(path), std::move(type), false,
                              std::move(default_value), std::move(description)});
  return *this;
}

std::vector<std::string> ModelSchema::validate(const Json& model) const {
  std::vector<std::string> problems;
  if (!model.is_object()) {
    problems.push_back("model must be a JSON object");
    return problems;
  }
  for (const FieldSpec& field : fields_) {
    const Json* value = model.find_path(field.path);
    if (!value) {
      if (field.required) {
        std::string problem = "missing required field '" + field.path + "' (" +
                              field.type + ")";
        if (!field.description.empty()) problem += ": " + field.description;
        problems.push_back(std::move(problem));
      }
      continue;
    }
    if (!type_matches(*value, field.type)) {
      problems.push_back("field '" + field.path + "' must be " + field.type +
                         ", got " + std::string(Json::type_name(value->type())));
    }
  }
  return problems;
}

void ModelSchema::validate_or_throw(const Json& model) const {
  const std::vector<std::string> problems = validate(model);
  if (!problems.empty()) {
    throw ValidationError("model validation failed:\n  - " +
                          join(problems, "\n  - "));
  }
}

Json ModelSchema::with_defaults(const Json& model) const {
  Json out = model;
  for (const FieldSpec& field : fields_) {
    if (!field.required && !out.find_path(field.path)) {
      set_path(out, field.path, field.default_value);
    }
  }
  return out;
}

std::string ModelSchema::document() const {
  std::string out;
  for (const FieldSpec& field : fields_) {
    out += "- `" + field.path + "` (" + field.type + ", " +
           (field.required ? "required" : "optional, default " +
                                              field.default_value.dump()) +
           ")";
    if (!field.description.empty()) out += " — " + field.description;
    out += "\n";
  }
  return out;
}

Model::Model(Json document, const ModelSchema& schema) {
  schema.validate_or_throw(document);
  document_ = schema.with_defaults(document);
}

Model Model::load(const std::string& path, const ModelSchema& schema) {
  return Model(Json::parse_file(path), schema);
}

}  // namespace ff::skel
