#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ff::skel {

/// The Skel text-template engine: couples "a model of a desired action with
/// one or more textual templates that drive the creation of files that
/// implement the action" (paper Section IV). The model is a Json document;
/// templates are text with mustache-style tags:
///
///   {{path.to.value}}          substitution (dotted path, [n] indexing)
///   {{path|upper}}             filters: upper, lower, json, trim
///   {{#each items}}...{{/each}} iterate arrays; inside: {{this}}, {{@index}},
///                              {{@first}}, {{@last}}, and parent-scope
///                              lookups fall through automatically
///   {{#if cond}}...{{else}}...{{/if}}  truthiness: null/false/0/""/empty
///   {{! a comment}}            dropped from output
///   {{> partial_name}}         include a registered partial template
///
/// Templates are parsed once into a node tree; rendering walks the tree with
/// a context stack. Unknown variables are render errors (not silent empties)
/// because generated artifacts must never silently lose configuration.
class Template {
 public:
  /// Parse template text; throws ParseError with line information.
  static Template parse(std::string_view text, std::string name = "template");

  /// Render against a model. `partials` resolves {{> name}} includes.
  std::string render(const Json& model,
                     const std::map<std::string, Template>& partials = {}) const;

  const std::string& name() const noexcept { return name_; }

  /// All variable paths referenced by this template (for model validation
  /// and for documenting a template's customization surface).
  std::vector<std::string> referenced_paths() const;

  struct Node;  // implementation detail, public for the parser

 private:
  Template() = default;
  std::shared_ptr<const std::vector<Node>> nodes_;
  std::string name_;
};

/// True if a Json value counts as truthy for {{#if}}.
bool truthy(const Json& value);

/// Render a Json scalar the way substitution does (string unquoted, number
/// via canonical formatting, bool as true/false). Arrays/objects require the
/// |json filter; rendering them bare is an error.
std::string render_scalar(const Json& value);

}  // namespace ff::skel
