#include "skel/generator.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::skel {

void Generator::add_template(std::string path_template, std::string body,
                             bool executable) {
  Entry entry{"", Template::parse(path_template, path_template),
              Template::parse(body, path_template), executable};
  entries_.push_back(std::move(entry));
}

void Generator::add_partial(const std::string& name, std::string body) {
  partials_.insert_or_assign(name, Template::parse(body, name));
}

void Generator::add_template_per_item(std::string each_path,
                                      std::string path_template, std::string body,
                                      bool executable) {
  if (each_path.empty()) {
    throw ValidationError("add_template_per_item: each_path must be non-empty");
  }
  Entry entry{std::move(each_path), Template::parse(path_template, path_template),
              Template::parse(body, path_template), executable};
  entries_.push_back(std::move(entry));
}

std::vector<Artifact> Generator::generate(const Model& model) const {
  std::vector<Artifact> artifacts;
  for (const Entry& entry : entries_) {
    if (entry.each_path.empty()) {
      Artifact artifact;
      artifact.path = entry.path_template.render(model.json(), partials_);
      artifact.content = entry.body.render(model.json(), partials_);
      artifact.executable = entry.executable;
      artifacts.push_back(std::move(artifact));
      continue;
    }
    const Json* items = model.json().find_path(entry.each_path);
    if (!items || !items->is_array()) {
      throw ValidationError("generator '" + name_ + "': model path '" +
                            entry.each_path + "' must be an array");
    }
    for (size_t i = 0; i < items->as_array().size(); ++i) {
      // Per-item context: the element plus @item_index, with the full model
      // merged underneath for parent lookups.
      Json context = model.json();
      const Json& element = items->as_array()[i];
      if (element.is_object()) {
        for (const auto& [key, value] : element.as_object()) context[key] = value;
      } else {
        context["item"] = element;
      }
      context["item_index"] = static_cast<int64_t>(i);
      Artifact artifact;
      artifact.path = entry.path_template.render(context, partials_);
      artifact.content = entry.body.render(context, partials_);
      artifact.executable = entry.executable;
      artifacts.push_back(std::move(artifact));
    }
  }
  // Duplicate output paths are always a bug in the template set.
  std::vector<std::string> paths;
  for (const auto& artifact : artifacts) paths.push_back(artifact.path);
  std::sort(paths.begin(), paths.end());
  if (std::adjacent_find(paths.begin(), paths.end()) != paths.end()) {
    throw ValidationError("generator '" + name_ + "': duplicate artifact paths");
  }

  Json manifest = Json::object();
  manifest["generator"] = name_;
  manifest["model"] = model.json();
  Json list = Json::array();
  for (const auto& artifact : artifacts) list.push_back(artifact.path);
  manifest["artifacts"] = std::move(list);
  artifacts.push_back(Artifact{"manifest.json", manifest.pretty(), false});
  return artifacts;
}

void Generator::write_all(const std::vector<Artifact>& artifacts,
                          const std::string& root_dir) {
  for (const Artifact& artifact : artifacts) {
    const std::string path = root_dir + "/" + artifact.path;
    write_file(path, artifact.content);
    if (artifact.executable) {
      std::filesystem::permissions(path,
                                   std::filesystem::perms::owner_exec |
                                       std::filesystem::perms::group_exec,
                                   std::filesystem::perm_options::add);
    }
  }
}

std::vector<Generator::SurfaceEntry> Generator::surface_entries() const {
  std::vector<std::string> partial_paths;
  for (const auto& [_, partial] : partials_) {
    for (auto& path : partial.referenced_paths()) {
      partial_paths.push_back(std::move(path));
    }
  }
  std::vector<SurfaceEntry> entries;
  for (const Entry& entry : entries_) {
    SurfaceEntry surface;
    surface.each_path = entry.each_path;
    surface.referenced_paths = entry.body.referenced_paths();
    for (auto& path : entry.path_template.referenced_paths()) {
      surface.referenced_paths.push_back(std::move(path));
    }
    surface.referenced_paths.insert(surface.referenced_paths.end(),
                                    partial_paths.begin(), partial_paths.end());
    std::sort(surface.referenced_paths.begin(), surface.referenced_paths.end());
    surface.referenced_paths.erase(
        std::unique(surface.referenced_paths.begin(),
                    surface.referenced_paths.end()),
        surface.referenced_paths.end());
    entries.push_back(std::move(surface));
  }
  return entries;
}

std::vector<std::string> Generator::customization_surface() const {
  std::vector<std::string> paths;
  for (const Entry& entry : entries_) {
    for (auto& path : entry.body.referenced_paths()) paths.push_back(std::move(path));
    for (auto& path : entry.path_template.referenced_paths()) {
      paths.push_back(std::move(path));
    }
  }
  for (const auto& [_, partial] : partials_) {
    for (auto& path : partial.referenced_paths()) paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

}  // namespace ff::skel
