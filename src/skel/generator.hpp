#pragma once

#include <map>
#include <string>
#include <vector>

#include "skel/model.hpp"
#include "skel/template_engine.hpp"

namespace ff::skel {

/// One file produced by a generation run.
struct Artifact {
  std::string path;     // relative path within the generated workflow
  std::string content;
  bool executable = false;
};

/// A generator instantiates a set of templates against one model, producing
/// the concrete files that implement the action (scripts, campaign specs,
/// status helpers). "No debt accrues from code that can be efficiently
/// deleted and regenerated when needed" — so artifacts also carry a
/// generation manifest for honest regeneration.
class Generator {
 public:
  explicit Generator(std::string name = "skel") : name_(std::move(name)) {}

  /// Register a template for the artifact at `path_template` (itself a
  /// template so paths can be model-driven, e.g. "jobs/paste_{{@index}}.sh").
  void add_template(std::string path_template, std::string body,
                    bool executable = false);

  /// Register a partial usable via {{> name}} from any template.
  void add_partial(const std::string& name, std::string body);

  /// Register a template that expands once per element of the array at
  /// `each_path` in the model; the element is the render context (with
  /// parent fallback to the whole model).
  void add_template_per_item(std::string each_path, std::string path_template,
                             std::string body, bool executable = false);

  /// Render everything. Also appends `manifest.json` describing the model
  /// and artifact list, so regeneration is reproducible.
  std::vector<Artifact> generate(const Model& model) const;

  /// Write artifacts under root_dir (creating directories).
  static void write_all(const std::vector<Artifact>& artifacts,
                        const std::string& root_dir);

  /// The union of model paths referenced by all templates — the generator's
  /// effective customization surface.
  std::vector<std::string> customization_surface() const;

  /// Per-template-entry view of the customization surface, for static
  /// validation (fairflow-lint): which model paths each entry references
  /// and, for per-item entries, which model array provides its render
  /// context. Partial references are folded into every entry (a partial may
  /// be included from any template), so the view over-approximates — safe
  /// for "is this path bindable?" checks, not for minimality claims.
  struct SurfaceEntry {
    std::string each_path;  // empty: rendered once against the whole model
    std::vector<std::string> referenced_paths;  // sorted, deduplicated
  };
  std::vector<SurfaceEntry> surface_entries() const;

 private:
  struct Entry {
    std::string each_path;  // empty: render once against whole model
    Template path_template;
    Template body;
    bool executable = false;
  };

  std::string name_;
  std::vector<Entry> entries_;
  std::map<std::string, Template> partials_;
};

}  // namespace ff::skel
