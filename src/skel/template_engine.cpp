#include "skel/template_engine.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::skel {

struct Template::Node {
  enum class Kind { Text, Substitute, Each, If, Partial } kind = Kind::Text;
  std::string text;    // Text: literal; Substitute/Each/If: path; Partial: name
  std::string filter;  // Substitute only
  std::vector<Node> children;       // Each body / If then-branch
  std::vector<Node> else_children;  // If else-branch
  size_t line = 1;
};

namespace {

using Node = Template::Node;

class TemplateParser {
 public:
  TemplateParser(std::string_view text, const std::string& name)
      : text_(text), name_(name) {}

  std::vector<Node> parse() {
    std::vector<Node> nodes = parse_block(/*terminators=*/{});
    if (pos_ != text_.size()) fail("unexpected '{{/'-style close tag");
    return nodes;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("template '" + name_ + "': " + message, line_, 1);
  }

  void count_lines(std::string_view chunk) {
    line_ += static_cast<size_t>(std::count(chunk.begin(), chunk.end(), '\n'));
  }

  /// Parse nodes until EOF or until one of `terminators` ("else", "/each",
  /// "/if") appears; the terminator tag is consumed and reported.
  std::vector<Node> parse_block(const std::vector<std::string>& terminators,
                                std::string* hit = nullptr) {
    std::vector<Node> nodes;
    while (pos_ < text_.size()) {
      const size_t open = text_.find("{{", pos_);
      if (open == std::string_view::npos) {
        append_text(nodes, text_.substr(pos_));
        pos_ = text_.size();
        break;
      }
      append_text(nodes, text_.substr(pos_, open - pos_));
      count_lines(text_.substr(pos_, open - pos_));
      const size_t close = text_.find("}}", open);
      if (close == std::string_view::npos) fail("unterminated '{{' tag");
      std::string tag{trim(text_.substr(open + 2, close - open - 2))};
      pos_ = close + 2;
      if (tag.empty()) fail("empty '{{}}' tag");

      if (std::find(terminators.begin(), terminators.end(), tag) !=
          terminators.end()) {
        if (hit) *hit = tag;
        return nodes;
      }
      if (tag[0] == '!') continue;  // comment
      if (tag[0] == '>') {
        Node node;
        node.kind = Node::Kind::Partial;
        node.text = std::string(trim(std::string_view(tag).substr(1)));
        node.line = line_;
        if (node.text.empty()) fail("'{{>' requires a partial name");
        nodes.push_back(std::move(node));
        continue;
      }
      if (starts_with(tag, "#each")) {
        Node node;
        node.kind = Node::Kind::Each;
        node.text = std::string(trim(std::string_view(tag).substr(5)));
        node.line = line_;
        if (node.text.empty()) fail("'#each' requires a path");
        std::string terminator;
        node.children = parse_block({"/each"}, &terminator);
        if (terminator != "/each") fail("'#each' missing '{{/each}}'");
        nodes.push_back(std::move(node));
        continue;
      }
      if (starts_with(tag, "#if")) {
        Node node;
        node.kind = Node::Kind::If;
        node.text = std::string(trim(std::string_view(tag).substr(3)));
        node.line = line_;
        if (node.text.empty()) fail("'#if' requires a path");
        std::string terminator;
        node.children = parse_block({"else", "/if"}, &terminator);
        if (terminator == "else") {
          node.else_children = parse_block({"/if"}, &terminator);
        }
        if (terminator != "/if") fail("'#if' missing '{{/if}}'");
        nodes.push_back(std::move(node));
        continue;
      }
      if (tag[0] == '#' || tag[0] == '/') {
        fail("unknown block tag '{{" + tag + "}}'");
      }
      // Plain substitution, possibly with |filter.
      Node node;
      node.kind = Node::Kind::Substitute;
      node.line = line_;
      const size_t pipe = tag.find('|');
      if (pipe == std::string::npos) {
        node.text = std::string(trim(tag));
      } else {
        node.text = std::string(trim(std::string_view(tag).substr(0, pipe)));
        node.filter = std::string(trim(std::string_view(tag).substr(pipe + 1)));
        static const std::vector<std::string> kFilters = {"upper", "lower", "json",
                                                          "trim"};
        if (std::find(kFilters.begin(), kFilters.end(), node.filter) ==
            kFilters.end()) {
          fail("unknown filter '" + node.filter + "'");
        }
      }
      if (node.text.empty()) fail("empty substitution path");
      nodes.push_back(std::move(node));
    }
    if (!terminators.empty()) {
      fail("reached end of template while looking for {{" + terminators.back() + "}}");
    }
    return nodes;
  }

  void append_text(std::vector<Node>& nodes, std::string_view chunk) {
    if (chunk.empty()) return;
    if (!nodes.empty() && nodes.back().kind == Node::Kind::Text) {
      nodes.back().text += chunk;
    } else {
      Node node;
      node.kind = Node::Kind::Text;
      node.text = std::string(chunk);
      node.line = line_;
      nodes.push_back(std::move(node));
    }
  }

  std::string_view text_;
  const std::string& name_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

/// Context stack frame: a value plus loop metadata when inside {{#each}}.
struct Frame {
  const Json* value = nullptr;
  bool in_loop = false;
  size_t index = 0;
  size_t total = 0;
};

class Renderer {
 public:
  Renderer(const std::string& name, const Json& model,
           const std::map<std::string, Template>& partials)
      : name_(name), partials_(partials) {
    stack_.push_back(Frame{&model, false, 0, 0});
  }

  void render_nodes(const std::vector<Node>& nodes, std::string& out) {
    for (const Node& node : nodes) render_node(node, out);
  }

 private:
  [[noreturn]] void fail(const Node& node, const std::string& message) const {
    throw ValidationError("template '" + name_ + "' line " +
                          std::to_string(node.line) + ": " + message);
  }

  const Json* lookup(std::string_view path) const {
    // Loop metavariables resolve against the innermost loop frame.
    const Frame& top = stack_.back();
    if (path == "this") return top.value;
    // Walk the stack from innermost to outermost so parent scopes are
    // visible inside loops.
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (const Json* found = it->value->find_path(path)) return found;
    }
    return nullptr;
  }

  Json meta_value(std::string_view path, bool& is_meta) const {
    is_meta = true;
    const Frame& top = stack_.back();
    if (path == "@index" && top.in_loop) return Json(static_cast<int64_t>(top.index));
    if (path == "@first" && top.in_loop) return Json(top.index == 0);
    if (path == "@last" && top.in_loop) return Json(top.index + 1 == top.total);
    is_meta = false;
    return Json();
  }

  void render_node(const Node& node, std::string& out) {
    switch (node.kind) {
      case Node::Kind::Text:
        out += node.text;
        return;
      case Node::Kind::Substitute: {
        bool is_meta = false;
        Json meta = meta_value(node.text, is_meta);
        const Json* value = is_meta ? &meta : lookup(node.text);
        if (!value) fail(node, "unknown variable '" + node.text + "'");
        out += apply_filter(node, *value);
        return;
      }
      case Node::Kind::Each: {
        const Json* value = lookup(node.text);
        if (!value) fail(node, "unknown list '" + node.text + "'");
        if (!value->is_array()) fail(node, "'" + node.text + "' is not an array");
        const auto& items = value->as_array();
        for (size_t i = 0; i < items.size(); ++i) {
          stack_.push_back(Frame{&items[i], true, i, items.size()});
          render_nodes(node.children, out);
          stack_.pop_back();
        }
        return;
      }
      case Node::Kind::If: {
        bool is_meta = false;
        Json meta = meta_value(node.text, is_meta);
        const Json* value = is_meta ? &meta : lookup(node.text);
        // A missing path is simply falsy for {{#if}} — that is the whole
        // point of conditionals over optional model fields.
        const bool condition = value && truthy(*value);
        render_nodes(condition ? node.children : node.else_children, out);
        return;
      }
      case Node::Kind::Partial: {
        auto it = partials_.find(node.text);
        if (it == partials_.end()) fail(node, "unknown partial '" + node.text + "'");
        // Partials render against the current top-of-stack context.
        std::string rendered =
            it->second.render(*stack_.back().value, partials_);
        out += rendered;
        return;
      }
    }
  }

  std::string apply_filter(const Node& node, const Json& value) const {
    if (node.filter == "json") return value.dump();
    std::string text;
    if (value.is_array() || value.is_object()) {
      fail(node, "'" + node.text + "' is an aggregate; use the |json filter");
    }
    text = render_scalar(value);
    if (node.filter == "upper") return to_upper(text);
    if (node.filter == "lower") return to_lower(text);
    if (node.filter == "trim") return std::string(trim(text));
    return text;
  }

  const std::string& name_;
  const std::map<std::string, Template>& partials_;
  std::vector<Frame> stack_;
};

void collect_paths(const std::vector<Node>& nodes, std::vector<std::string>& out) {
  for (const Node& node : nodes) {
    if (node.kind == Node::Kind::Substitute || node.kind == Node::Kind::Each ||
        node.kind == Node::Kind::If) {
      if (node.text[0] != '@' && node.text != "this") out.push_back(node.text);
    }
    collect_paths(node.children, out);
    collect_paths(node.else_children, out);
  }
}

}  // namespace

Template Template::parse(std::string_view text, std::string name) {
  Template result;
  result.name_ = std::move(name);
  result.nodes_ = std::make_shared<const std::vector<Node>>(
      TemplateParser(text, result.name_).parse());
  return result;
}

std::string Template::render(const Json& model,
                             const std::map<std::string, Template>& partials) const {
  std::string out;
  Renderer renderer(name_, model, partials);
  renderer.render_nodes(*nodes_, out);
  return out;
}

std::vector<std::string> Template::referenced_paths() const {
  std::vector<std::string> paths;
  collect_paths(*nodes_, paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

bool truthy(const Json& value) {
  switch (value.type()) {
    case Json::Type::Null: return false;
    case Json::Type::Bool: return value.as_bool();
    case Json::Type::Int: return value.as_int() != 0;
    case Json::Type::Double: return value.as_double() != 0.0;
    case Json::Type::String: return !value.as_string().empty();
    case Json::Type::Array_: return !value.as_array().empty();
    case Json::Type::Object_: return !value.as_object().empty();
  }
  return false;
}

std::string render_scalar(const Json& value) {
  switch (value.type()) {
    case Json::Type::Null: return "";
    case Json::Type::Bool: return value.as_bool() ? "true" : "false";
    case Json::Type::Int: return std::to_string(value.as_int());
    case Json::Type::Double: return format_double(value.as_double());
    case Json::Type::String: return value.as_string();
    default:
      throw ValidationError("render_scalar: aggregate value");
  }
}

}  // namespace ff::skel
