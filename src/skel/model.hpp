#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace ff::skel {

/// Declarative description of what a Skel model must contain: the "concise
/// representation of the user decisions required for an action". Fields are
/// dotted paths with expected Json types; required fields must exist,
/// optional fields get defaults. This is what makes the customization
/// surface machine-checkable (Customizability gauge, Model tier).
class ModelSchema {
 public:
  struct FieldSpec {
    std::string path;         // "machine.nodes"
    std::string type;         // "int","double","string","bool","array","object"
    bool required = true;
    Json default_value;       // applied when optional and missing
    std::string description;  // shown in validation errors and docs
  };

  ModelSchema& require(std::string path, std::string type,
                       std::string description = "");
  ModelSchema& optional(std::string path, std::string type, Json default_value,
                        std::string description = "");

  const std::vector<FieldSpec>& fields() const noexcept { return fields_; }

  /// Validate `model`. Returns the list of problems (empty when valid).
  std::vector<std::string> validate(const Json& model) const;

  /// Validate and throw ValidationError listing all problems.
  void validate_or_throw(const Json& model) const;

  /// Copy of `model` with defaults filled in for missing optional fields.
  /// Only top-level and nested object paths are materialized.
  Json with_defaults(const Json& model) const;

  /// Markdown-ish documentation of the model surface, one line per field.
  std::string document() const;

 private:
  std::vector<FieldSpec> fields_;
};

/// A validated model instance: the single point of user interaction for a
/// generated workflow (paper Section V-A).
class Model {
 public:
  Model(Json document, const ModelSchema& schema);

  /// Load from a JSON file and validate.
  static Model load(const std::string& path, const ModelSchema& schema);

  const Json& json() const noexcept { return document_; }
  const Json& at(std::string_view path) const { return document_.at_path(path); }

 private:
  Json document_;
};

}  // namespace ff::skel
