#pragma once

#include <string>
#include <vector>

#include "util/table.hpp"

namespace ff::gwas {

/// Column-wise paste of tabular files keyed on the `sample` column — the
/// operation Section V-A builds its demonstration around. All inputs must
/// agree on the key column's contents (same samples, same order); key
/// columns after the first are dropped.
Table paste_tables(const std::vector<Table>& tables,
                   const std::string& key_column = "sample");

/// Paste TSV files from disk into one output TSV file.
void paste_files(const std::vector<std::string>& inputs, const std::string& output,
                 const std::string& key_column = "sample");

/// The two-phase paste plan: "a series of 'sub-pastes' were performed to
/// reduce the number of files, then a final paste was done to merge the
/// pasted subsets" — because pasting too many files at once is slow and
/// hammers the filesystem.
struct PastePlan {
  /// Phase 1: groups of input indices, each pasted into one intermediate.
  std::vector<std::vector<size_t>> groups;
  /// True when phase 2 (pasting the intermediates) is needed.
  bool needs_final_merge = false;

  size_t subjobs() const { return groups.size() + (needs_final_merge ? 1 : 0); }
};

/// Plan pasting `file_count` inputs with at most `fan_in` files per paste.
PastePlan plan_two_phase_paste(size_t file_count, size_t fan_in);

/// Execute a plan against real files: phase-1 groups run (optionally in
/// parallel via `workers`), then the final merge. Intermediates go to
/// `scratch_dir`. Returns the merged output path.
std::string execute_paste_plan(const PastePlan& plan,
                               const std::vector<std::string>& inputs,
                               const std::string& scratch_dir,
                               const std::string& output, size_t workers = 1,
                               const std::string& key_column = "sample");

/// Cost model for planning at scales we do not execute for real: seconds
/// for one paste of `files` files of `columns_per_file` columns × `rows`
/// rows. Calibrated so cost grows superlinearly in the file count, which
/// is what makes single-phase pasting of thousands of files infeasible and
/// fan-in choice a real tuning knob.
double paste_cost_model(size_t files, size_t columns_per_file, size_t rows);

/// Model-predicted makespan of a plan executed with `workers` parallel
/// slots (phase 1 groups in parallel, then the final merge).
double plan_cost_model(const PastePlan& plan, size_t columns_per_file, size_t rows,
                       size_t workers);

}  // namespace ff::gwas
