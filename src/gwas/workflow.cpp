#include "gwas/workflow.hpp"

namespace ff::gwas {

using core::Component;
using core::ComponentKind;
using core::ConfigVariable;
using core::ConsumptionSemantics;
using core::Gauge;
using core::Port;
using core::PortDirection;

skel::ModelSchema paste_model_schema() {
  skel::ModelSchema schema;
  schema.require("dataset.path", "string", "directory holding the input shards")
      .require("dataset.pattern", "string", "shard naming convention")
      .require("dataset.count", "int", "number of shard files")
      .require("machine.account", "string", "allocation account")
      .optional("machine.walltime", "string", Json("2:00"), "per-job walltime")
      .optional("machine.nodes", "int", Json(1), "node cap per job")
      .optional("strategy.fan_in", "int", Json(16), "files per sub-paste")
      .require("groups", "array", "sub-paste groups (derived from the plan)");
  return schema;
}

skel::Generator make_paste_generator() {
  skel::Generator generator("gwas-paste");
  generator.add_partial("job_header",
                        "#!/bin/bash\n"
                        "#BSUB -P {{machine.account}}\n"
                        "#BSUB -W {{machine.walltime}}\n"
                        "#BSUB -nnodes {{machine.nodes}}\n");
  generator.add_template_per_item(
      "groups", "jobs/subpaste_{{item_index}}.sh",
      "{{> job_header}}"
      "# sub-paste group {{item_index}}: {{count}} shards\n"
      "paste_tool --key sample \\\n"
      "{{#each files}}  {{dataset.path}}/{{this}} \\\n{{/each}}"
      "  --output scratch/subpaste_{{item_index}}.tsv\n",
      true);
  generator.add_template(
      "jobs/final_merge.sh",
      "{{> job_header}}"
      "# final merge of {{groups|json}} intermediates\n"
      "paste_tool --key sample scratch/subpaste_*.tsv --output merged.tsv\n",
      true);
  generator.add_template(
      "campaign.json",
      "{\n"
      "  \"name\": \"gwas-paste\",\n"
      "  \"app\": {\"name\": \"paste\", \"executable\": \"bash\",\n"
      "           \"args_template\": \"jobs/subpaste_{{! per-run }}{{dataset.count}}.sh\"},\n"
      "  \"machine\": \"summit\",\n"
      "  \"groups\": []\n"
      "}\n");
  generator.add_template(
      "status.sh",
      "#!/bin/bash\n"
      "# query progress of the paste campaign\n"
      "ls scratch/subpaste_*.tsv 2>/dev/null | wc -l\n",
      true);
  return generator;
}

Json make_paste_model(const std::string& dataset_dir, size_t file_count,
                      size_t fan_in, const std::string& machine_account,
                      const std::string& walltime, int nodes) {
  const PastePlan plan = plan_two_phase_paste(file_count, fan_in);
  Json model = Json::object();
  model["dataset"]["path"] = dataset_dir;
  model["dataset"]["pattern"] = "shard_%04d.tsv";
  model["dataset"]["count"] = static_cast<int64_t>(file_count);
  model["machine"]["account"] = machine_account;
  model["machine"]["walltime"] = walltime;
  model["machine"]["nodes"] = static_cast<int64_t>(nodes);
  model["strategy"]["fan_in"] = static_cast<int64_t>(fan_in);
  Json groups = Json::array();
  for (const auto& group : plan.groups) {
    Json entry = Json::object();
    entry["count"] = static_cast<int64_t>(group.size());
    Json files = Json::array();
    for (size_t index : group) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "shard_%04zu.tsv", index);
      files.push_back(std::string(buffer));
    }
    entry["files"] = std::move(files);
    groups.push_back(std::move(entry));
  }
  model["groups"] = std::move(groups);
  return model;
}

InterventionCount manual_interventions(const PastePlan& plan) {
  InterventionCount count;
  // Per subjob script: the user fixes account/walltime/paths and the file
  // list partition (3 edited regions), then submits it by hand.
  count.edits = plan.subjobs() * 3;
  count.submissions = plan.subjobs();
  // "the scientist must check to see that jobs are completing successfully
  // and keep track of which jobs remain to be submitted": at least one
  // check per subjob completion.
  count.checks = plan.subjobs();
  return count;
}

InterventionCount skel_interventions(const PastePlan& plan) {
  (void)plan;  // the whole point: cost is independent of the plan's size
  InterventionCount count;
  count.edits = 1;        // update the model JSON
  count.submissions = 1;  // submit the generated campaign
  count.checks = 1;       // one status query (the tool tracks the rest)
  return count;
}

Component manual_paste_component() {
  Component component("gwas-paste-manual", ComponentKind::Executable);
  component.set_description("hand-maintained two-phase paste scripts");
  component.profile() = core::make_profile(1, 1, 0, 1, 1, 1);
  component.profile().set_evidence(Gauge::SoftwareCustomizability,
                                   "walltime/account/paths hard-coded per script");
  component.add_port(Port{"shards", PortDirection::Input, "", "posix-file",
                          ConsumptionSemantics::WholeDataset});
  component.add_port(Port{"merged", PortDirection::Output, "", "posix-file",
                          ConsumptionSemantics::Unknown});
  component.add_config(ConfigVariable{"account", "string", Json("BIF101"), false, ""});
  component.add_config(ConfigVariable{"walltime", "string", Json("2:00"), false, ""});
  component.add_config(ConfigVariable{"fan_in", "int", Json(16), false, ""});
  component.add_config(ConfigVariable{"paths", "string", Json("/gpfs/..."), false, ""});
  return component;
}

Component skel_paste_component() {
  Component component("gwas-paste-skel", ComponentKind::BundledWorkflow);
  component.set_description("model-driven paste campaign (Skel + Cheetah)");
  component.profile() = core::make_profile(2, 3, 1, 2, 3, 3);
  component.profile().set_evidence(Gauge::SoftwareCustomizability,
                                   "single JSON model regenerates all artifacts");
  component.add_port(Port{"shards", PortDirection::Input, "tsv:genotype_shard:v1",
                          "posix-file", ConsumptionSemantics::WholeDataset});
  component.add_port(Port{"merged", PortDirection::Output, "tsv:genotype_merged:v1",
                          "posix-file", ConsumptionSemantics::Unknown});
  component.add_config(ConfigVariable{"account", "string", Json("BIF101"), true, ""});
  component.add_config(ConfigVariable{"walltime", "string", Json("2:00"), true, ""});
  component.add_config(ConfigVariable{"fan_in", "int", Json(16), true, ""});
  component.add_config(ConfigVariable{"dataset_path", "path", Json("/gpfs/..."), true, ""});
  return component;
}

namespace {

Component preprocess_component(bool refactored) {
  Component component(refactored ? "gwas-preprocess-model" : "gwas-preprocess-manual",
                      ComponentKind::Executable);
  component.set_description("reformat raw genotype/phenotype data for tools");
  component.profile() = refactored ? core::make_profile(2, 3, 2, 2, 2, 2)
                                   : core::make_profile(1, 1, 0, 1, 1, 0);
  component.add_port(Port{"raw", PortDirection::Input, "", "posix-file",
                          ConsumptionSemantics::WholeDataset});
  component.add_port(Port{"shards", PortDirection::Output,
                          refactored ? "tsv:genotype_shard:v1" : "", "posix-file",
                          ConsumptionSemantics::Unknown});
  return component;
}

Component assoc_component(bool refactored) {
  Component component(refactored ? "gwas-assoc-model" : "gwas-assoc-manual",
                      ComponentKind::Executable);
  component.set_description("mixed-model association scan");
  component.profile() = refactored ? core::make_profile(2, 3, 1, 2, 2, 2)
                                   : core::make_profile(1, 2, 0, 1, 1, 1);
  component.add_port(Port{"merged", PortDirection::Input,
                          refactored ? "tsv:genotype_merged:v1" : "", "posix-file",
                          ConsumptionSemantics::WholeDataset});
  component.add_port(Port{"hits", PortDirection::Output, "", "posix-file",
                          ConsumptionSemantics::Unknown});
  return component;
}

core::WorkflowGraph build_gwas_graph(const std::string& name, bool refactored) {
  core::WorkflowGraph graph(name);
  Component preprocess = preprocess_component(refactored);
  Component paste = refactored ? skel_paste_component() : manual_paste_component();
  Component assoc = assoc_component(refactored);
  const std::string preprocess_id = preprocess.id();
  const std::string paste_id = paste.id();
  const std::string assoc_id = assoc.id();
  graph.add_component(std::move(preprocess));
  graph.add_component(std::move(paste));
  graph.add_component(std::move(assoc));
  graph.connect(preprocess_id, "shards", paste_id, "shards");
  graph.connect(paste_id, "merged", assoc_id, "merged");
  return graph;
}

}  // namespace

core::WorkflowGraph legacy_gwas_workflow() {
  return build_gwas_graph("gwas-legacy", false);
}

core::WorkflowGraph refactored_gwas_workflow() {
  return build_gwas_graph("gwas-refactored", true);
}

}  // namespace ff::gwas
