#pragma once

#include "core/workflow_graph.hpp"
#include "gwas/paste.hpp"
#include "skel/generator.hpp"

namespace ff::gwas {

/// The Skel model schema for the paste workflow (paper Section V-A: "the
/// model includes information about the dataset under consideration (path
/// and naming conventions), machine-specific details about resources ...
/// and strategy for pasting").
skel::ModelSchema paste_model_schema();

/// The generator producing the concrete paste workflow from a model: one
/// sub-paste script per group, a final-merge script, a Cheetah campaign
/// spec, and a status/query script.
skel::Generator make_paste_generator();

/// Build the model document for a concrete problem (fills the "groups"
/// array the templates iterate over).
Json make_paste_model(const std::string& dataset_dir, size_t file_count,
                      size_t fan_in, const std::string& machine_account,
                      const std::string& walltime, int nodes);

/// Interventions a human performs per *new run configuration* — the
/// quantity Fig. 2 contrasts. "Manual" is the traditional script: fix
/// scheduler parameters and paths in every subjob, submit each one, watch
/// queues, resubmit stragglers. "Skel" is: edit the model, run generate,
/// submit the campaign.
struct InterventionCount {
  size_t edits = 0;        // hand-edited values in scripts/models
  size_t submissions = 0;  // manual submit/launch actions
  size_t checks = 0;       // human monitoring checks while jobs drain
  size_t total() const { return edits + submissions + checks; }
};

InterventionCount manual_interventions(const PastePlan& plan);
InterventionCount skel_interventions(const PastePlan& plan);

/// Gauge-profiled component models of the paste step before and after the
/// refactoring, for assessment benches (Box I / Fig. 1).
core::Component manual_paste_component();
core::Component skel_paste_component();

/// The full GWAS workflow graphs (preprocess → paste → associate) in
/// legacy and refactored form, for the assessment bench.
core::WorkflowGraph legacy_gwas_workflow();
core::WorkflowGraph refactored_gwas_workflow();

}  // namespace ff::gwas
