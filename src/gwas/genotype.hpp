#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace ff::gwas {

/// Synthetic GWAS inputs: a genotype matrix (samples × SNPs with additive
/// coding 0/1/2) and a quantitative phenotype driven by a few causal SNPs.
/// Stands in for the raw genotype/phenotype data of Section II-A.
struct GwasConfig {
  size_t samples = 200;
  size_t snps = 500;
  size_t causal_snps = 5;
  double effect_size = 0.8;   // per causal allele
  double noise = 1.0;         // phenotype noise stddev
  double maf_lo = 0.05;       // minor-allele-frequency range
  double maf_hi = 0.5;
};

struct GwasData {
  Table genotypes;              // columns: sample, snp_0000..; values 0/1/2
  Table phenotypes;             // columns: sample, trait
  std::vector<size_t> causal;   // indices of causal SNPs
};

GwasData make_gwas_data(const GwasConfig& config, uint64_t seed);

/// Shard the genotype table column-wise into `shards` files on disk under
/// `dir` (shard_000.tsv, ...). Every shard keeps the `sample` key column —
/// this reproduces the input layout the two-phase paste step consumes
/// ("column-wise pasting of a large number of individual tabular files").
/// Returns the shard file paths in order.
std::vector<std::string> write_genotype_shards(const Table& genotypes,
                                               const std::string& dir,
                                               size_t shards);

/// Per-SNP association scan: simple linear regression of trait on dosage;
/// reports the squared correlation (r²) as the association strength.
struct Association {
  std::string snp;
  size_t index = 0;
  double r2 = 0;
  double slope = 0;
};

/// All associations, sorted by descending r². `merged` must contain the
/// `sample` column plus SNP columns; phenotypes must match sample order.
std::vector<Association> association_scan(const Table& merged,
                                          const Table& phenotypes);

}  // namespace ff::gwas
