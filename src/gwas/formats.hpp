#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ff::gwas {

/// A genome annotation interval in a format-neutral representation.
/// Coordinates are stored 0-based half-open (BED convention) internally;
/// converters adjust on the way in/out. This is the data-wrangling pain
/// point Section II-A names: "genome annotations can be in BED, GTF2,
/// GFF3, or PSL formats" and converting between them is unpaid debt.
struct AnnotationRecord {
  std::string chrom;
  int64_t start = 0;  // 0-based inclusive
  int64_t end = 0;    // exclusive
  std::string name;
  double score = 0;
  char strand = '.';

  bool operator==(const AnnotationRecord&) const = default;
};

/// BED6: chrom <tab> start <tab> end <tab> name <tab> score <tab> strand,
/// 0-based half-open.
std::vector<AnnotationRecord> parse_bed(std::string_view text);
std::string write_bed(const std::vector<AnnotationRecord>& records);

/// GFF3 feature lines: seqid source type start end score strand phase attrs
/// with 1-based closed coordinates; name round-trips through an ID= attr.
/// Comment lines (#...) are skipped on parse; a ##gff-version header is
/// emitted on write.
std::vector<AnnotationRecord> parse_gff3(std::string_view text);
std::string write_gff3(const std::vector<AnnotationRecord>& records,
                       const std::string& source = "fairflow",
                       const std::string& type = "region");

/// GTF2 (GFF2 dialect): like GFF3 but attributes are `key "value";` pairs;
/// the name round-trips through `gene_id "..."`.
std::vector<AnnotationRecord> parse_gtf2(std::string_view text);
std::string write_gtf2(const std::vector<AnnotationRecord>& records,
                       const std::string& source = "fairflow",
                       const std::string& type = "region");

/// PSL (BLAT alignment) — only the interval-relevant subset of its 21
/// columns is modelled: strand (9), qName→name (10), tName→chrom (14),
/// tStart/tEnd (16/17, 0-based half-open); match count (1) carries score.
/// Remaining columns are written as zeros and ignored on parse.
std::vector<AnnotationRecord> parse_psl(std::string_view text);
std::string write_psl(const std::vector<AnnotationRecord>& records);

/// Schema-driven conversion entry point between any two of "bed", "gff3",
/// "gtf2", "psl" — the full format set named in paper Section II-A. This
/// is what a MetadataCatalog::convertible() hit dispatches to.
std::string convert_annotation(std::string_view text, const std::string& from,
                               const std::string& to);

}  // namespace ff::gwas
