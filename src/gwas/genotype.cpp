#include "gwas/genotype.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace ff::gwas {

GwasData make_gwas_data(const GwasConfig& config, uint64_t seed) {
  if (config.samples < 4 || config.snps < 1 || config.causal_snps > config.snps) {
    throw ValidationError("make_gwas_data: implausible config");
  }
  Rng rng(splitmix64(seed ^ 0x97a5ULL));

  // Column names: sample id plus zero-padded SNP ids.
  std::vector<std::string> columns = {"sample"};
  char buffer[32];
  for (size_t snp = 0; snp < config.snps; ++snp) {
    std::snprintf(buffer, sizeof(buffer), "snp_%05zu", snp);
    columns.emplace_back(buffer);
  }
  Table genotypes(columns);

  // Per-SNP minor allele frequency; genotype ~ Binomial(2, maf).
  std::vector<double> mafs;
  mafs.reserve(config.snps);
  for (size_t snp = 0; snp < config.snps; ++snp) {
    mafs.push_back(rng.uniform(config.maf_lo, config.maf_hi));
  }

  std::vector<std::vector<int>> dosages(config.samples,
                                        std::vector<int>(config.snps));
  for (size_t sample = 0; sample < config.samples; ++sample) {
    std::vector<std::string> row;
    row.reserve(config.snps + 1);
    std::snprintf(buffer, sizeof(buffer), "S%05zu", sample);
    row.emplace_back(buffer);
    for (size_t snp = 0; snp < config.snps; ++snp) {
      const int dosage = (rng.chance(mafs[snp]) ? 1 : 0) +
                         (rng.chance(mafs[snp]) ? 1 : 0);
      dosages[sample][snp] = dosage;
      row.push_back(std::to_string(dosage));
    }
    genotypes.add_row(std::move(row));
  }

  // Pick causal SNPs (distinct) and synthesize the trait.
  GwasData out;
  std::vector<size_t> all(config.snps);
  for (size_t i = 0; i < config.snps; ++i) all[i] = i;
  rng.shuffle(all);
  out.causal.assign(all.begin(),
                    all.begin() + static_cast<long>(config.causal_snps));
  std::sort(out.causal.begin(), out.causal.end());

  Table phenotypes({"sample", "trait"});
  for (size_t sample = 0; sample < config.samples; ++sample) {
    double trait = config.noise * rng.normal();
    for (size_t causal_snp : out.causal) {
      trait += config.effect_size * dosages[sample][causal_snp];
    }
    phenotypes.add_row({genotypes.cell(sample, 0), format_double(trait)});
  }

  out.genotypes = std::move(genotypes);
  out.phenotypes = std::move(phenotypes);
  return out;
}

std::vector<std::string> write_genotype_shards(const Table& genotypes,
                                               const std::string& dir,
                                               size_t shards) {
  if (shards == 0) throw ValidationError("write_genotype_shards: shards must be > 0");
  const size_t snp_count = genotypes.cols() - 1;  // minus the sample column
  if (shards > snp_count) {
    throw ValidationError("write_genotype_shards: more shards than SNP columns");
  }
  CsvOptions tsv;
  tsv.separator = '\t';
  std::vector<std::string> paths;
  char buffer[32];
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = 1 + snp_count * shard / shards;
    const size_t end = 1 + snp_count * (shard + 1) / shards;
    std::vector<std::string> wanted = {"sample"};
    for (size_t col = begin; col < end; ++col) {
      wanted.push_back(genotypes.column_names()[col]);
    }
    const Table piece = genotypes.select(wanted);
    std::snprintf(buffer, sizeof(buffer), "shard_%04zu.tsv", shard);
    const std::string path = dir + "/" + buffer;
    write_csv_file(piece, path, tsv);
    paths.push_back(path);
  }
  return paths;
}

std::vector<Association> association_scan(const Table& merged,
                                          const Table& phenotypes) {
  if (merged.rows() != phenotypes.rows()) {
    throw ValidationError("association_scan: sample count mismatch");
  }
  const std::vector<double> trait = phenotypes.column_as_double("trait");
  std::vector<Association> out;
  size_t index = 0;
  for (const std::string& column : merged.column_names()) {
    if (column == "sample") continue;
    const std::vector<double> dosage = merged.column_as_double(column);
    const OlsFit fit = ols(dosage, trait);
    Association association;
    association.snp = column;
    association.index = index++;
    association.r2 = fit.r2;
    association.slope = fit.slope;
    out.push_back(std::move(association));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Association& a, const Association& b) {
                     return a.r2 > b.r2;
                   });
  return out;
}

}  // namespace ff::gwas
