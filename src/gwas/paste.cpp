#include "gwas/paste.hpp"

#include <algorithm>
#include <cmath>

#include "savanna/local_executor.hpp"
#include "util/error.hpp"

namespace ff::gwas {

namespace {
const CsvOptions kTsv{'\t', false};
}  // namespace

Table paste_tables(const std::vector<Table>& tables, const std::string& key_column) {
  if (tables.empty()) throw ValidationError("paste_tables: no inputs");
  Table merged = tables.front();
  if (!merged.has_column(key_column)) {
    throw ValidationError("paste_tables: first input lacks key column '" +
                          key_column + "'");
  }
  const std::vector<std::string> key = merged.column(key_column);
  for (size_t i = 1; i < tables.size(); ++i) {
    const Table& next = tables[i];
    if (!next.has_column(key_column)) {
      throw ValidationError("paste_tables: input " + std::to_string(i) +
                            " lacks key column '" + key_column + "'");
    }
    if (next.column(key_column) != key) {
      throw ValidationError("paste_tables: input " + std::to_string(i) +
                            " has mismatched '" + key_column + "' column");
    }
    std::vector<std::string> value_columns;
    for (const std::string& name : next.column_names()) {
      if (name != key_column) value_columns.push_back(name);
    }
    merged.paste(next.select(value_columns));
  }
  return merged;
}

void paste_files(const std::vector<std::string>& inputs, const std::string& output,
                 const std::string& key_column) {
  std::vector<Table> tables;
  tables.reserve(inputs.size());
  for (const std::string& path : inputs) tables.push_back(read_csv_file(path, kTsv));
  write_csv_file(paste_tables(tables, key_column), output, kTsv);
}

PastePlan plan_two_phase_paste(size_t file_count, size_t fan_in) {
  if (file_count == 0) throw ValidationError("plan_two_phase_paste: no files");
  if (fan_in < 2) throw ValidationError("plan_two_phase_paste: fan_in must be >= 2");
  PastePlan plan;
  if (file_count <= fan_in) {
    // One paste suffices — a single group, no merge phase.
    std::vector<size_t> all(file_count);
    for (size_t i = 0; i < file_count; ++i) all[i] = i;
    plan.groups.push_back(std::move(all));
    return plan;
  }
  const size_t group_count = (file_count + fan_in - 1) / fan_in;
  if (group_count > fan_in) {
    throw ValidationError(
        "plan_two_phase_paste: two phases insufficient (need fan_in >= sqrt(files): " +
        std::to_string(file_count) + " files, fan_in " + std::to_string(fan_in) + ")");
  }
  for (size_t g = 0; g < group_count; ++g) {
    std::vector<size_t> group;
    for (size_t i = g * fan_in; i < std::min((g + 1) * fan_in, file_count); ++i) {
      group.push_back(i);
    }
    plan.groups.push_back(std::move(group));
  }
  plan.needs_final_merge = true;
  return plan;
}

std::string execute_paste_plan(const PastePlan& plan,
                               const std::vector<std::string>& inputs,
                               const std::string& scratch_dir,
                               const std::string& output, size_t workers,
                               const std::string& key_column) {
  for (const auto& group : plan.groups) {
    for (size_t index : group) {
      if (index >= inputs.size()) {
        throw ValidationError("execute_paste_plan: plan references input " +
                              std::to_string(index) + " of " +
                              std::to_string(inputs.size()));
      }
    }
  }
  if (!plan.needs_final_merge) {
    if (plan.groups.size() != 1) {
      throw ValidationError("execute_paste_plan: single-phase plan must have 1 group");
    }
    std::vector<std::string> files;
    for (size_t index : plan.groups[0]) files.push_back(inputs[index]);
    paste_files(files, output, key_column);
    return output;
  }

  // Phase 1: sub-pastes (parallel).
  std::vector<std::string> intermediates;
  std::vector<savanna::LocalTask> tasks;
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    const std::string intermediate =
        scratch_dir + "/subpaste_" + std::to_string(g) + ".tsv";
    intermediates.push_back(intermediate);
    std::vector<std::string> files;
    for (size_t index : plan.groups[g]) files.push_back(inputs[index]);
    tasks.push_back(savanna::LocalTask{
        "subpaste-" + std::to_string(g),
        [files, intermediate, key_column] {
          paste_files(files, intermediate, key_column);
        }});
  }
  const savanna::LocalReport report = run_local(tasks, std::max<size_t>(1, workers));
  if (!report.failed.empty()) {
    throw IoError("execute_paste_plan: sub-paste '" + report.failed[0].first +
                  "' failed: " + report.failed[0].second);
  }
  // Phase 2: final merge of the intermediates.
  paste_files(intermediates, output, key_column);
  return output;
}

double paste_cost_model(size_t files, size_t columns_per_file, size_t rows) {
  if (files == 0) return 0;
  // Empirical shape: per-cell work plus a superlinear open-files penalty —
  // pasting F files costs ~F^1.35 in the file-handling term, which is what
  // drives the two-phase strategy at large F.
  const double cells =
      static_cast<double>(files) * static_cast<double>(columns_per_file) *
      static_cast<double>(rows);
  const double cell_term = 2e-8 * cells;
  const double file_term = 0.02 * std::pow(static_cast<double>(files), 1.35);
  return cell_term + file_term;
}

double plan_cost_model(const PastePlan& plan, size_t columns_per_file, size_t rows,
                       size_t workers) {
  workers = std::max<size_t>(1, workers);
  // Phase 1: greedy assignment of group costs to workers (LPT order).
  std::vector<double> costs;
  size_t total_columns = 0;
  for (const auto& group : plan.groups) {
    costs.push_back(paste_cost_model(group.size(), columns_per_file, rows));
    total_columns += group.size() * columns_per_file;
  }
  std::sort(costs.rbegin(), costs.rend());
  std::vector<double> slots(workers, 0.0);
  for (double cost : costs) {
    *std::min_element(slots.begin(), slots.end()) += cost;
  }
  double makespan = *std::max_element(slots.begin(), slots.end());
  if (plan.needs_final_merge) {
    // Final merge reads groups-many files whose width is the summed columns.
    makespan += paste_cost_model(plan.groups.size(),
                                 total_columns / std::max<size_t>(1, plan.groups.size()),
                                 rows);
  }
  return makespan;
}

}  // namespace ff::gwas
