#include "gwas/formats.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::gwas {

namespace {

int64_t parse_int_field(const std::string& field, const char* what, size_t line) {
  if (!is_integer(field)) {
    throw ParseError(std::string(what) + ": not an integer '" + field + "'", line, 1);
  }
  return std::stoll(field);
}

double parse_score(const std::string& field, size_t line) {
  if (field == ".") return 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || field.empty()) {
    throw ParseError("score: not a number '" + field + "'", line, 1);
  }
  return value;
}

char parse_strand(const std::string& field, size_t line) {
  if (field == "+" || field == "-" || field == ".") return field[0];
  throw ParseError("strand: expected +, - or '.', got '" + field + "'", line, 1);
}

}  // namespace

std::vector<AnnotationRecord> parse_bed(std::string_view text) {
  std::vector<AnnotationRecord> records;
  size_t line_number = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_number;
    if (trim(line).empty() || starts_with(line, "#")) continue;
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 6) {
      throw ParseError("BED: expected 6 fields, got " + std::to_string(fields.size()),
                       line_number, 1);
    }
    AnnotationRecord record;
    record.chrom = fields[0];
    record.start = parse_int_field(fields[1], "BED start", line_number);
    record.end = parse_int_field(fields[2], "BED end", line_number);
    record.name = fields[3];
    record.score = parse_score(fields[4], line_number);
    record.strand = parse_strand(fields[5], line_number);
    if (record.end < record.start) {
      throw ParseError("BED: end before start", line_number, 1);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string write_bed(const std::vector<AnnotationRecord>& records) {
  std::string out;
  for (const AnnotationRecord& record : records) {
    out += record.chrom + "\t" + std::to_string(record.start) + "\t" +
           std::to_string(record.end) + "\t" + record.name + "\t" +
           format_double(record.score) + "\t" + record.strand + "\n";
  }
  return out;
}

std::vector<AnnotationRecord> parse_gff3(std::string_view text) {
  std::vector<AnnotationRecord> records;
  size_t line_number = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_number;
    if (trim(line).empty() || starts_with(line, "#")) continue;
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 9) {
      throw ParseError("GFF3: expected 9 fields, got " + std::to_string(fields.size()),
                       line_number, 1);
    }
    AnnotationRecord record;
    record.chrom = fields[0];
    // GFF3 is 1-based closed; internal representation is 0-based half-open.
    record.start = parse_int_field(fields[3], "GFF3 start", line_number) - 1;
    record.end = parse_int_field(fields[4], "GFF3 end", line_number);
    record.score = parse_score(fields[5], line_number);
    record.strand = parse_strand(fields[6], line_number);
    if (record.start < 0 || record.end < record.start) {
      throw ParseError("GFF3: bad coordinates", line_number, 1);
    }
    for (const std::string& attribute : split(fields[8], ';')) {
      const auto trimmed = trim(attribute);
      if (starts_with(trimmed, "ID=")) record.name = std::string(trimmed.substr(3));
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string write_gff3(const std::vector<AnnotationRecord>& records,
                       const std::string& source, const std::string& type) {
  std::string out = "##gff-version 3\n";
  for (const AnnotationRecord& record : records) {
    out += record.chrom + "\t" + source + "\t" + type + "\t" +
           std::to_string(record.start + 1) + "\t" + std::to_string(record.end) +
           "\t" + format_double(record.score) + "\t" + record.strand + "\t.\tID=" +
           record.name + "\n";
  }
  return out;
}

std::vector<AnnotationRecord> parse_gtf2(std::string_view text) {
  std::vector<AnnotationRecord> records;
  size_t line_number = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_number;
    if (trim(line).empty() || starts_with(line, "#")) continue;
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 9) {
      throw ParseError("GTF2: expected 9 fields, got " + std::to_string(fields.size()),
                       line_number, 1);
    }
    AnnotationRecord record;
    record.chrom = fields[0];
    record.start = parse_int_field(fields[3], "GTF2 start", line_number) - 1;
    record.end = parse_int_field(fields[4], "GTF2 end", line_number);
    record.score = parse_score(fields[5], line_number);
    record.strand = parse_strand(fields[6], line_number);
    if (record.start < 0 || record.end < record.start) {
      throw ParseError("GTF2: bad coordinates", line_number, 1);
    }
    // Attributes: key "value"; pairs.
    for (const std::string& attribute : split(fields[8], ';')) {
      const auto trimmed = trim(attribute);
      if (!starts_with(trimmed, "gene_id")) continue;
      const size_t open = trimmed.find('"');
      const size_t close = trimmed.rfind('"');
      if (open != std::string_view::npos && close > open) {
        record.name = std::string(trimmed.substr(open + 1, close - open - 1));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string write_gtf2(const std::vector<AnnotationRecord>& records,
                       const std::string& source, const std::string& type) {
  std::string out;
  for (const AnnotationRecord& record : records) {
    out += record.chrom + "\t" + source + "\t" + type + "\t" +
           std::to_string(record.start + 1) + "\t" + std::to_string(record.end) +
           "\t" + format_double(record.score) + "\t" + record.strand +
           "\t.\tgene_id \"" + record.name + "\";\n";
  }
  return out;
}

std::vector<AnnotationRecord> parse_psl(std::string_view text) {
  std::vector<AnnotationRecord> records;
  size_t line_number = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_number;
    const auto trimmed = trim(line);
    if (trimmed.empty() || starts_with(trimmed, "psLayout") ||
        starts_with(trimmed, "match") || starts_with(trimmed, "-") ||
        starts_with(trimmed, "#")) {
      continue;  // header block
    }
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 21) {
      throw ParseError("PSL: expected 21 fields, got " + std::to_string(fields.size()),
                       line_number, 1);
    }
    AnnotationRecord record;
    record.score = parse_score(fields[0], line_number);  // match count
    record.strand = parse_strand(fields[8].substr(0, 1), line_number);
    record.name = fields[9];
    record.chrom = fields[13];
    record.start = parse_int_field(fields[15], "PSL tStart", line_number);
    record.end = parse_int_field(fields[16], "PSL tEnd", line_number);
    if (record.end < record.start) {
      throw ParseError("PSL: tEnd before tStart", line_number, 1);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string write_psl(const std::vector<AnnotationRecord>& records) {
  std::string out;
  for (const AnnotationRecord& record : records) {
    const std::string span = std::to_string(record.end - record.start);
    // 21 columns: match mismatch repMatch nCount qNumInsert qBaseInsert
    // tNumInsert tBaseInsert strand qName qSize qStart qEnd tName tSize
    // tStart tEnd blockCount blockSizes qStarts tStarts
    out += format_double(record.score) + "\t0\t0\t0\t0\t0\t0\t0\t" +
           (record.strand == '.' ? "+" : std::string(1, record.strand)) + "\t" +
           record.name + "\t" + span + "\t0\t" + span + "\t" + record.chrom +
           "\t0\t" + std::to_string(record.start) + "\t" +
           std::to_string(record.end) + "\t1\t" + span + ",\t0,\t" +
           std::to_string(record.start) + ",\n";
  }
  return out;
}

std::string convert_annotation(std::string_view text, const std::string& from,
                               const std::string& to) {
  std::vector<AnnotationRecord> records;
  if (from == "bed") records = parse_bed(text);
  else if (from == "gff3") records = parse_gff3(text);
  else if (from == "gtf2") records = parse_gtf2(text);
  else if (from == "psl") records = parse_psl(text);
  else throw ValidationError("convert_annotation: unknown source format '" + from + "'");
  if (to == "bed") return write_bed(records);
  if (to == "gff3") return write_gff3(records);
  if (to == "gtf2") return write_gtf2(records);
  if (to == "psl") return write_psl(records);
  throw ValidationError("convert_annotation: unknown target format '" + to + "'");
}

}  // namespace ff::gwas
