#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ff::obs {

namespace {

void append_escaped(std::string& out, const char* text) {
  out += '"';
  for (const char* p = text; *p; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_escaped(std::string& out, const std::string& text) {
  append_escaped(out, text.c_str());
}

void append_number(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

void append_number(std::string& out, int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  out += buf;
}

void append_arg_value(std::string& out, const Arg& arg) {
  switch (arg.type) {
    case Arg::Type::Int: append_number(out, arg.int_value); break;
    case Arg::Type::Float: append_number(out, arg.float_value); break;
    case Arg::Type::Str: append_escaped(out, arg.str_value); break;
  }
}

void append_args_object(std::string& out, const TraceEvent& event) {
  out += '{';
  for (size_t i = 0; i < event.arg_count; ++i) {
    if (i) out += ',';
    append_escaped(out, event.args[i].key);
    out += ':';
    append_arg_value(out, event.args[i]);
  }
  out += '}';
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Begin: return "begin";
    case EventKind::End: return "end";
    case EventKind::Instant: return "instant";
    case EventKind::Counter: return "counter";
  }
  return "?";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open '" + path + "'");
  out << content;
  if (!out) throw std::runtime_error("obs: write failed for '" + path + "'");
}

}  // namespace

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& event : events) {
    out += "{\"seq\":";
    append_number(out, static_cast<int64_t>(event.seq));
    out += ",\"ts\":";
    append_number(out, event.ts_s);
    out += ",\"clock\":";
    out += event.clock == ClockDomain::Wall ? "\"wall\"" : "\"virtual\"";
    out += ",\"kind\":\"";
    out += kind_name(event.kind);
    out += "\",\"cat\":";
    append_escaped(out, event.category);
    out += ",\"name\":";
    append_escaped(out, event.name);
    out += ",\"tid\":";
    append_number(out, static_cast<int64_t>(event.thread));
    // Always present (possibly empty) so consumers never branch on it.
    out += ",\"args\":";
    append_args_object(out, event);
    out += "}\n";
  }
  return out;
}

void write_jsonl(const std::string& path,
                 const std::vector<TraceEvent>& events) {
  write_file(path, to_jsonl(events));
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  // Name the two clock-domain tracks so Perfetto labels them.
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wall clock\"}},\n";
  out +=
      "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
      "\"args\":{\"name\":\"virtual time\"}}";
  for (const TraceEvent& event : events) {
    out += ",\n{\"ph\":\"";
    switch (event.kind) {
      case EventKind::Begin: out += 'B'; break;
      case EventKind::End: out += 'E'; break;
      case EventKind::Instant: out += 'i'; break;
      case EventKind::Counter: out += 'C'; break;
    }
    out += "\",\"pid\":";
    out += event.clock == ClockDomain::Wall ? '1' : '2';
    out += ",\"tid\":";
    append_number(out, static_cast<int64_t>(event.thread));
    out += ",\"ts\":";
    append_number(out, event.ts_s * 1e6);  // trace_event wants microseconds
    out += ",\"cat\":";
    append_escaped(out, event.category);
    out += ",\"name\":";
    append_escaped(out, event.name);
    if (event.kind == EventKind::Instant) out += ",\"s\":\"t\"";
    if (event.arg_count > 0 || event.kind == EventKind::Counter) {
      out += ",\"args\":";
      append_args_object(out, event);
    }
    out += '}';
  }
  out += "]\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  write_file(path, to_chrome_trace(events));
}

}  // namespace ff::obs
