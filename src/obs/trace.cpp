#include "obs/trace.hpp"

#include <algorithm>

namespace ff::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_trace_listener_installed{false};
}

thread_local TraceRecorder::ThreadBuffer* TraceRecorder::t_buffer_ = nullptr;

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void TraceRecorder::set_ring_capacity(size_t events) {
  const size_t capacity = std::max<size_t>(1, events);
  std::lock_guard registry_lock(registry_mutex_);
  ring_capacity_ = capacity;
  for (auto& buffer : buffers_) {
    std::lock_guard lock(buffer->mutex);
    buffer->ring.clear();
    buffer->ring.shrink_to_fit();
    buffer->head = 0;
    buffer->capacity = capacity;
  }
}

size_t TraceRecorder::ring_capacity() const {
  std::lock_guard lock(registry_mutex_);
  return ring_capacity_;
}

double TraceRecorder::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  if (t_buffer_) return *t_buffer_;
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard lock(registry_mutex_);
    buffer->capacity = ring_capacity_;
    buffer->index = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  t_buffer_ = buffer.get();
  return *t_buffer_;
}

void TraceRecorder::record(ClockDomain clock, double ts_s, EventKind kind,
                           const char* category, const char* name,
                           std::initializer_list<Arg> args) {
  TraceEvent event;
  event.kind = kind;
  event.clock = clock;
  event.ts_s = ts_s;
  event.category = category;
  event.name = name;
  event.arg_count = static_cast<uint8_t>(std::min(args.size(), kMaxArgs));
  size_t i = 0;
  for (const Arg& arg : args) {
    if (i >= kMaxArgs) break;
    event.args[i++] = arg;
  }
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (detail::g_trace_listener_installed.load(std::memory_order_relaxed)) {
    notify_listener(event);
  }

  ThreadBuffer& buffer = local_buffer();
  event.thread = buffer.index;
  std::lock_guard lock(buffer.mutex);
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(std::move(event));
  } else {
    buffer.ring[buffer.head] = std::move(event);
    buffer.head = (buffer.head + 1) % buffer.capacity;
    ++buffer.dropped;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceRecorder::set_listener(Listener listener, void* ctx) {
  // Flag-then-slot on install, slot-then-flag on uninstall would still race
  // with a concurrent emit; holding the mutex across both keeps any
  // in-flight notify_listener() call strictly before or after the swap.
  std::lock_guard lock(listener_mutex_);
  listener_ = listener;
  listener_ctx_ = listener ? ctx : nullptr;
  detail::g_trace_listener_installed.store(listener != nullptr,
                                           std::memory_order_relaxed);
}

void TraceRecorder::notify_listener(const TraceEvent& event) {
  std::lock_guard lock(listener_mutex_);
  if (listener_) listener_(listener_ctx_, event);
}

void TraceRecorder::notify_only(EventKind kind, const char* category,
                                const char* name,
                                std::initializer_list<Arg> args) {
  TraceEvent event;
  event.kind = kind;
  event.clock = ClockDomain::Wall;
  event.ts_s = now_s();
  event.category = category;
  event.name = name;
  event.arg_count = static_cast<uint8_t>(std::min(args.size(), kMaxArgs));
  size_t i = 0;
  for (const Arg& arg : args) {
    if (i >= kMaxArgs) break;
    event.args[i++] = arg;
  }
  notify_listener(event);
}

void TraceRecorder::emit(EventKind kind, const char* category,
                         const char* name, std::initializer_list<Arg> args) {
  record(ClockDomain::Wall, now_s(), kind, category, name, args);
}

void TraceRecorder::emit_at(double virtual_ts_s, EventKind kind,
                            const char* category, const char* name,
                            std::initializer_list<Arg> args) {
  record(ClockDomain::Virtual, virtual_ts_s, kind, category, name, args);
}

std::vector<TraceEvent> TraceRecorder::flush() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    // Ring order: oldest first. Once wrapped, head points at the oldest.
    const size_t n = buffer->ring.size();
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(buffer->ring[(buffer->head + i) % n]));
    }
    buffer->ring.clear();
    buffer->head = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.seq < b.seq;
                   });
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard registry_lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard lock(buffer->mutex);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->dropped = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

uint64_t TraceRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void trace_counter(const char* category, const char* name, double value,
                   std::initializer_list<Arg> extra) {
  if (!tracing_enabled()) return;
  TraceRecorder& recorder = TraceRecorder::instance();
  switch (extra.size()) {
    case 0:
      recorder.emit(EventKind::Counter, category, name, {Arg("value", value)});
      break;
    case 1:
      recorder.emit(EventKind::Counter, category, name,
                    {Arg("value", value), *extra.begin()});
      break;
    default:
      recorder.emit(EventKind::Counter, category, name,
                    {Arg("value", value), *extra.begin(),
                     *(extra.begin() + 1)});
      break;
  }
}

void trace_counter_at(double virtual_ts_s, const char* category,
                      const char* name, double value,
                      std::initializer_list<Arg> extra) {
  if (!tracing_enabled()) return;
  TraceRecorder& recorder = TraceRecorder::instance();
  switch (extra.size()) {
    case 0:
      recorder.emit_at(virtual_ts_s, EventKind::Counter, category, name,
                       {Arg("value", value)});
      break;
    case 1:
      recorder.emit_at(virtual_ts_s, EventKind::Counter, category, name,
                       {Arg("value", value), *extra.begin()});
      break;
    default:
      recorder.emit_at(virtual_ts_s, EventKind::Counter, category, name,
                       {Arg("value", value), *extra.begin(),
                        *(extra.begin() + 1)});
      break;
  }
}

}  // namespace ff::obs
