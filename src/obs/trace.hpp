#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Structured tracing for the whole runtime — the machine-actionable half of
/// the paper's Provenance gauge. Every subsystem (Savanna executors, the
/// thread pool, the checkpoint harness, the stream scheduler, the iRF
/// engine) emits typed events into per-thread ring buffers owned by a
/// process-wide TraceRecorder; exporters (obs/export.hpp) turn a flushed
/// stream into JSONL or Chrome trace_event JSON. Event names, fields, and
/// units are a documented contract: docs/trace_schema.md (enforced by the
/// `trace_lint` ctest).
///
/// This library deliberately depends on nothing but the standard library so
/// that ff_util (which hosts the instrumented thread pool) can sit above it.
namespace ff::obs {

/// One typed key/value attached to an event. Keys must be string literals
/// (they are stored as pointers); string values are copied, since run ids
/// and the like are usually ephemeral. Short ids stay in SSO storage, so
/// the common emit path does not allocate.
struct Arg {
  enum class Type : uint8_t { Int, Float, Str };

  const char* key = "";
  Type type = Type::Int;
  int64_t int_value = 0;
  double float_value = 0;
  std::string str_value;

  Arg() = default;
  Arg(const char* k, int64_t v) : key(k), type(Type::Int), int_value(v) {}
  Arg(const char* k, int v) : Arg(k, static_cast<int64_t>(v)) {}
  Arg(const char* k, unsigned v) : Arg(k, static_cast<int64_t>(v)) {}
  Arg(const char* k, unsigned long v) : Arg(k, static_cast<int64_t>(v)) {}
  Arg(const char* k, unsigned long long v) : Arg(k, static_cast<int64_t>(v)) {}
  Arg(const char* k, bool v) : Arg(k, static_cast<int64_t>(v ? 1 : 0)) {}
  Arg(const char* k, double v) : key(k), type(Type::Float), float_value(v) {}
  Arg(const char* k, std::string v)
      : key(k), type(Type::Str), str_value(std::move(v)) {}
  Arg(const char* k, const char* v) : Arg(k, std::string(v)) {}
};

enum class EventKind : uint8_t { Begin, End, Instant, Counter };

/// Which clock an event's timestamp lives on. Wall events carry seconds
/// since the recorder's epoch (steady clock); Virtual events carry the
/// emitting simulation's virtual seconds. The two domains never interleave
/// meaningfully — consumers must group by clock before ordering by ts.
enum class ClockDomain : uint8_t { Wall, Virtual };

inline constexpr size_t kMaxArgs = 4;

struct TraceEvent {
  EventKind kind = EventKind::Instant;
  ClockDomain clock = ClockDomain::Wall;
  uint8_t arg_count = 0;
  uint32_t thread = 0;  // recorder-assigned dense thread index
  uint64_t seq = 0;     // process-global emission order
  double ts_s = 0;      // seconds (see ClockDomain)
  const char* category = "";
  const char* name = "";
  std::array<Arg, kMaxArgs> args;
};

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
extern std::atomic<bool> g_trace_listener_installed;
}

/// The hot-path gate: one relaxed atomic load. Instrumentation sites check
/// this (directly or through Span/trace_* helpers) before paying anything.
inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// True while a live-event listener is installed (TraceRecorder::
/// set_listener). Instant helpers fire even with ring recording disabled so
/// a subscriber (fairflowd's trace streaming) sees events without the rings
/// filling; the unsubscribed fast path stays two relaxed loads.
inline bool trace_listener_installed() noexcept {
  return detail::g_trace_listener_installed.load(std::memory_order_relaxed);
}

/// Process-wide recorder. Each emitting thread lazily registers a ring
/// buffer (default 8192 events) guarded by its own uncontended mutex; the
/// only shared state touched per event is a relaxed sequence counter. When
/// a ring is full the oldest event is overwritten and counted in dropped().
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool on);

  /// Resize every thread's ring (current contents are discarded) and use
  /// `events` for rings registered later. Intended for tests and tools.
  void set_ring_capacity(size_t events);
  size_t ring_capacity() const;

  /// Wall-clock emission (timestamp taken here). Unconditional — the
  /// tracing_enabled() gate lives in the trace_* helpers and Span, which
  /// is what lets an armed Span close after a set_tracing(false).
  void emit(EventKind kind, const char* category, const char* name,
            std::initializer_list<Arg> args = {});
  /// Virtual-clock emission at an explicit simulation time (seconds).
  void emit_at(double virtual_ts_s, EventKind kind, const char* category,
               const char* name, std::initializer_list<Arg> args = {});

  /// Drain every thread's buffer; events come back in emission (seq) order.
  /// Buffers are left empty but registered.
  std::vector<TraceEvent> flush();

  /// Drop all buffered events and reset the dropped() counter.
  void clear();

  /// Events overwritten by ring wrap-around since the last clear().
  uint64_t dropped() const;

  /// Seconds since the recorder's wall-clock epoch.
  double now_s() const;

  /// A live-event tap: called synchronously from the emitting thread for
  /// every recorded event (and, via the instant helpers, even while ring
  /// recording is disabled). One listener at a time; install with a context
  /// pointer, uninstall with (nullptr, nullptr). The callback runs under the
  /// listener mutex — it must not call back into the recorder and must not
  /// block on locks that can be held while emitting trace events.
  using Listener = void (*)(void* ctx, const TraceEvent& event);
  void set_listener(Listener listener, void* ctx);

  /// Build an event and hand it to the listener only — no ring write, no
  /// sequence number. The instant helpers use this when tracing is disabled
  /// but a listener is installed.
  void notify_only(EventKind kind, const char* category, const char* name,
                   std::initializer_list<Arg> args = {});

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> ring;  // grows to capacity, then wraps
    size_t head = 0;               // next write position once full
    size_t capacity = 0;
    uint64_t dropped = 0;
    uint32_t index = 0;
  };

  TraceRecorder();
  ThreadBuffer& local_buffer();

  // Cached pointer into the registry. The recorder is a static singleton
  // and buffers are shared_ptr-owned, so the cache never dangles even after
  // its thread's pool is destroyed.
  static thread_local ThreadBuffer* t_buffer_;
  void record(ClockDomain clock, double ts_s, EventKind kind,
              const char* category, const char* name,
              std::initializer_list<Arg> args);

  void notify_listener(const TraceEvent& event);

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> dropped_{0};
  std::mutex listener_mutex_;
  Listener listener_ = nullptr;
  void* listener_ctx_ = nullptr;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  size_t ring_capacity_ = 8192;
  std::chrono::steady_clock::time_point epoch_;
};

/// Convenience free functions — what instrumentation sites actually call.
/// All are no-ops (one branch) while tracing is disabled.

inline void set_tracing(bool on) { TraceRecorder::instance().set_enabled(on); }

inline void trace_instant(const char* category, const char* name,
                          std::initializer_list<Arg> args = {}) {
  if (tracing_enabled()) {
    TraceRecorder::instance().emit(EventKind::Instant, category, name, args);
  } else if (trace_listener_installed()) {
    TraceRecorder::instance().notify_only(EventKind::Instant, category, name,
                                          args);
  }
}

inline void trace_instant_at(double virtual_ts_s, const char* category,
                             const char* name,
                             std::initializer_list<Arg> args = {}) {
  if (tracing_enabled()) {
    TraceRecorder::instance().emit_at(virtual_ts_s, EventKind::Instant,
                                      category, name, args);
  } else if (trace_listener_installed()) {
    TraceRecorder::instance().notify_only(EventKind::Instant, category, name,
                                          args);
  }
}

/// Counters: the sampled value rides as the `value` arg; extra args (e.g. a
/// queue name) follow it.
void trace_counter(const char* category, const char* name, double value,
                   std::initializer_list<Arg> extra = {});
void trace_counter_at(double virtual_ts_s, const char* category,
                      const char* name, double value,
                      std::initializer_list<Arg> extra = {});

/// RAII wall-clock span. Arms itself only if tracing is enabled at
/// construction, so a span whose scope outlives a set_tracing(false) still
/// closes cleanly (and one constructed while disabled costs one branch).
class Span {
 public:
  Span(const char* category, const char* name,
       std::initializer_list<Arg> args = {})
      : armed_(tracing_enabled()), category_(category), name_(name) {
    if (armed_) {
      TraceRecorder::instance().emit(EventKind::Begin, category_, name_, args);
    }
  }
  ~Span() {
    if (armed_) {
      TraceRecorder::instance().emit(EventKind::End, category_, name_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_;
  const char* category_;
  const char* name_;
};

}  // namespace ff::obs
