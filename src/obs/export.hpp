#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ff::obs {

/// JSONL export: one JSON object per event, one event per line, in the
/// order given (flush() order = emission order). The envelope and every
/// event's fields are the documented contract of docs/trace_schema.md:
///
///   {"seq":12,"ts":0.001834,"clock":"wall","kind":"begin","cat":"irf",
///    "name":"irf.forest.fit","tid":0,"args":{"trees":20,"rows":200}}
std::string to_jsonl(const std::vector<TraceEvent>& events);
void write_jsonl(const std::string& path, const std::vector<TraceEvent>& events);

/// Chrome trace_event export (JSON array form), loadable directly in
/// chrome://tracing or https://ui.perfetto.dev. Wall-clock events land on
/// pid 1 ("wall clock"), virtual-clock events on pid 2 ("virtual time");
/// both use the event's microsecond timestamp so span nesting, instants
/// ("i"), and counters ("C") render on their native tracks.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace ff::obs
