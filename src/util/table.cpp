#include "util/table.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff {

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {}

size_t Table::column_index(std::string_view name) const {
  auto it = std::find(columns_.begin(), columns_.end(), name);
  if (it == columns_.end()) {
    throw NotFoundError("Table: no column '" + std::string(name) + "'");
  }
  return static_cast<size_t>(it - columns_.begin());
}

bool Table::has_column(std::string_view name) const noexcept {
  return std::find(columns_.begin(), columns_.end(), name) != columns_.end();
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != columns_.size()) {
    throw ValidationError("Table: row has " + std::to_string(row.size()) +
                          " fields, expected " + std::to_string(columns_.size()));
  }
  cells_.push_back(std::move(row));
}

const std::string& Table::cell(size_t row, size_t col) const {
  return cells_.at(row).at(col);
}

std::string& Table::cell(size_t row, size_t col) { return cells_.at(row).at(col); }

const std::string& Table::cell(size_t row, std::string_view column) const {
  return cells_.at(row).at(column_index(column));
}

const std::vector<std::string>& Table::row(size_t index) const {
  return cells_.at(index);
}

std::vector<std::string> Table::column(std::string_view name) const {
  const size_t index = column_index(name);
  std::vector<std::string> out;
  out.reserve(rows());
  for (const auto& row : cells_) out.push_back(row[index]);
  return out;
}

std::vector<double> Table::column_as_double(std::string_view name) const {
  const size_t index = column_index(name);
  std::vector<double> out;
  out.reserve(rows());
  for (const auto& row : cells_) {
    const std::string& text = row[index];
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      throw ParseError("Table: non-numeric cell '" + text + "' in column '" +
                       std::string(name) + "'");
    }
    out.push_back(value);
  }
  return out;
}

void Table::add_column(std::string name, const std::string& fill) {
  if (has_column(name)) {
    throw ValidationError("Table: duplicate column '" + name + "'");
  }
  columns_.push_back(std::move(name));
  for (auto& row : cells_) row.push_back(fill);
}

void Table::paste(const Table& other) {
  if (other.rows() != rows()) {
    throw ValidationError("Table::paste: row count mismatch (" +
                          std::to_string(rows()) + " vs " +
                          std::to_string(other.rows()) + ")");
  }
  for (const auto& name : other.columns_) {
    if (has_column(name)) {
      throw ValidationError("Table::paste: duplicate column '" + name + "'");
    }
  }
  columns_.insert(columns_.end(), other.columns_.begin(), other.columns_.end());
  for (size_t r = 0; r < rows(); ++r) {
    cells_[r].insert(cells_[r].end(), other.cells_[r].begin(), other.cells_[r].end());
  }
}

Table Table::select(const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) indices.push_back(column_index(name));
  Table out(names);
  for (const auto& row : cells_) {
    std::vector<std::string> picked;
    picked.reserve(indices.size());
    for (size_t index : indices) picked.push_back(row[index]);
    out.add_row(std::move(picked));
  }
  return out;
}

Table Table::slice_rows(size_t begin, size_t end) const {
  if (begin > end || end > rows()) throw ValidationError("Table::slice_rows: bad range");
  Table out(columns_);
  for (size_t r = begin; r < end; ++r) out.add_row(cells_[r]);
  return out;
}

namespace {

bool needs_quoting(std::string_view field, char sep) {
  return field.find_first_of(std::string{sep, '"', '\n', '\r'}) != std::string_view::npos;
}

void append_field(std::string& out, std::string_view field, char sep) {
  if (!needs_quoting(field, sep)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

/// Parse one CSV record starting at `pos`; returns fields and advances pos
/// past the record's newline. Handles quoted fields with embedded newlines.
std::vector<std::string> parse_record(std::string_view text, size_t& pos, char sep,
                                      size_t line_number) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool quoted_field = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
      continue;
    }
    if (c == '"' && field.empty() && !quoted_field) {
      in_quotes = true;
      quoted_field = true;
      ++pos;
      continue;
    }
    if (c == sep) {
      fields.push_back(std::move(field));
      field.clear();
      quoted_field = false;
      ++pos;
      continue;
    }
    if (c == '\r') {
      ++pos;
      if (pos < text.size() && text[pos] == '\n') ++pos;
      fields.push_back(std::move(field));
      return fields;
    }
    if (c == '\n') {
      ++pos;
      fields.push_back(std::move(field));
      return fields;
    }
    field += c;
    ++pos;
  }
  if (in_quotes) {
    throw ParseError("CSV: unterminated quoted field", line_number, 1);
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

Table read_csv(std::string_view text, const CsvOptions& options) {
  size_t pos = 0;
  size_t line = 1;
  if (text.empty()) return Table{};
  std::vector<std::string> header = parse_record(text, pos, options.separator, line);
  if (options.trim_fields) {
    for (auto& h : header) h = std::string(trim(h));
  }
  Table table(std::move(header));
  while (pos < text.size()) {
    ++line;
    std::vector<std::string> fields = parse_record(text, pos, options.separator, line);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (options.trim_fields) {
      for (auto& f : fields) f = std::string(trim(f));
    }
    if (fields.size() != table.cols()) {
      throw ParseError("CSV: record has " + std::to_string(fields.size()) +
                           " fields, expected " + std::to_string(table.cols()),
                       line, 1);
    }
    table.add_row(std::move(fields));
  }
  return table;
}

Table read_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_csv(buffer.str(), options);
}

std::string write_csv(const Table& table, const CsvOptions& options) {
  std::string out;
  const auto& names = table.column_names();
  for (size_t c = 0; c < names.size(); ++c) {
    if (c > 0) out += options.separator;
    append_field(out, names[c], options.separator);
  }
  out += '\n';
  for (size_t r = 0; r < table.rows(); ++r) {
    const auto& row = table.row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += options.separator;
      append_field(out, row[c], options.separator);
    }
    out += '\n';
  }
  return out;
}

void write_csv_file(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << write_csv(table, options);
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace ff
