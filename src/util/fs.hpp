#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace ff {

/// Read an entire file into a string (throws IoError).
std::string read_file(const std::string& path);

/// Write `content` to `path`, creating parent directories (throws IoError).
/// Routed through write_file_atomic: a crash mid-write can never leave a
/// corrupt partial file at `path`.
void write_file(const std::string& path, const std::string& content);

/// Crash-consistent write: `content` goes to a temporary file in the same
/// directory, is fsync'd, and is renamed over `path` (atomic on POSIX).
/// After a crash, `path` holds either the old bytes or the new bytes,
/// never a mixture. The directory entry is fsync'd best-effort.
void write_file_atomic(const std::string& path, const std::string& content);

/// Create a unique scratch directory under the system temp dir. The
/// directory (and everything in it) is removed when the object dies —
/// tests and benches use this for real on-disk workflow artifacts.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "fairflow");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }
  std::string str() const { return path_.string(); }
  /// Path of a child entry.
  std::string file(const std::string& name) const { return (path_ / name).string(); }

 private:
  std::filesystem::path path_;
};

/// Sorted list of regular files directly under `dir` (names, not paths).
std::vector<std::string> list_files(const std::string& dir);

}  // namespace ff
