#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ff {

/// splitmix64 — used to seed the main generator and as a cheap stateless
/// hash for deterministic per-entity seeds (node ids, run ids, ...).
constexpr uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ — fast, high-quality, deterministic across platforms.
/// Satisfies UniformRandomBitGenerator so it works with <random>
/// distributions, but we provide our own distribution helpers because the
/// libstdc++ distributions are not bit-reproducible across versions and this
/// repo's simulations must be.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi);

  /// Standard normal via Marsaglia polar method (deterministic).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (inverse-CDF, deterministic).
  double exponential(double mean);

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0 — used for
  /// straggler run-time models.
  double pareto(double xm, double alpha);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; throws if all are zero.
  size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A new Rng deterministically derived from this one's seed lineage and a
  /// stream id; lets parallel entities own independent streams.
  Rng fork(uint64_t stream) const {
    return Rng(splitmix64(state_[0] ^ splitmix64(stream ^ 0xa5a5a5a5a5a5a5a5ULL)));
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ff
