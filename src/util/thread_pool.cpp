#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"

namespace ff {

ThreadPool::ThreadPool(size_t workers) {
  const size_t count = std::max<size_t>(1, workers);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  obs::trace_counter("pool", "pool.queue_depth", static_cast<double>(depth));
}

std::function<void()> ThreadPool::take_locked(bool newest_first) {
  std::function<void()> task;
  if (newest_first) {
    task = std::move(queue_.back());
    queue_.pop_back();
  } else {
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  ++active_;
  if (obs::tracing_enabled()) {
    // The trace buffer mutex is a leaf lock, so emitting under mutex_ is
    // deadlock-free; the newest-first path is exactly the work-helping one.
    obs::trace_counter("pool", "pool.queue_depth",
                       static_cast<double>(queue_.size()));
    if (newest_first) {
      obs::trace_counter(
          "pool", "pool.helped",
          static_cast<double>(
              helped_.fetch_add(1, std::memory_order_relaxed) + 1));
    }
  }
  return task;
}

void ThreadPool::finish_task() {
  {
    std::lock_guard lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  // Wake helpers so they re-evaluate their done() predicates: any task that
  // just completed may have been the one a helper was waiting on.
  cv_.notify_all();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = take_locked(/*newest_first=*/false);
    }
    task();
    finish_task();
  }
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = take_locked(/*newest_first=*/true);
  }
  task();
  finish_task();
  return true;
}

void ThreadPool::help_until(const std::function<bool()>& done) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return done() || !queue_.empty() || stopping_; });
      if (done()) return;
      if (queue_.empty()) return;  // stopping with work that will never run
      task = take_locked(/*newest_first=*/true);
    }
    task();
    finish_task();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

namespace {

struct ParallelForState {
  std::atomic<size_t> remaining{0};
  std::mutex mutex;
  std::exception_ptr error;
};

}  // namespace

void parallel_for(ThreadPool& pool, size_t begin, size_t end,
                  const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, pool.worker_count() * 4);
  auto state = std::make_shared<ParallelForState>();
  state->remaining.store(chunks, std::memory_order_relaxed);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + n * c / chunks;
    const size_t hi = begin + n * (c + 1) / chunks;
    pool.post([lo, hi, &fn, state] {
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      state->remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  pool.help_until([&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ff
