#include "util/thread_pool.hpp"

#include <algorithm>

namespace ff {

ThreadPool::ThreadPool(size_t workers) {
  const size_t count = std::max<size_t>(1, workers);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, size_t begin, size_t end,
                  const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, pool.worker_count() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + n * c / chunks;
    const size_t hi = begin + n * (c + 1) / chunks;
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& future : futures) future.get();  // rethrows task exceptions
}

}  // namespace ff
