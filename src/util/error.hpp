#pragma once

#include <stdexcept>
#include <string>

namespace ff {

/// Base exception for all fairflow errors. Every library in this repo throws
/// a subclass of Error so callers can catch the whole family at API
/// boundaries without catching unrelated std exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input text (JSON, CSV, templates, model files).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, size_t line, size_t column)
      : Error(what + " at line " + std::to_string(line) + ", column " +
              std::to_string(column)),
        line_(line),
        column_(column) {}
  explicit ParseError(const std::string& what) : Error(what), line_(0), column_(0) {}

  size_t line() const noexcept { return line_; }
  size_t column() const noexcept { return column_; }

 private:
  size_t line_;
  size_t column_;
};

/// A lookup (key, path, id) that failed.
class NotFoundError : public Error {
 public:
  using Error::Error;
};

/// An operation that is invalid in the current state (e.g. submitting a
/// campaign twice, reading a port that was never bound).
class StateError : public Error {
 public:
  using Error::Error;
};

/// A value that fails validation against a schema or model constraint.
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// I/O failures surfaced from the host filesystem.
class IoError : public Error {
 public:
  using Error::Error;
};

}  // namespace ff
