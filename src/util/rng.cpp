#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ff {

uint64_t Rng::below(uint64_t n) {
  if (n == 0) throw Error("Rng::below: n must be positive");
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  while (true) {
    uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  if (lo > hi) throw Error("Rng::range: lo > hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(below(span));
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw Error("Rng::exponential: mean must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) throw Error("Rng::pareto: xm, alpha must be positive");
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) throw Error("Rng::weighted_index: all weights are zero");
  double target = uniform() * total;
  double cumulative = 0.0;
  size_t last_positive = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    cumulative += weights[i];
    last_positive = i;
    if (target < cumulative) return i;
  }
  return last_positive;  // guards against floating-point edge at target==total
}

}  // namespace ff
