#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ff {

/// A rectangular table of string cells with named columns. This is the
/// common currency of the GWAS data-wrangling code paths (Section II-A of
/// the paper): genotype matrices, phenotype tables, annotation files all
/// round-trip through it in CSV/TSV form.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> column_names);

  size_t rows() const noexcept { return cells_.size(); }
  size_t cols() const noexcept { return columns_.size(); }

  const std::vector<std::string>& column_names() const noexcept { return columns_; }
  /// Index of a named column; throws NotFoundError.
  size_t column_index(std::string_view name) const;
  bool has_column(std::string_view name) const noexcept;

  /// Append a row; must match cols(). Throws ValidationError otherwise.
  void add_row(std::vector<std::string> row);

  const std::string& cell(size_t row, size_t col) const;
  std::string& cell(size_t row, size_t col);
  const std::string& cell(size_t row, std::string_view column) const;

  const std::vector<std::string>& row(size_t index) const;

  /// Entire column as strings / doubles (throws ParseError on non-numeric).
  std::vector<std::string> column(std::string_view name) const;
  std::vector<double> column_as_double(std::string_view name) const;

  /// Add a column filled with `fill` (or value computed per row later).
  void add_column(std::string name, const std::string& fill = "");

  /// Column-wise concatenation: append all of `other`'s columns. Row counts
  /// must match — this is the core "paste" semantic from Section V-A.
  void paste(const Table& other);

  /// New table with only the named columns, in the given order.
  Table select(const std::vector<std::string>& names) const;

  /// New table with rows [begin, end).
  Table slice_rows(size_t begin, size_t end) const;

  bool operator==(const Table& other) const = default;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> cells_;
};

/// CSV/TSV (de)serialization. Quoting follows RFC 4180: fields containing
/// the separator, quotes, or newlines are double-quoted, embedded quotes
/// doubled. A header row is always present.
struct CsvOptions {
  char separator = ',';
  bool trim_fields = false;
};

Table read_csv(std::string_view text, const CsvOptions& options = {});
Table read_csv_file(const std::string& path, const CsvOptions& options = {});
std::string write_csv(const Table& table, const CsvOptions& options = {});
void write_csv_file(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace ff
