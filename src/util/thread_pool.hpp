#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ff {

/// A fixed-size worker pool. Used by the Savanna local executor to run real
/// tasks (iRF fits, paste jobs) concurrently, and by parallel_for below.
/// Exceptions thrown by tasks propagate through the returned futures.
///
/// The pool is *work-helping*: a thread that blocks waiting for pool work to
/// finish (`parallel_for`, `help_until`) drains queued tasks itself instead
/// of sleeping. This makes nested parallelism safe — a task running on a
/// pool worker may itself call `parallel_for` on the same pool without
/// deadlocking, even on a single-worker pool. Helpers pop from the *back*
/// of the queue (newest first) so a blocked parent tends to pick up its own
/// children rather than unrelated coarse-grained work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    post([packaged] { (*packaged)(); });
    return result;
  }

  /// Enqueue a fire-and-forget task. The task must not throw (submit wraps
  /// tasks in a packaged_task for exception transport; post does not).
  void post(std::function<void()> task);

  /// Run one queued task on the calling thread (newest first). Returns
  /// false without blocking when the queue is empty.
  bool run_one();

  /// Work-helping wait: run queued tasks on the calling thread until
  /// `done()` returns true; sleeps only while the queue is empty. Every
  /// task completion re-checks `done`, so a condition flipped by a task
  /// (e.g. a batch counter reaching zero) wakes the helper promptly.
  void help_until(const std::function<bool()>& done);

  /// Block until every queued and running task has finished.
  void wait_idle();

  /// Tasks queued but not yet taken by a worker or helper (instantaneous;
  /// stale by the time the caller looks at it — introspection only).
  size_t pending() const;

  /// Tasks drained by helping threads (run_one / help_until / a blocked
  /// parallel_for caller) rather than pool workers, over the pool's life.
  /// Also published as the `pool.helped` trace counter when tracing is on.
  uint64_t helped_count() const noexcept {
    return helped_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  /// Pop (front=worker FIFO, back=helper LIFO) under an already-held lock.
  std::function<void()> take_locked(bool newest_first);
  void finish_task();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stopping_ = false;
  std::atomic<uint64_t> helped_{0};
};

/// Run fn(i) for i in [begin, end) across the pool; rethrows the first task
/// exception. The calling thread helps drain the pool while waiting, so
/// nesting parallel_for inside a pool task is safe. Iteration chunks are
/// contiguous and every index runs exactly once regardless of worker count,
/// so any fn whose per-index work is independent stays deterministic.
void parallel_for(ThreadPool& pool, size_t begin, size_t end,
                  const std::function<void(size_t)>& fn);

}  // namespace ff
