#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ff {

/// A fixed-size worker pool. Used by the Savanna local executor to run real
/// tasks (iRF fits, paste jobs) concurrently, and by parallel_for below.
/// Exceptions thrown by tasks propagate through the returned futures.
class ThreadPool {
 public:
  explicit ThreadPool(size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stopping_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool; rethrows the first task
/// exception. With a single-worker pool this degrades to a serial loop, so
/// results stay deterministic on one-core hosts.
void parallel_for(ThreadPool& pool, size_t begin, size_t end,
                  const std::function<void(size_t)>& fn);

}  // namespace ff
