#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ff {

/// Streaming accumulator (Welford) — numerically stable mean/variance
/// without storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation; returns 0 when either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Ordinary least squares y = a + b*x; returns {intercept, slope, r2}.
struct OlsFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
OlsFit ols(std::span<const double> xs, std::span<const double> ys);

/// Histogram with fixed-width bins over [lo, hi); values outside clamp to
/// the edge bins. Used by benches to print distribution sketches.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);
  void add(double x);
  size_t bin_count() const noexcept { return counts_.size(); }
  size_t count(size_t bin) const { return counts_.at(bin); }
  size_t total() const noexcept { return total_; }
  double bin_lo(size_t bin) const;
  double bin_hi(size_t bin) const;
  /// Render as rows of "lo..hi | #### count" for terminal output.
  std::string render(size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace ff
