#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ff {

/// A self-contained JSON value (this repo deliberately has no third-party
/// dependencies). Strict RFC 8259 parsing with line/column diagnostics,
/// compact and pretty serialization, and dotted-path lookups used by the
/// Skel model layer ("machine.nodes", "sweeps[0].name").
///
/// Numbers are stored as int64 when the literal is integral (no '.', 'e'),
/// otherwise as double; `as_double()` accepts both, `as_int()` accepts a
/// double only when it is exactly integral.
class Json {
 public:
  using Array = std::vector<Json>;
  // std::map keeps key order deterministic, which the generators rely on to
  // make emitted artifacts byte-stable across runs.
  using Object = std::map<std::string, Json>;

  enum class Type { Null, Bool, Int, Double, String, Array_, Object_ };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<int64_t>(v)) {}
  Json(long v) : value_(static_cast<int64_t>(v)) {}
  Json(long long v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json array(std::initializer_list<Json> items) {
    return Json(Array(items));
  }
  static Json object() { return Json(Object{}); }
  static Json object(std::initializer_list<std::pair<const std::string, Json>> kv) {
    return Json(Object(kv));
  }

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  static Json parse(std::string_view text);
  /// Parse the file at `path` (throws IoError / ParseError).
  static Json parse_file(const std::string& path);

  Type type() const noexcept { return static_cast<Type>(value_.index()); }
  bool is_null() const noexcept { return type() == Type::Null; }
  bool is_bool() const noexcept { return type() == Type::Bool; }
  bool is_int() const noexcept { return type() == Type::Int; }
  bool is_double() const noexcept { return type() == Type::Double; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type() == Type::String; }
  bool is_array() const noexcept { return type() == Type::Array_; }
  bool is_object() const noexcept { return type() == Type::Object_; }

  bool as_bool() const;
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object access. const form throws NotFoundError on a missing key;
  /// mutable form inserts (and converts a Null value to an Object first,
  /// so `j["a"]["b"] = 1` works on a default-constructed Json).
  const Json& operator[](std::string_view key) const;
  Json& operator[](std::string_view key);

  /// Array access with bounds checking.
  const Json& operator[](size_t index) const;
  Json& operator[](size_t index);

  bool contains(std::string_view key) const;

  /// Typed getter with default for optional object fields.
  bool get_or(std::string_view key, bool fallback) const;
  int64_t get_or(std::string_view key, int64_t fallback) const;
  int64_t get_or(std::string_view key, int fallback) const {
    return get_or(key, static_cast<int64_t>(fallback));
  }
  double get_or(std::string_view key, double fallback) const;
  std::string get_or(std::string_view key, const std::string& fallback) const;
  std::string get_or(std::string_view key, const char* fallback) const {
    return get_or(key, std::string(fallback));
  }

  /// Dotted-path lookup: "machine.queues[1].name". Returns nullptr when any
  /// step is missing (no throw) — the template engine uses this for
  /// `{{#if}}` checks.
  const Json* find_path(std::string_view path) const;
  /// Same, but throws NotFoundError with the failing path segment.
  const Json& at_path(std::string_view path) const;

  /// Append to an array value (converts Null to empty Array first).
  void push_back(Json value);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Compact single-line serialization.
  std::string dump() const;
  /// Pretty serialization with `indent` spaces per level.
  std::string pretty(int indent = 2) const;
  /// Write pretty form to a file (throws IoError).
  void write_file(const std::string& path, int indent = 2) const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Human-readable type name ("object", "int", ...), for error messages.
  static std::string_view type_name(Type t) noexcept;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array, Object>
      value_;
};

}  // namespace ff
