#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ff {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  write_file_atomic(path, content);
}

namespace {

void write_all(int fd, const char* data, size_t size, const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      ::close(fd);
      throw IoError("write failed: " + path);
    }
    written += static_cast<size_t>(n);
  }
}

/// Make the rename itself durable: fsync the containing directory so the
/// new entry survives a crash. Best effort — some filesystems refuse.
void fsync_parent_dir(const fs::path& target) {
  const fs::path parent =
      target.parent_path().empty() ? fs::path(".") : target.parent_path();
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  const fs::path parent = fs::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) fs::create_directories(parent, ec);

  // Unique within the process so concurrent writers of the same path (or a
  // leftover tmp from a crashed run) never collide; same directory so the
  // rename stays atomic (no cross-device moves).
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) throw IoError("cannot open for writing: " + tmp);
  write_all(fd, content.data(), content.size(), tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw IoError("fsync failed: " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("TempDir: could not create a unique scratch directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throw from a destructor
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ff
