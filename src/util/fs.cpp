#include "util/fs.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ff {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  const fs::path parent = fs::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << content;
  if (!out) throw IoError("write failed: " + path);
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw IoError("TempDir: could not create a unique scratch directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throw from a destructor
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ff
