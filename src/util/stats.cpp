#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return m2 / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw Error("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw Error("percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw Error("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

OlsFit ols(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw Error("ols: size mismatch");
  if (xs.size() < 2) throw Error("ols: need at least two points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  OlsFit fit;
  fit.slope = (sxx == 0.0) ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (sxx == 0.0 || syy == 0.0) ? 0.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw Error("Histogram: hi must exceed lo");
  if (bins == 0) throw Error("Histogram: need at least one bin");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>((x - lo_) / width);
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(size_t max_width) const {
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out += pad_left(format_fixed(bin_lo(i), 2), 10);
    out += " .. ";
    out += pad_left(format_fixed(bin_hi(i), 2), 10);
    out += " | ";
    const size_t bar = counts_[i] * max_width / peak;
    out.append(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace ff
