#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace ff {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON: " + message, line_, column_);
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  void skip_whitespace() {
    while (!at_end()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    skip_whitespace();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': parse_literal("true"); return Json(true);
      case 'f': parse_literal("false"); return Json(false);
      case 'n': parse_literal("null"); return Json(nullptr);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_literal(std::string_view literal) {
    for (char expected : literal) {
      if (at_end() || peek() != expected) fail("invalid literal");
      advance();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return Json(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      char c = advance();
      if (c == '}') return Json(std::move(object));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      char c = advance();
      if (c == ']') return Json(std::move(array));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00..\uDFFF.
      if (at_end() || peek() != '\\') fail("unpaired surrogate");
      advance();
      if (at_end() || peek() != 'u') fail("unpaired surrogate");
      advance();
      unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unexpected low surrogate");
    }
    // Encode as UTF-8.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const size_t start = pos_;
    bool is_floating = false;
    if (peek() == '-') advance();
    if (peek() == '0') {
      advance();
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') advance();
    } else {
      fail("invalid number");
    }
    if (!at_end() && text_[pos_] == '.') {
      is_floating = true;
      advance();
      if (at_end() || !(peek() >= '0' && peek() <= '9')) fail("digits required after '.'");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') advance();
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_floating = true;
      advance();
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) advance();
      if (at_end() || !(peek() >= '0' && peek() <= '9')) fail("digits required in exponent");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') advance();
    }
    const std::string literal(text_.substr(start, pos_ - start));
    if (!is_floating) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end == literal.c_str() + literal.size()) {
        return Json(static_cast<int64_t>(v));
      }
      // Integer overflow: fall back to double like most JSON libraries.
    }
    return Json(std::strtod(literal.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const ParseError& e) {
    throw ParseError(std::string(e.what()) + " (in file " + path + ")");
  }
}

std::string_view Json::type_name(Type t) noexcept {
  switch (t) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Int: return "int";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::Array_: return "array";
    case Type::Object_: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void type_fail(std::string_view wanted, Json::Type got) {
  throw Error("JSON: expected " + std::string(wanted) + ", got " +
              std::string(Json::type_name(got)));
}
}  // namespace

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  type_fail("bool", type());
}

int64_t Json::as_int() const {
  if (auto* i = std::get_if<int64_t>(&value_)) return *i;
  if (auto* d = std::get_if<double>(&value_)) {
    if (*d == std::floor(*d) && std::abs(*d) < 9.2e18) return static_cast<int64_t>(*d);
    throw Error("JSON: number is not integral: " + format_double(*d));
  }
  type_fail("int", type());
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  if (auto* i = std::get_if<int64_t>(&value_)) return static_cast<double>(*i);
  type_fail("number", type());
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  type_fail("string", type());
}

const Json::Array& Json::as_array() const {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_fail("array", type());
}

Json::Array& Json::as_array() {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_fail("array", type());
}

const Json::Object& Json::as_object() const {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_fail("object", type());
}

Json::Object& Json::as_object() {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_fail("object", type());
}

const Json& Json::operator[](std::string_view key) const {
  const Object& object = as_object();
  auto it = object.find(std::string(key));
  if (it == object.end()) throw NotFoundError("JSON: missing key '" + std::string(key) + "'");
  return it->second;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  return as_object()[std::string(key)];
}

const Json& Json::operator[](size_t index) const {
  const Array& array = as_array();
  if (index >= array.size()) {
    throw NotFoundError("JSON: array index " + std::to_string(index) +
                        " out of range (size " + std::to_string(array.size()) + ")");
  }
  return array[index];
}

Json& Json::operator[](size_t index) {
  Array& array = as_array();
  if (index >= array.size()) {
    throw NotFoundError("JSON: array index " + std::to_string(index) +
                        " out of range (size " + std::to_string(array.size()) + ")");
  }
  return array[index];
}

bool Json::contains(std::string_view key) const {
  if (!is_object()) return false;
  return as_object().count(std::string(key)) > 0;
}

bool Json::get_or(std::string_view key, bool fallback) const {
  return contains(key) ? (*this)[key].as_bool() : fallback;
}
int64_t Json::get_or(std::string_view key, int64_t fallback) const {
  return contains(key) ? (*this)[key].as_int() : fallback;
}
double Json::get_or(std::string_view key, double fallback) const {
  return contains(key) ? (*this)[key].as_double() : fallback;
}
std::string Json::get_or(std::string_view key, const std::string& fallback) const {
  return contains(key) ? (*this)[key].as_string() : fallback;
}

const Json* Json::find_path(std::string_view path) const {
  const Json* node = this;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t dot = path.find('.', pos);
    std::string_view segment =
        path.substr(pos, dot == std::string_view::npos ? std::string_view::npos
                                                       : dot - pos);
    pos = (dot == std::string_view::npos) ? path.size() : dot + 1;
    // Each segment may carry [index] suffixes: "queues[1]" or "m[0][2]".
    size_t bracket = segment.find('[');
    std::string_view key = segment.substr(0, bracket);
    if (!key.empty()) {
      if (!node->is_object()) return nullptr;
      const Object& object = node->as_object();
      auto it = object.find(std::string(key));
      if (it == object.end()) return nullptr;
      node = &it->second;
    }
    while (bracket != std::string_view::npos) {
      size_t close = segment.find(']', bracket);
      if (close == std::string_view::npos) return nullptr;
      std::string_view index_text = segment.substr(bracket + 1, close - bracket - 1);
      if (!is_integer(index_text)) return nullptr;
      const auto index = static_cast<size_t>(std::stoll(std::string(index_text)));
      if (!node->is_array() || index >= node->as_array().size()) return nullptr;
      node = &node->as_array()[index];
      bracket = segment.find('[', close);
    }
  }
  return node;
}

const Json& Json::at_path(std::string_view path) const {
  const Json* node = find_path(path);
  if (!node) throw NotFoundError("JSON: no value at path '" + std::string(path) + "'");
  return *node;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(value));
}

size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  if (is_null()) return 0;
  return 1;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::Int: out += std::to_string(std::get<int64_t>(value_)); break;
    case Type::Double: out += format_double(std::get<double>(value_)); break;
    case Type::String: append_escaped(out, std::get<std::string>(value_)); break;
    case Type::Array_: {
      const Array& array = std::get<Array>(value_);
      if (array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        array[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::Object_: {
      const Object& object = std::get<Object>(value_);
      if (object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) out += ',';
        first = false;
        if (pretty) {
          out += '\n';
          out += pad;
        }
        append_escaped(out, key);
        out += pretty ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::pretty(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  out += '\n';
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  // Atomic tmp+rename: a crash mid-write never leaves a truncated document
  // (manifests and status files are re-read by campaign resumption).
  ff::write_file_atomic(path, pretty(indent));
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) return as_double() == other.as_double();
  return value_ == other.value_;
}

}  // namespace ff
