#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ff {

/// Split `text` on `sep`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on `sep` but drop empty fields. " a  b " on ' ' -> {"a","b"}.
std::vector<std::string> split_nonempty(std::string_view text, char sep);

/// Join `parts` with `sep` between each pair.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

/// True if `text` parses fully as a decimal integer (optional leading '-').
bool is_integer(std::string_view text);

/// Render a double the way JSON expects: shortest round-trippable form,
/// always with a '.' or exponent so it re-parses as floating point.
std::string format_double(double value);

/// "%.3f"-style fixed formatting without the iostream dance.
std::string format_fixed(double value, int precision);

/// Left-pad with spaces to `width` (no-op if already wider).
std::string pad_left(std::string_view text, size_t width);
/// Right-pad with spaces to `width`.
std::string pad_right(std::string_view text, size_t width);

/// Render seconds as "1h02m03s" / "4m05s" / "6.0s" for human-facing reports.
std::string format_duration(double seconds);

/// Render a byte count as "1.5 GB" / "512 MB" etc. (powers of 1024).
std::string format_bytes(double bytes);

}  // namespace ff
