#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ff {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(text, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool is_integer(std::string_view text) {
  if (text.empty()) return false;
  size_t i = (text[0] == '-') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

std::string format_double(double value) {
  if (std::isnan(value)) return "null";  // JSON has no NaN; callers rely on this
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buf[64];
  // Integral values in the safe range print as "N.0" rather than "1e+01".
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
  }
  // %.17g is always round-trippable for IEEE754 doubles; try shorter forms
  // first so common values print compactly.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  std::string out(buf);
  // Ensure the representation re-parses as floating point, not integer.
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find_first_of("0123456789") != std::string::npos) {
    out += ".0";
  }
  return out;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string pad_left(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 60.0) return format_fixed(seconds, 1) + "s";
  auto total = static_cast<long long>(seconds + 0.5);
  long long h = total / 3600;
  long long m = (total % 3600) / 60;
  long long s = total % 60;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh%02lldm%02llds", h, m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldm%02llds", m, s);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_fixed(bytes, bytes < 10 ? 2 : 1) + " " + kUnits[unit];
}

}  // namespace ff
