// fairflow-lint: pre-execution static analysis for workflow artifacts.
//
//   fairflow-lint [options] <path>...
//   fairflow-lint --workspace [options] <dir>
//
// Paths may be JSON artifacts (Skel models, campaign manifests, stream
// planes, metadata catalogs), .jsonl execution journals, or directories
// (recursively scanned for both). `--workspace` loads every artifact under
// one directory into a resolved symbol table and additionally runs the
// cross-artifact passes (FF601-FF604) and the stream-graph fixpoint
// dataflow pass (FF610-FF612), with digest-keyed incremental caching.
// Exit status: 0 clean (or warnings only), 1 when any error-severity
// finding fired, 2 on usage errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "gwas/workflow.hpp"
#include "lint/engine.hpp"
#include "lint/sarif.hpp"
#include "lint/workspace.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fairflow-lint [options] <path>...\n"
    "       fairflow-lint --workspace [options] <dir>\n"
    "\n"
    "Statically validate fairflow artifacts (Skel models, Cheetah campaign\n"
    "manifests, stream planes, metadata catalogs, savanna journals) before\n"
    "anything executes. See docs/lint_codes.md for the rule catalog.\n"
    "\n"
    "options:\n"
    "  --format=<text|jsonl|sarif>  output format (default text)\n"
    "  --sarif                      shorthand for --format=sarif\n"
    "  --output <file>              write the report to <file> instead of stdout\n"
    "  --min-run-s <seconds>        FF203 walltime floor per run (default 1.0)\n"
    "  --disable <FFxxx[,FFxxx]>    drop findings by rule code (repeatable)\n"
    "  --werror                     promote warnings to errors\n"
    "  --workspace                  whole-workspace mode: cross-artifact\n"
    "                               resolution + stream dataflow over one dir\n"
    "  --baseline <old.sarif>       report only findings absent from a prior\n"
    "                               SARIF log (fingerprint suppression)\n"
    "  --cache <file>               workspace digest-cache location (default\n"
    "                               <dir>/.fairflow-lint-cache.json)\n"
    "  --no-cache                   disable the workspace digest cache\n"
    "  --list-rules                 print the rule registry (sorted by code;\n"
    "                               honors --format=jsonl) and exit\n"
    "  --help                       this message\n";

int list_rules(const std::string& format) {
  std::vector<const ff::lint::RuleInfo*> rules;
  for (const ff::lint::RuleInfo& rule : ff::lint::rule_registry()) {
    rules.push_back(&rule);
  }
  std::sort(rules.begin(), rules.end(),
            [](const ff::lint::RuleInfo* a, const ff::lint::RuleInfo* b) {
              return a->code < b->code;
            });
  if (format == "jsonl") {
    for (const ff::lint::RuleInfo* rule : rules) {
      ff::Json entry = ff::Json::object();
      entry["code"] = std::string(rule->code);
      entry["name"] = std::string(rule->name);
      entry["severity"] =
          std::string(ff::lint::severity_name(rule->default_severity));
      entry["family"] = std::string(rule->family);
      entry["summary"] = std::string(rule->summary);
      std::printf("%s\n", entry.dump().c_str());
    }
    return 0;
  }
  for (const ff::lint::RuleInfo* rule : rules) {
    std::printf(
        "%s  %-7s  %-28s  %s\n", std::string(rule->code).c_str(),
        std::string(ff::lint::severity_name(rule->default_severity)).c_str(),
        std::string(rule->name).c_str(), std::string(rule->summary).c_str());
  }
  return 0;
}

int usage_error(const std::string& message) {
  std::fprintf(stderr, "fairflow-lint: %s\n%s", message.c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string output;
  std::string baseline_path;
  std::string cache_path;
  std::vector<std::string> disabled;
  std::vector<std::string> paths;
  bool werror = false;
  bool workspace = false;
  bool use_cache = true;
  bool want_list_rules = false;
  ff::lint::LintEngine engine;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--list-rules") {
      want_list_rules = true;  // deferred so a later --format=jsonl applies
    } else if (arg == "--sarif") {
      format = "sarif";
    } else if (ff::starts_with(arg, "--format=")) {
      format = arg.substr(9);
      if (format != "text" && format != "jsonl" && format != "sarif") {
        return usage_error("unknown format '" + format + "'");
      }
    } else if (arg == "--output" || arg == "-o") {
      const char* value = next_value("--output");
      if (!value) return usage_error("--output needs a file argument");
      output = value;
    } else if (arg == "--min-run-s") {
      const char* value = next_value("--min-run-s");
      if (!value) return usage_error("--min-run-s needs a number");
      try {
        engine.campaign_options.min_run_s = std::stod(value);
      } catch (const std::exception&) {
        return usage_error("--min-run-s: '" + std::string(value) +
                           "' is not a number");
      }
    } else if (arg == "--disable") {
      const char* value = next_value("--disable");
      if (!value) return usage_error("--disable needs a rule code");
      const std::vector<std::string> codes = ff::split_nonempty(value, ',');
      if (codes.empty()) return usage_error("--disable needs a rule code");
      for (const std::string& code : codes) {
        if (!ff::lint::find_rule(code)) {
          return usage_error("--disable: unknown rule '" + code + "'");
        }
        disabled.push_back(code);
      }
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--workspace") {
      workspace = true;
    } else if (arg == "--baseline") {
      const char* value = next_value("--baseline");
      if (!value) return usage_error("--baseline needs a SARIF file");
      baseline_path = value;
    } else if (arg == "--cache") {
      const char* value = next_value("--cache");
      if (!value) return usage_error("--cache needs a file argument");
      cache_path = value;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (ff::starts_with(arg, "-")) {
      return usage_error("unknown option '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (want_list_rules) return list_rules(format);
  if (paths.empty()) return usage_error("no artifacts to lint");

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    try {
      baseline = ff::lint::sarif_fingerprints(ff::Json::parse_file(baseline_path));
    } catch (const ff::Error& error) {
      std::fprintf(stderr, "fairflow-lint: --baseline: %s\n", error.what());
      return 2;
    }
  }

  ff::lint::LintReport report;
  if (workspace) {
    if (paths.size() != 1) {
      return usage_error("--workspace takes exactly one directory");
    }
    std::error_code probe;
    if (!std::filesystem::is_directory(paths[0], probe)) {
      return usage_error("--workspace: '" + paths[0] + "' is not a directory");
    }
    ff::lint::WorkspaceAnalyzer analyzer;
    analyzer.engine.campaign_options = engine.campaign_options;
    analyzer.engine.register_model({"gwas-paste",
                                    ff::gwas::paste_model_schema(),
                                    ff::gwas::make_paste_generator()});
    const std::string cache_file =
        cache_path.empty()
            ? (std::filesystem::path(paths[0]) / ".fairflow-lint-cache.json")
                  .string()
            : cache_path;
    if (use_cache) analyzer.load_cache(cache_file);
    ff::lint::WorkspaceStats stats;
    report = analyzer.analyze(paths[0], &stats);
    if (use_cache) {
      try {
        analyzer.save_cache(cache_file);
      } catch (const ff::IoError& error) {
        std::fprintf(stderr, "fairflow-lint: cache not saved: %s\n",
                     error.what());
      }
    }
    std::fprintf(stderr,
                 "fairflow-lint: workspace %s: %zu artifacts "
                 "(%zu re-parsed, %zu cached)\n",
                 paths[0].c_str(), stats.artifacts, stats.reparsed,
                 stats.cached);
  } else {
    // The built-in workflow: the Fig. 2 GWAS paste model/generator pair.
    engine.register_model({"gwas-paste", ff::gwas::paste_model_schema(),
                           ff::gwas::make_paste_generator()});
    report = engine.lint_paths(paths);
  }
  report.remove_codes(disabled);
  if (werror) report.promote_warnings();
  ff::lint::apply_baseline(report, baseline);
  report.sort();

  std::string rendered;
  if (format == "sarif") {
    rendered = ff::lint::render_sarif(report);
  } else if (format == "jsonl") {
    rendered = report.render_jsonl();
  } else {
    rendered = report.render_text();
  }

  if (output.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    try {
      ff::write_file(output, rendered);
    } catch (const ff::IoError& error) {
      std::fprintf(stderr, "fairflow-lint: %s\n", error.what());
      return 2;
    }
  }
  return report.has_errors() ? 1 : 0;
}
