// fairflow-lint: pre-execution static analysis for workflow artifacts.
//
//   fairflow-lint [options] <path>...
//
// Paths may be JSON artifacts (Skel models, campaign manifests, stream
// planes, metadata catalogs), .jsonl execution journals, or directories
// (recursively scanned for both). Exit status: 0 clean (or warnings only),
// 1 when any error-severity finding fired, 2 on usage errors.

#include <cstdio>
#include <string>
#include <vector>

#include "gwas/workflow.hpp"
#include "lint/engine.hpp"
#include "lint/sarif.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fairflow-lint [options] <path>...\n"
    "\n"
    "Statically validate fairflow artifacts (Skel models, Cheetah campaign\n"
    "manifests, stream planes, metadata catalogs, savanna journals) before\n"
    "anything executes. See docs/lint_codes.md for the rule catalog.\n"
    "\n"
    "options:\n"
    "  --format=<text|jsonl|sarif>  output format (default text)\n"
    "  --sarif                      shorthand for --format=sarif\n"
    "  --output <file>              write the report to <file> instead of stdout\n"
    "  --min-run-s <seconds>        FF203 walltime floor per run (default 1.0)\n"
    "  --disable <FFxxx[,FFxxx]>    drop findings by rule code (repeatable)\n"
    "  --werror                     promote warnings to errors\n"
    "  --list-rules                 print the rule registry and exit\n"
    "  --help                       this message\n";

int list_rules() {
  for (const ff::lint::RuleInfo& rule : ff::lint::rule_registry()) {
    std::printf("%s  %-7s  %-28s  %s\n", std::string(rule.code).c_str(),
                std::string(ff::lint::severity_name(rule.default_severity)).c_str(),
                std::string(rule.name).c_str(), std::string(rule.summary).c_str());
  }
  return 0;
}

int usage_error(const std::string& message) {
  std::fprintf(stderr, "fairflow-lint: %s\n%s", message.c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string output;
  std::vector<std::string> disabled;
  std::vector<std::string> paths;
  bool werror = false;
  ff::lint::LintEngine engine;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--sarif") {
      format = "sarif";
    } else if (ff::starts_with(arg, "--format=")) {
      format = arg.substr(9);
      if (format != "text" && format != "jsonl" && format != "sarif") {
        return usage_error("unknown format '" + format + "'");
      }
    } else if (arg == "--output" || arg == "-o") {
      const char* value = next_value("--output");
      if (!value) return usage_error("--output needs a file argument");
      output = value;
    } else if (arg == "--min-run-s") {
      const char* value = next_value("--min-run-s");
      if (!value) return usage_error("--min-run-s needs a number");
      try {
        engine.campaign_options.min_run_s = std::stod(value);
      } catch (const std::exception&) {
        return usage_error("--min-run-s: '" + std::string(value) +
                           "' is not a number");
      }
    } else if (arg == "--disable") {
      const char* value = next_value("--disable");
      if (!value) return usage_error("--disable needs a rule code");
      for (const std::string& code : ff::split_nonempty(value, ',')) {
        if (!ff::lint::find_rule(code)) {
          return usage_error("--disable: unknown rule '" + code + "'");
        }
        disabled.push_back(code);
      }
    } else if (arg == "--werror") {
      werror = true;
    } else if (ff::starts_with(arg, "-")) {
      return usage_error("unknown option '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage_error("no artifacts to lint");

  // The built-in workflow: the Fig. 2 GWAS paste model/generator pair.
  engine.register_model({"gwas-paste", ff::gwas::paste_model_schema(),
                         ff::gwas::make_paste_generator()});

  ff::lint::LintReport report = engine.lint_paths(paths);
  report.remove_codes(disabled);
  if (werror) report.promote_warnings();
  report.sort();

  std::string rendered;
  if (format == "sarif") {
    rendered = ff::lint::render_sarif(report);
  } else if (format == "jsonl") {
    rendered = report.render_jsonl();
  } else {
    rendered = report.render_text();
  }

  if (output.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    try {
      ff::write_file(output, rendered);
    } catch (const ff::IoError& error) {
      std::fprintf(stderr, "fairflow-lint: %s\n", error.what());
      return 2;
    }
  }
  return report.has_errors() ? 1 : 0;
}
