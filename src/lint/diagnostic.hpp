#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ff::lint {

/// How bad a finding is. `Error` findings make `fairflow-lint` (and the
/// default-on preflights in cheetah/savanna) fail; `Warning` is actionable
/// but not blocking; `Note` is informational (skipped artifacts, torn
/// journal tails the resume path will repair on its own).
enum class Severity : uint8_t { Note = 0, Warning = 1, Error = 2 };

std::string_view severity_name(Severity severity) noexcept;
Severity severity_from_name(std::string_view name);

/// Where a finding points. `file` is the artifact path as given to the
/// linter; `line`/`column` are 1-based (0 = unknown — e.g. an in-memory
/// artifact that never had text form); `json_path` is the dotted path into
/// the JSON document ("groups[2].sweeps[0].name"), kept even when the
/// line is unknown so machine consumers can still address the field.
struct SourceLocation {
  std::string file;
  size_t line = 0;
  size_t column = 0;
  std::string json_path;

  bool known() const noexcept { return line > 0; }
};

/// One finding: a stable rule code, a severity (defaulted from the rule
/// registry, promotable by --werror), a message, a location, and an
/// optional fix-it hint telling the user the cheapest way out.
/// `related` carries secondary locations that explain the finding — the
/// workspace dataflow pass uses it for the offending path through a stream
/// graph (exported as SARIF relatedLocations).
struct Diagnostic {
  std::string code;  // "FF201"
  Severity severity = Severity::Warning;
  std::string message;
  SourceLocation location;
  std::string fixit;  // empty when no mechanical remediation exists
  std::vector<SourceLocation> related;

  Json to_json() const;
};

/// Inverse of Diagnostic::to_json, for the workspace digest cache (cached
/// artifacts replay their serialized diagnostics without re-linting).
/// Throws ValidationError on a shape to_json could not have produced.
Diagnostic diagnostic_from_json(const Json& value);

/// Static metadata of one rule — the single source of truth for rule codes.
/// docs/lint_codes.md mirrors this table and tests/lint enforce that the
/// two never drift (the same contract trace_lint enforces for the trace
/// schema).
struct RuleInfo {
  std::string_view code;              // "FF201"
  std::string_view name;              // "undeclared-sweep-parameter"
  Severity default_severity;
  std::string_view family;  // artifact | skel-model | campaign | stream-plane
                            // | gauge | service | workspace | stream-dataflow
  std::string_view summary;           // one line, shown by --list-rules
};

/// Every shipped rule, ordered by code.
const std::vector<RuleInfo>& rule_registry();
/// nullptr when the code is unknown.
const RuleInfo* find_rule(std::string_view code);

/// An ordered collection of diagnostics plus the counting/rendering logic
/// every output format shares.
class LintReport {
 public:
  /// Append a finding for `code` at its registry default severity.
  /// Throws NotFoundError on a code missing from the registry — rule
  /// implementations cannot invent codes the docs don't know about.
  Diagnostic& add(std::string_view code, SourceLocation location,
                  std::string message, std::string fixit = "");

  /// Append a fully formed diagnostic, keeping its severity and related
  /// locations (the workspace cache replays findings this way). The code
  /// must still be registered.
  Diagnostic& append(Diagnostic diagnostic);

  const std::vector<Diagnostic>& diagnostics() const noexcept { return diagnostics_; }
  bool empty() const noexcept { return diagnostics_.empty(); }
  size_t size() const noexcept { return diagnostics_.size(); }

  size_t count(Severity severity) const noexcept;
  bool has_errors() const noexcept { return count(Severity::Error) > 0; }

  void merge(LintReport other);

  /// Drop diagnostics whose code is in `codes` (the --disable flag).
  /// Throws NotFoundError on a code the registry does not know — a typo'd
  /// --disable must be a usage error, not a silent no-op.
  void remove_codes(const std::vector<std::string>& codes);
  /// Keep only diagnostics for which `keep` returns true (baseline
  /// suppression, workspace-mode FF402 subsumption).
  void filter(const std::function<bool(const Diagnostic&)>& keep);
  /// Promote every Warning to Error (the --werror flag).
  void promote_warnings();
  /// Stable presentation order: file, line, column, code, message.
  void sort();

  /// Human-readable rendering, one finding per paragraph:
  ///   file.json:12:5: error[FF201]: message
  ///       fix-it: hint
  /// followed by a severity summary line.
  std::string render_text() const;
  /// One JSON object per line (mirrors Diagnostic::to_json).
  std::string render_jsonl() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace ff::lint
