#pragma once

#include <map>
#include <string>
#include <string_view>

#include "lint/diagnostic.hpp"

namespace ff::lint {

/// Maps dotted JSON paths ("groups[2].sweeps[0].name") to 1-based
/// line/column positions in the *original text* of a JSON document. The
/// diagnostic layer uses this to point findings at the exact key in the
/// user's model/campaign file instead of at "somewhere in the document".
///
/// scan() is a single forward pass that tolerates malformed input: it
/// records every position it can attribute before the first syntax problem
/// and never throws (the real parser reports FF001 separately). Object
/// members are located at their *key* (that is what a user edits); array
/// elements at the first character of the element value.
///
/// Columns are byte offsets, 1-based, and deliberately *byte-offset-stable*:
/// every byte except '\n' advances the column by exactly one. A '\r' in a
/// CRLF file counts as the line's last column (the next line still starts at
/// column 1), and each byte of a multi-byte UTF-8 key advances the column —
/// positions therefore agree with what editors and SARIF consumers compute
/// from raw bytes, independent of display width or encoding normalization.
class JsonLocator {
 public:
  /// Scan `text` once, recording a position for every addressable path.
  /// The root value has path "".
  static JsonLocator scan(std::string_view text);

  struct Position {
    size_t line = 0;    // 1-based
    size_t column = 0;  // 1-based
  };

  /// Exact-path lookup; {0,0} when unknown.
  Position position(std::string_view json_path) const;

  /// Best-effort lookup for diagnostics: walks ancestor paths ("a.b[2].c"
  /// → "a.b[2]" → "a.b" → "a" → "") until one is known, then fills a
  /// SourceLocation carrying `file` and the *requested* json_path, so the
  /// finding stays addressed at the precise field even when only a parent
  /// has a text position.
  SourceLocation locate(const std::string& file, std::string_view json_path) const;

  size_t known_paths() const noexcept { return positions_.size(); }

 private:
  std::map<std::string, Position, std::less<>> positions_;
};

}  // namespace ff::lint
