#include "lint/locator.hpp"

#include <string>

namespace ff::lint {
namespace {

/// Forward-only cursor over the document text that tracks 1-based line and
/// column as it advances. All navigation below funnels through advance() so
/// the two counters can never drift from the offset.
struct Cursor {
  std::string_view text;
  size_t offset = 0;
  size_t line = 1;
  size_t column = 1;

  bool done() const noexcept { return offset >= text.size(); }
  char peek() const noexcept { return done() ? '\0' : text[offset]; }

  void advance() noexcept {
    if (done()) return;
    if (text[offset] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++offset;
  }

  void skip_whitespace() noexcept {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  /// Consume a string literal (cursor on the opening quote). Returns the
  /// unescaped content; false when the literal is unterminated. Escape
  /// sequences only need to be *skipped* correctly — keys with escapes are
  /// recorded verbatim-unescaped for simple ones (\" \\ \/) and with the raw
  /// escape text otherwise, which is fine: the dotted-path grammar used by
  /// Json::find_path cannot address such keys anyway.
  bool consume_string(std::string* out) {
    if (peek() != '"') return false;
    advance();
    while (!done()) {
      const char c = peek();
      if (c == '"') {
        advance();
        return true;
      }
      if (c == '\\') {
        advance();
        if (done()) return false;
        const char esc = peek();
        if (out) {
          switch (esc) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            default:
              *out += '\\';
              *out += esc;
          }
        }
        advance();
        continue;
      }
      if (out) *out += c;
      advance();
    }
    return false;
  }

  /// Skip a number / true / false / null token.
  void skip_scalar_token() noexcept {
    while (!done()) {
      const char c = peek();
      const bool token = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                         c == '-' || c == '+' || c == '.' || c == 'E' || c == 'e';
      if (!token) break;
      advance();
    }
  }
};

struct Scanner {
  Cursor cursor;
  std::map<std::string, JsonLocator::Position, std::less<>>* positions;
  // Containment guard for adversarial inputs ("[[[[[…"); far deeper than any
  // real artifact, shallow enough to keep the stack safe.
  static constexpr int kMaxDepth = 256;

  void record(const std::string& path) {
    positions->emplace(path, JsonLocator::Position{cursor.line, cursor.column});
  }

  /// Scan the value starting at the cursor, recording `path` for it and every
  /// descendant. Returns false on the first syntax problem — everything
  /// recorded up to that point is kept.
  bool scan_value(const std::string& path, int depth) {
    if (depth > kMaxDepth) return false;
    cursor.skip_whitespace();
    if (cursor.done()) return false;
    record(path);
    const char c = cursor.peek();
    if (c == '{') return scan_object(path, depth);
    if (c == '[') return scan_array(path, depth);
    if (c == '"') return cursor.consume_string(nullptr);
    cursor.skip_scalar_token();
    return true;
  }

  bool scan_object(const std::string& path, int depth) {
    cursor.advance();  // '{'
    cursor.skip_whitespace();
    if (cursor.peek() == '}') {
      cursor.advance();
      return true;
    }
    while (true) {
      cursor.skip_whitespace();
      if (cursor.peek() != '"') return false;
      // The member is located at its key: that is the text a fix edits.
      const JsonLocator::Position key_pos{cursor.line, cursor.column};
      std::string key;
      if (!cursor.consume_string(&key)) return false;
      const std::string child_path = path.empty() ? key : path + "." + key;
      positions->emplace(child_path, key_pos);
      cursor.skip_whitespace();
      if (cursor.peek() != ':') return false;
      cursor.advance();
      cursor.skip_whitespace();
      // Descend without re-recording the child path (the key position wins
      // over the value position).
      if (!scan_child(child_path, depth + 1)) return false;
      cursor.skip_whitespace();
      if (cursor.peek() == ',') {
        cursor.advance();
        continue;
      }
      if (cursor.peek() == '}') {
        cursor.advance();
        return true;
      }
      return false;
    }
  }

  bool scan_array(const std::string& path, int depth) {
    cursor.advance();  // '['
    cursor.skip_whitespace();
    if (cursor.peek() == ']') {
      cursor.advance();
      return true;
    }
    size_t index = 0;
    while (true) {
      cursor.skip_whitespace();
      const std::string child_path = path + "[" + std::to_string(index) + "]";
      record(child_path);
      if (!scan_child(child_path, depth + 1)) return false;
      cursor.skip_whitespace();
      if (cursor.peek() == ',') {
        cursor.advance();
        ++index;
        continue;
      }
      if (cursor.peek() == ']') {
        cursor.advance();
        return true;
      }
      return false;
    }
  }

  /// Like scan_value but assumes `path` is already recorded at a better
  /// position (the object key or the element start).
  bool scan_child(const std::string& path, int depth) {
    if (depth > kMaxDepth) return false;
    cursor.skip_whitespace();
    if (cursor.done()) return false;
    const char c = cursor.peek();
    if (c == '{') return scan_object(path, depth);
    if (c == '[') return scan_array(path, depth);
    if (c == '"') return cursor.consume_string(nullptr);
    cursor.skip_scalar_token();
    return true;
  }
};

}  // namespace

JsonLocator JsonLocator::scan(std::string_view text) {
  JsonLocator locator;
  Scanner scanner{Cursor{text}, &locator.positions_};
  scanner.scan_value("", 0);  // best effort; partial results are kept
  return locator;
}

JsonLocator::Position JsonLocator::position(std::string_view json_path) const {
  auto it = positions_.find(json_path);
  if (it == positions_.end()) return {};
  return it->second;
}

SourceLocation JsonLocator::locate(const std::string& file,
                                   std::string_view json_path) const {
  SourceLocation location;
  location.file = file;
  location.json_path = std::string(json_path);
  std::string_view probe = json_path;
  while (true) {
    auto it = positions_.find(probe);
    if (it != positions_.end()) {
      location.line = it->second.line;
      location.column = it->second.column;
      return location;
    }
    if (probe.empty()) return location;  // nothing known at all
    // Trim the last path segment: "a.b[2].c" → "a.b[2]" → "a.b" → "a" → "".
    const size_t dot = probe.rfind('.');
    const size_t bracket = probe.rfind('[');
    size_t cut;
    if (dot == std::string_view::npos && bracket == std::string_view::npos) {
      cut = 0;
    } else if (dot == std::string_view::npos) {
      cut = bracket;
    } else if (bracket == std::string_view::npos) {
      cut = dot;
    } else {
      cut = std::max(dot, bracket);
    }
    probe = probe.substr(0, cut);
  }
}

}  // namespace ff::lint
