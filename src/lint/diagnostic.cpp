#include "lint/diagnostic.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::lint {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

Severity severity_from_name(std::string_view name) {
  const std::string wanted = to_lower(name);
  for (Severity severity : {Severity::Note, Severity::Warning, Severity::Error}) {
    if (wanted == severity_name(severity)) return severity;
  }
  throw NotFoundError("unknown severity '" + std::string(name) + "'");
}

namespace {

Json location_to_json(const SourceLocation& location) {
  Json out = Json::object();
  if (!location.file.empty()) out["file"] = location.file;
  if (location.known()) {
    out["line"] = static_cast<int64_t>(location.line);
    out["column"] = static_cast<int64_t>(location.column);
  }
  if (!location.json_path.empty()) out["path"] = location.json_path;
  return out;
}

SourceLocation location_from_json(const Json& value) {
  SourceLocation location;
  if (!value.is_object()) {
    throw ValidationError("lint: a serialized location must be an object");
  }
  location.file = value.get_or("file", "");
  location.line = static_cast<size_t>(value.get_or("line", int64_t{0}));
  location.column = static_cast<size_t>(value.get_or("column", int64_t{0}));
  location.json_path = value.get_or("path", "");
  return location;
}

}  // namespace

Json Diagnostic::to_json() const {
  Json out = Json::object();
  out["code"] = code;
  out["severity"] = std::string(severity_name(severity));
  out["message"] = message;
  if (!location.file.empty()) out["file"] = location.file;
  if (location.known()) {
    out["line"] = static_cast<int64_t>(location.line);
    out["column"] = static_cast<int64_t>(location.column);
  }
  if (!location.json_path.empty()) out["path"] = location.json_path;
  if (!fixit.empty()) out["fixit"] = fixit;
  if (!related.empty()) {
    Json list = Json::array();
    for (const SourceLocation& step : related) {
      list.push_back(location_to_json(step));
    }
    out["related"] = std::move(list);
  }
  return out;
}

Diagnostic diagnostic_from_json(const Json& value) {
  if (!value.is_object() || !value.contains("code") ||
      !value["code"].is_string()) {
    throw ValidationError("lint: a serialized diagnostic needs a \"code\"");
  }
  Diagnostic diagnostic;
  diagnostic.code = value["code"].as_string();
  diagnostic.severity = severity_from_name(value.get_or("severity", "warning"));
  diagnostic.message = value.get_or("message", "");
  diagnostic.location = location_from_json(value);
  diagnostic.fixit = value.get_or("fixit", "");
  if (value.contains("related") && value["related"].is_array()) {
    for (const Json& step : value["related"].as_array()) {
      diagnostic.related.push_back(location_from_json(step));
    }
  }
  return diagnostic;
}

const std::vector<RuleInfo>& rule_registry() {
  // Ordered by code. Every entry here must be documented in
  // docs/lint_codes.md (tests/lint/doc_sync_test enforces both directions).
  static const std::vector<RuleInfo> kRules = {
      // -------------------------------------------------- artifact plumbing
      {"FF001", "artifact-not-json", Severity::Error, "artifact",
       "the file is not parseable JSON (or JSONL line for journals)"},
      {"FF002", "unrecognized-artifact", Severity::Note, "artifact",
       "the document matches no known artifact kind and was skipped"},
      {"FF003", "unknown-model-schema", Severity::Warning, "artifact",
       "the model names a \"$model-schema\" this linter has no registration for"},
      {"FF004", "malformed-artifact", Severity::Error, "artifact",
       "the document claims a known kind but violates that kind's shape"},
      // -------------------------------------------------- skel model/template
      {"FF101", "unbound-template-variable", Severity::Error, "skel-model",
       "a generator template references a path the model cannot bind"},
      {"FF102", "unused-model-key", Severity::Warning, "skel-model",
       "a model key is neither schema-declared nor referenced by any template"},
      {"FF103", "model-type-mismatch", Severity::Error, "skel-model",
       "a model field's JSON type contradicts the schema's declared type"},
      {"FF104", "missing-required-field", Severity::Error, "skel-model",
       "a schema-required model field is absent"},
      // -------------------------------------------------- cheetah campaign
      {"FF201", "undeclared-sweep-parameter", Severity::Error, "campaign",
       "an args/derived template references a parameter no sweep declares"},
      {"FF202", "nodes-exceed-machine", Severity::Error, "campaign",
       "a sweep group requests more nodes than the target machine has"},
      {"FF203", "sweep-exceeds-walltime-budget", Severity::Error, "campaign",
       "the cartesian product cannot drain within the group's node/walltime budget"},
      {"FF204", "duplicate-run-id", Severity::Error, "campaign",
       "duplicate group/sweep/parameter names would collide run ids"},
      {"FF205", "journal-manifest-drift", Severity::Error, "campaign",
       "the execution journal disagrees with the manifest (schema version, campaign, or run set)"},
      {"FF206", "unknown-machine", Severity::Warning, "campaign",
       "the target machine is not in the preset registry; budgets are unverifiable"},
      {"FF207", "empty-parameter-values", Severity::Error, "campaign",
       "a swept parameter has no values, collapsing the cartesian product to zero runs"},
      {"FF208", "torn-journal-tail", Severity::Note, "campaign",
       "the journal ends in a torn (partially written) line; resume will truncate it"},
      {"FF209", "checkpoint-coverage-gap", Severity::Error, "campaign",
       "a checkpoint or compaction record breaks the journal's contiguous "
       "allocation-index coverage — resume would silently lose allocations"},
      {"FF210", "sweep-cardinality-overflow", Severity::Warning, "campaign",
       "a sweep's cartesian product overflows size_t — Sweep::add will refuse "
       "to construct it"},
      // -------------------------------------------------- stream plane
      {"FF301", "communication-cycle", Severity::Error, "stream-plane",
       "the communication subgraph contains a cycle — a potential deadlock"},
      {"FF302", "unknown-policy-kind", Severity::Error, "stream-plane",
       "a queue's selection-policy kind is unknown to the PolicyFactory"},
      {"FF303", "release-exceeds-capacity", Severity::Error, "stream-plane",
       "a policy's bulk release can overrun a blocking channel's capacity"},
      {"FF304", "block-on-punctuated-queue", Severity::Warning, "stream-plane",
       "overflow \"block\" on a punctuated queue can stall the producer"},
      {"FF305", "dangling-edge-endpoint", Severity::Error, "stream-plane",
       "an edge endpoint names a component or port the graph does not define"},
      {"FF306", "invalid-queue-transport", Severity::Error, "stream-plane",
       "a queue's transport configuration (capacity/overflow/batch/channel/format/args/name) is invalid"},
      {"FF307", "binary-format-without-schema", Severity::Warning, "stream-plane",
       "a binary-wire-format queue declares no schema for downstream decoders"},
      // -------------------------------------------------- gauge / tech debt
      {"FF401", "schema-tier-unbacked-port", Severity::Warning, "gauge",
       "declared DataSchema tier promises a format but a port carries no schema name"},
      {"FF402", "schema-tier-unregistered", Severity::Warning, "gauge",
       "declared DataSchema tier promises typed structure but the port schema is not in the catalog"},
      {"FF403", "customizability-tier-unbacked", Severity::Warning, "gauge",
       "declared Customizability tier promises exposed variables but none are exposed"},
      {"FF404", "access-tier-unbacked-port", Severity::Warning, "gauge",
       "declared DataAccess tier promises a protocol but a port carries no access method"},
      // -------------------------------------------------- service requests
      {"FF501", "request-not-object", Severity::Error, "service",
       "a service request frame is not a JSON object with a string \"cmd\""},
      {"FF502", "unknown-command", Severity::Error, "service",
       "a service request names a command fairflowd does not speak"},
      {"FF503", "missing-required-field", Severity::Error, "service",
       "a service request omits a field its command requires"},
      {"FF504", "field-type-mismatch", Severity::Error, "service",
       "a service request field has the wrong JSON type for its command"},
      {"FF505", "unknown-request-field", Severity::Warning, "service",
       "a service request carries a field its command does not define — the daemon ignores it"},
      // -------------------------------------------------- workspace analysis
      {"FF601", "dangling-workspace-reference", Severity::Error, "workspace",
       "a manifest's \"model\"/\"stream_plane\" reference resolves to no "
       "artifact in the workspace"},
      {"FF602", "schema-crossref-unresolved", Severity::Error, "workspace",
       "a stream plane names a record schema no catalog in the workspace "
       "registers"},
      {"FF603", "journal-triangle-broken", Severity::Error, "workspace",
       "the journal↔manifest↔trace triangle is inconsistent: a journal or "
       "trace names a campaign no workspace manifest defines"},
      {"FF604", "gauge-claim-unbacked-workspace", Severity::Warning, "workspace",
       "a component's declared DataSchema tier promises typed structure but "
       "its port schema is registered nowhere in the workspace"},
      // -------------------------------------------------- stream dataflow
      {"FF610", "deadlock-feasible-reconvergence", Severity::Error,
       "stream-dataflow",
       "reconverging blocking paths carry different worst-case rates — the "
       "faster branch can fill its bounded capacity and stall the shared "
       "ancestor while the join waits on the starved branch"},
      {"FF611", "rate-imbalance", Severity::Warning, "stream-dataflow",
       "a component's worst-case inbound rate exceeds its declared service "
       "rate — blocking transports throttle producers, lossy ones drop"},
      {"FF612", "unreachable-component", Severity::Warning, "stream-dataflow",
       "a component is unreachable from every source of the communication "
       "graph — it can never receive data"},
  };
  return kRules;
}

const RuleInfo* find_rule(std::string_view code) {
  for (const RuleInfo& rule : rule_registry()) {
    if (rule.code == code) return &rule;
  }
  return nullptr;
}

Diagnostic& LintReport::add(std::string_view code, SourceLocation location,
                            std::string message, std::string fixit) {
  const RuleInfo* rule = find_rule(code);
  if (!rule) {
    throw NotFoundError("lint: rule code '" + std::string(code) +
                        "' is not in the registry");
  }
  Diagnostic diagnostic;
  diagnostic.code = std::string(code);
  diagnostic.severity = rule->default_severity;
  diagnostic.message = std::move(message);
  diagnostic.location = std::move(location);
  diagnostic.fixit = std::move(fixit);
  diagnostics_.push_back(std::move(diagnostic));
  return diagnostics_.back();
}

Diagnostic& LintReport::append(Diagnostic diagnostic) {
  if (!find_rule(diagnostic.code)) {
    throw NotFoundError("lint: rule code '" + diagnostic.code +
                        "' is not in the registry");
  }
  diagnostics_.push_back(std::move(diagnostic));
  return diagnostics_.back();
}

size_t LintReport::count(Severity severity) const noexcept {
  size_t n = 0;
  for (const Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.severity == severity) ++n;
  }
  return n;
}

void LintReport::merge(LintReport other) {
  for (Diagnostic& diagnostic : other.diagnostics_) {
    diagnostics_.push_back(std::move(diagnostic));
  }
}

void LintReport::remove_codes(const std::vector<std::string>& codes) {
  for (const std::string& code : codes) {
    if (!find_rule(code)) {
      throw NotFoundError("lint: cannot disable unknown rule '" + code +
                          "' — not in the registry");
    }
  }
  diagnostics_.erase(
      std::remove_if(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& diagnostic) {
                       return std::find(codes.begin(), codes.end(),
                                        diagnostic.code) != codes.end();
                     }),
      diagnostics_.end());
}

void LintReport::filter(const std::function<bool(const Diagnostic&)>& keep) {
  diagnostics_.erase(
      std::remove_if(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& diagnostic) {
                       return !keep(diagnostic);
                     }),
      diagnostics_.end());
}

void LintReport::promote_warnings() {
  for (Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.severity == Severity::Warning) {
      diagnostic.severity = Severity::Error;
    }
  }
}

void LintReport::sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.file != b.location.file) {
                       return a.location.file < b.location.file;
                     }
                     if (a.location.line != b.location.line) {
                       return a.location.line < b.location.line;
                     }
                     if (a.location.column != b.location.column) {
                       return a.location.column < b.location.column;
                     }
                     if (a.code != b.code) return a.code < b.code;
                     return a.message < b.message;
                   });
}

std::string LintReport::render_text() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    const SourceLocation& loc = diagnostic.location;
    if (!loc.file.empty()) {
      out += loc.file;
      if (loc.known()) {
        out += ":" + std::to_string(loc.line) + ":" + std::to_string(loc.column);
      }
      out += ": ";
    }
    out += std::string(severity_name(diagnostic.severity)) + "[" +
           diagnostic.code + "]: " + diagnostic.message;
    if (!loc.json_path.empty() && !loc.known()) {
      out += " (at " + loc.json_path + ")";
    }
    out += "\n";
    if (!diagnostic.fixit.empty()) {
      out += "    fix-it: " + diagnostic.fixit + "\n";
    }
  }
  out += std::to_string(count(Severity::Error)) + " error(s), " +
         std::to_string(count(Severity::Warning)) + " warning(s), " +
         std::to_string(count(Severity::Note)) + " note(s)\n";
  return out;
}

std::string LintReport::render_jsonl() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += diagnostic.to_json().dump() + "\n";
  }
  return out;
}

}  // namespace ff::lint
