// FF50x: fairflowd wire-request validation. The single source of truth is
// ff_service_proto's command registry — these rules re-read the same table
// the daemon dispatches from, so the linter and the server cannot drift.
// The daemon itself tolerates unknown extra fields (forward compatibility);
// FF505 is where a human hears about them before a campaign is submitted.

#include <string>

#include "lint/rules.hpp"
#include "service/protocol.hpp"

namespace ff::lint {
namespace {

std::string json_type_name(const Json& value) {
  if (value.is_null()) return "null";
  if (value.is_bool()) return "bool";
  if (value.is_int()) return "int";
  if (value.is_double()) return "number";
  if (value.is_string()) return "string";
  if (value.is_array()) return "array";
  return "object";
}

}  // namespace

LintReport lint_service_request(const Json& request, const JsonLocator& locator,
                                const std::string& file) {
  LintReport report;
  if (!request.is_object() || !request.contains("cmd") ||
      !request["cmd"].is_string()) {
    report.add("FF501", locator.locate(file, ""),
               "service request is not a JSON object with a string \"cmd\"",
               "wrap the request as {\"cmd\": \"<command>\", ...}");
    return report;
  }

  const std::string cmd = request["cmd"].as_string();
  const service::CommandInfo* command = service::find_service_command(cmd);
  if (!command) {
    std::string known;
    for (const service::CommandInfo& entry :
         service::service_command_registry()) {
      if (!known.empty()) known += ", ";
      known += entry.cmd;
    }
    report.add("FF502", locator.locate(file, "cmd"),
               "unknown command '" + cmd + "'",
               "one of: " + known + " (docs/service_protocol.md)");
    return report;
  }

  for (const service::FieldInfo& field : command->fields) {
    const std::string name(field.name);
    if (!request.contains(name)) {
      if (field.required) {
        report.add("FF503", locator.locate(file, "cmd"),
                   "command '" + cmd + "' requires field \"" + name + "\" (" +
                       std::string(field.type) + ")",
                   "add the missing field");
      }
      continue;
    }
    if (!service::json_matches_type(request[name], field.type)) {
      report.add("FF504", locator.locate(file, name),
                 "field \"" + name + "\" of command '" + cmd + "' must be " +
                     std::string(field.type) + ", got " +
                     json_type_name(request[name]),
                 "fix the field's type");
    }
  }

  for (const auto& [key, value] : request.as_object()) {
    if (key == "cmd" || key == "id") continue;
    bool recognized = false;
    for (const service::FieldInfo& field : command->fields) {
      if (field.name == key) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      report.add("FF505", locator.locate(file, key),
                 "command '" + cmd + "' does not define field \"" + key +
                     "\" — fairflowd will ignore it",
                 "drop the field or check its spelling against "
                 "docs/service_protocol.md");
    }
  }
  return report;
}

}  // namespace ff::lint
