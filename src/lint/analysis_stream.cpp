// The workspace-mode dataflow pass over one stream plane: worst-case
// production rates and blocking-capacity constraints propagated over the
// stream-graph IR to a fixed point. FF301's pure cycle check proves nothing
// about acyclic graphs; this pass finds the feasible deadlocks and
// starvation FF301 passes clean — reconverging blocking paths with
// mismatched rates (FF610), components whose inbound rate exceeds their
// declared service rate (FF611), and components no source can ever reach
// (FF612).
//
// Rate lattice: Unknown < Known(hz) < Top (∞). Declared facts are optional
// and additive — an out port may carry "rate_hz", a component "service_hz",
// and a queue may bind to a graph edge via "edge": "a.p->b.q" to give that
// edge the queue's capacity/overflow instead of the defaults. Joins only
// move values up the lattice, and after a bounded number of rounds every
// still-changing value is widened to Top, so the pass terminates on any
// graph — cycles, self-loops, whatever an adversarial artifact declares.

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/workspace.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

struct Rate {
  enum class State { Unknown, Known, Top };
  State state = State::Unknown;
  double hz = 0.0;

  static Rate unknown() { return {}; }
  static Rate known(double hz) { return {State::Known, hz}; }
  static Rate top() { return {State::Top, 0.0}; }

  bool operator==(const Rate& other) const {
    return state == other.state &&
           (state != State::Known || hz == other.hz);
  }
};

/// Lattice join: the larger of the two (Top absorbs, Unknown is bottom).
Rate join(const Rate& a, const Rate& b) {
  if (a.state == Rate::State::Top || b.state == Rate::State::Top) {
    return Rate::top();
  }
  if (a.state == Rate::State::Unknown) return b;
  if (b.state == Rate::State::Unknown) return a;
  return Rate::known(std::max(a.hz, b.hz));
}

/// Cap a rate at a service ceiling (min with a constant — monotone).
Rate cap(const Rate& rate, double ceiling_hz) {
  if (rate.state == Rate::State::Unknown) return rate;
  if (rate.state == Rate::State::Top) return Rate::known(ceiling_hz);
  return Rate::known(std::min(rate.hz, ceiling_hz));
}

std::string rate_text(const Rate& rate) {
  switch (rate.state) {
    case Rate::State::Unknown: return "unknown";
    case Rate::State::Top: return "unbounded";
    case Rate::State::Known: return format_double(rate.hz) + " rec/s";
  }
  return "?";
}

struct Component {
  std::string id;
  size_t index = 0;        // into graph.components[]
  bool has_service = false;
  double service_hz = 0.0;
  std::map<std::string, double> declared_out;  // port name -> rate_hz
};

struct Edge {
  size_t index = 0;  // into graph.edges[]
  std::string from_comp, from_port, to_comp, to_port;
  int64_t capacity = 256;      // mirrors check_queues' transport defaults
  bool blocking = true;        // overflow "block"
  double divide = 1.0;         // bound sample-every queues thin the stream
  std::string json_path;       // "graph.edges[k]"
};

struct Endpoint {
  std::string component, port;
  bool ok = false;
};

Endpoint split_endpoint(const std::string& text) {
  Endpoint endpoint;
  const size_t dot = text.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == text.size()) {
    return endpoint;
  }
  endpoint.component = text.substr(0, dot);
  endpoint.port = text.substr(dot + 1);
  endpoint.ok = true;
  return endpoint;
}

/// BFS over component ids; returns the hop path a -> ... -> b as edge
/// pointers, empty when unreachable (or a == b).
std::vector<const Edge*> shortest_path(
    const std::string& a, const std::string& b,
    const std::map<std::string, std::vector<const Edge*>>& out_edges) {
  std::map<std::string, const Edge*> arrived_via;
  std::deque<std::string> frontier{a};
  std::set<std::string> seen{a};
  while (!frontier.empty() && !seen.count(b)) {
    const std::string at = frontier.front();
    frontier.pop_front();
    auto it = out_edges.find(at);
    if (it == out_edges.end()) continue;
    for (const Edge* edge : it->second) {
      if (seen.insert(edge->to_comp).second) {
        arrived_via[edge->to_comp] = edge;
        frontier.push_back(edge->to_comp);
      }
    }
  }
  std::vector<const Edge*> path;
  if (!arrived_via.count(b)) return path;
  for (std::string at = b; at != a;) {
    const Edge* edge = arrived_via.at(at);
    path.push_back(edge);
    at = edge->from_comp;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

LintReport analyze_stream_dataflow(const Json& plane,
                                   const JsonLocator& locator,
                                   const std::string& file) {
  LintReport report;
  const Json* graph = plane.find_path("graph");
  if (!graph || !graph->is_object()) return report;

  // ---- the IR: components with their declared facts ----
  std::map<std::string, Component> components;
  const Json* comp_list = graph->find_path("components");
  if (comp_list && comp_list->is_array()) {
    for (size_t c = 0; c < comp_list->as_array().size(); ++c) {
      const Json& entry = (*comp_list)[c];
      if (!entry.is_object() || !entry.contains("id")) continue;
      Component component;
      component.id = entry["id"].as_string();
      component.index = c;
      if (entry.contains("service_hz") && entry["service_hz"].is_number() &&
          entry["service_hz"].as_double() > 0) {
        component.has_service = true;
        component.service_hz = entry["service_hz"].as_double();
      }
      const Json* ports = entry.find_path("ports");
      if (ports && ports->is_array()) {
        for (const Json& port : ports->as_array()) {
          if (!port.is_object() || !port.contains("name")) continue;
          if (port.contains("rate_hz") && port["rate_hz"].is_number() &&
              port["rate_hz"].as_double() > 0) {
            component.declared_out[port["name"].as_string()] =
                port["rate_hz"].as_double();
          }
        }
      }
      components.emplace(component.id, std::move(component));
    }
  }
  if (components.empty()) return report;

  // ---- structurally valid edges (FF305 handles the invalid ones) ----
  std::vector<Edge> edges;
  const Json* edge_list = graph->find_path("edges");
  if (edge_list && edge_list->is_array()) {
    for (size_t e = 0; e < edge_list->as_array().size(); ++e) {
      const Json& entry = (*edge_list)[e];
      if (!entry.is_object() || !entry.contains("from") ||
          !entry.contains("to") || !entry["from"].is_string() ||
          !entry["to"].is_string()) {
        continue;
      }
      const Endpoint from = split_endpoint(entry["from"].as_string());
      const Endpoint to = split_endpoint(entry["to"].as_string());
      if (!from.ok || !to.ok || !components.count(from.component) ||
          !components.count(to.component)) {
        continue;
      }
      Edge edge;
      edge.index = e;
      edge.from_comp = from.component;
      edge.from_port = from.port;
      edge.to_comp = to.component;
      edge.to_port = to.port;
      edge.json_path = "graph.edges[" + std::to_string(e) + "]";
      edges.push_back(std::move(edge));
    }
  }
  if (edges.empty()) return report;

  // ---- queue→edge bindings override the default transport ----
  const Json* queues = plane.find_path("queues");
  if (queues && queues->is_array()) {
    for (const Json& queue : queues->as_array()) {
      if (!queue.is_object()) continue;
      const std::string binding = queue.get_or("edge", "");
      const size_t arrow = binding.find("->");
      if (arrow == std::string::npos) continue;
      const std::string from = std::string(trim(binding.substr(0, arrow)));
      const std::string to = std::string(trim(binding.substr(arrow + 2)));
      for (Edge& edge : edges) {
        if (edge.from_comp + "." + edge.from_port != from ||
            edge.to_comp + "." + edge.to_port != to) {
          continue;
        }
        if (queue.contains("capacity") && queue["capacity"].is_int() &&
            queue["capacity"].as_int() > 0) {
          edge.capacity = queue["capacity"].as_int();
        }
        edge.blocking = queue.get_or("overflow", "block") == "block";
        if (queue.get_or("kind", "") == "sample-every") {
          const Json args =
              queue.contains("args") ? queue["args"] : Json::object();
          const int64_t stride = args.get_or("stride", int64_t{1});
          if (stride > 1) edge.divide = static_cast<double>(stride);
        }
      }
    }
  }

  std::map<std::string, std::vector<const Edge*>> out_edges;
  std::map<std::string, std::vector<const Edge*>> in_edges;
  for (const Edge& edge : edges) {
    out_edges[edge.from_comp].push_back(&edge);
    in_edges[edge.to_comp].push_back(&edge);
  }

  // ---- FF612: reachability from the in-degree-0 sources ----
  std::set<std::string> reachable;
  std::deque<std::string> frontier;
  for (const auto& [id, _] : components) {
    if (!in_edges.count(id) && out_edges.count(id)) {
      reachable.insert(id);
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    const std::string at = frontier.front();
    frontier.pop_front();
    auto it = out_edges.find(at);
    if (it == out_edges.end()) continue;
    for (const Edge* edge : it->second) {
      if (reachable.insert(edge->to_comp).second) {
        frontier.push_back(edge->to_comp);
      }
    }
  }
  for (const auto& [id, component] : components) {
    if (reachable.count(id)) continue;
    const std::string path =
        "graph.components[" + std::to_string(component.index) + "]";
    const bool isolated = !in_edges.count(id) && !out_edges.count(id);
    report.add("FF612", locator.locate(file, path),
               isolated
                   ? "component '" + id +
                         "' is attached to no edge — it can never receive "
                         "or produce data"
                   : "component '" + id +
                         "' is unreachable from every source (in-degree-0 "
                         "component) of the communication graph",
               isolated ? "wire the component into the graph or remove it"
                        : "add a path from a source or remove the dead "
                          "subgraph");
  }

  // ---- the fixpoint: per-edge worst-case rates ----
  // out_rate(c) joins the declared port rate with the service-capped sum of
  // inbound edge rates; edge rate divides by a bound sample-every stride.
  // Monotone in every input, so iteration climbs the lattice; widening
  // after `round_limit` rounds bounds cyclic graphs (a feedback loop whose
  // rates keep climbing is exactly "unbounded" — Top).
  std::map<const Edge*, Rate> edge_rate;
  for (const Edge& edge : edges) edge_rate[&edge] = Rate::unknown();

  auto inbound_rate = [&](const std::string& id) -> Rate {
    auto it = in_edges.find(id);
    if (it == in_edges.end()) return Rate::unknown();
    Rate total = Rate::unknown();
    for (const Edge* edge : it->second) {
      const Rate rate = edge_rate.at(edge);
      if (rate.state == Rate::State::Top) return Rate::top();
      if (rate.state == Rate::State::Known) {
        total = total.state == Rate::State::Known
                    ? Rate::known(total.hz + rate.hz)
                    : rate;
      }
    }
    return total;
  };

  auto recompute = [&](const Edge& edge) -> Rate {
    const Component& source = components.at(edge.from_comp);
    Rate out = Rate::unknown();
    auto declared = source.declared_out.find(edge.from_port);
    if (declared != source.declared_out.end()) {
      out = Rate::known(declared->second);
    } else {
      out = inbound_rate(edge.from_comp);
      if (source.has_service) out = cap(out, source.service_hz);
    }
    if (out.state == Rate::State::Known && edge.divide > 1.0) {
      out = Rate::known(out.hz / edge.divide);
    }
    return out;
  };

  const size_t round_limit = 2 * (components.size() + edges.size()) + 8;
  bool widened = false;
  for (size_t round = 0; round < 2 * round_limit + 2; ++round) {
    bool changed = false;
    std::set<const Edge*> moved;
    for (const Edge& edge : edges) {
      const Rate next = join(edge_rate.at(&edge), recompute(edge));
      if (!(next == edge_rate.at(&edge))) {
        edge_rate[&edge] = next;
        moved.insert(&edge);
        changed = true;
      }
    }
    if (!changed) break;
    if (round + 1 >= round_limit && !widened) {
      // Still climbing past the bound: a cycle with gain. Widen every
      // edge that moved this round to Top; Top is absorbing (service caps
      // turn it into a fixed Known), so at most |V|+|E| rounds remain.
      for (const Edge* edge : moved) edge_rate[edge] = Rate::top();
      widened = true;
    }
  }

  // ---- FF611: inbound rate vs declared service rate ----
  for (const auto& [id, component] : components) {
    if (!component.has_service) continue;
    const Rate in = inbound_rate(id);
    if (in.state != Rate::State::Known) continue;
    if (in.hz <= component.service_hz * (1.0 + 1e-9)) continue;
    const std::string path =
        "graph.components[" + std::to_string(component.index) + "]";
    Diagnostic& diagnostic = report.add(
        "FF611", locator.locate(file, path),
        "component '" + id + "' receives a worst-case " +
            format_double(in.hz) + " rec/s but declares \"service_hz\": " +
            format_double(component.service_hz) +
            " — blocking inbound transports will throttle every producer "
            "upstream; lossy ones will drop the difference steadily",
        "raise \"service_hz\", thin the stream (sample-every), or lower "
        "the producers' \"rate_hz\"");
    for (const Edge* edge : in_edges.at(id)) {
      diagnostic.related.push_back(locator.locate(file, edge->json_path));
    }
  }

  // ---- FF610: reconverging blocking paths with mismatched rates ----
  // A join fed by two blocking inbound edges whose branches reconverge from
  // a common ancestor and carry *different* known rates is
  // deadlock-feasible even when acyclic: the faster branch fills its
  // bounded capacities and blocks the ancestor, while the join waits for
  // the starved branch that the blocked ancestor can no longer feed.
  for (const auto& [id, component] : components) {
    auto inbound_it = in_edges.find(id);
    if (inbound_it == in_edges.end() || inbound_it->second.size() < 2) {
      continue;
    }
    bool reported = false;
    const std::vector<const Edge*>& inbound = inbound_it->second;
    for (size_t i = 0; i < inbound.size() && !reported; ++i) {
      for (size_t j = i + 1; j < inbound.size() && !reported; ++j) {
        const Edge* fast = inbound[i];
        const Edge* slow = inbound[j];
        if (!fast->blocking || !slow->blocking) continue;
        if (fast->from_comp == slow->from_comp) continue;
        Rate fast_rate = edge_rate.at(fast);
        Rate slow_rate = edge_rate.at(slow);
        if (fast_rate.state != Rate::State::Known ||
            slow_rate.state != Rate::State::Known) {
          continue;
        }
        if (fast_rate.hz < slow_rate.hz) {
          std::swap(fast, slow);
          std::swap(fast_rate, slow_rate);
        }
        if (fast_rate.hz <= slow_rate.hz * (1.0 + 1e-9)) continue;
        // Reconvergence: some ancestor reaches both branch heads.
        std::string ancestor;
        for (const auto& [candidate, _] : components) {
          const bool to_fast =
              candidate == fast->from_comp ||
              !shortest_path(candidate, fast->from_comp, out_edges).empty();
          const bool to_slow =
              candidate == slow->from_comp ||
              !shortest_path(candidate, slow->from_comp, out_edges).empty();
          if (to_fast && to_slow) {
            ancestor = candidate;
            break;  // components is ordered: smallest id wins
          }
        }
        if (ancestor.empty()) continue;
        const std::string path =
            "graph.components[" + std::to_string(component.index) + "]";
        Diagnostic& diagnostic = report.add(
            "FF610", locator.locate(file, path),
            "join '" + id + "' is fed by blocking paths reconverging from "
                "'" + ancestor + "' at different worst-case rates (" +
                rate_text(fast_rate) + " via '" + fast->from_comp +
                "' vs " + rate_text(slow_rate) + " via '" + slow->from_comp +
                "') — the faster branch can fill its capacity-" +
                std::to_string(fast->capacity) +
                " blocking channel and stall '" + ancestor +
                "' while the join starves on the slower branch: deadlock is "
                "feasible even though the graph is acyclic",
            "balance the branch rates, give the faster branch a lossy "
            "overflow policy, or size its capacity for the full burst");
        // The offending paths, ancestor -> branch head -> join, as
        // related locations (SARIF relatedLocations).
        for (const Edge* head : {fast, slow}) {
          for (const Edge* step :
               shortest_path(ancestor, head->from_comp, out_edges)) {
            diagnostic.related.push_back(
                locator.locate(file, step->json_path));
          }
          diagnostic.related.push_back(
              locator.locate(file, head->json_path));
        }
        reported = true;
      }
    }
  }

  return report;
}

}  // namespace ff::lint
