#include <string>
#include <vector>

#include "core/gauge.hpp"
#include "lint/rules.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

/// Declared tier of one gauge in a serialized GaugeProfile
/// ({"schema": {"tier": 3, ...}, ...}); 0 (Unknown) when absent.
int64_t declared_tier(const Json& component, const char* gauge_key) {
  const Json* gauges = component.find_path("gauges");
  if (!gauges || !gauges->is_object()) return 0;
  const Json* entry = gauges->find_path(gauge_key);
  if (!entry || !entry->is_object()) return 0;
  return entry->get_or("tier", int64_t{0});
}

/// Does a port's schema string resolve in the catalog? Ports carry
/// "container:name:vN" ("csv:readings:v1") while the catalog keys
/// "name:vN", so accept an exact key or a ":"-separated suffix match.
bool schema_registered(const std::string& port_schema,
                       const std::vector<std::string>& schema_keys) {
  for (const std::string& key : schema_keys) {
    if (port_schema == key || ends_with(port_schema, ":" + key)) return true;
  }
  return false;
}

std::string tier_label(core::Gauge gauge, int64_t tier) {
  if (tier < 0 || tier >= static_cast<int64_t>(core::tier_count(gauge))) {
    return std::to_string(tier);  // out-of-ladder value straight from JSON
  }
  return std::to_string(tier) + " (" +
         std::string(core::tier_name(gauge, static_cast<uint8_t>(tier))) + ")";
}

}  // namespace

LintReport lint_gauge_components(const Json& components,
                                 const std::vector<std::string>* schema_keys,
                                 const std::string& base_path,
                                 const JsonLocator& locator,
                                 const std::string& file) {
  LintReport report;
  if (!components.is_array()) return report;
  for (size_t c = 0; c < components.as_array().size(); ++c) {
    const Json& component = components[c];
    if (!component.is_object()) continue;
    const std::string id = component.get_or("id", "<anonymous>");
    const std::string component_path =
        base_path + "[" + std::to_string(c) + "]";

    const int64_t schema_tier = declared_tier(component, "schema");
    const int64_t access_tier = declared_tier(component, "access");
    const int64_t customizability_tier =
        declared_tier(component, "customizability");

    // Port-backed promises: DataSchema >= Format means every port names its
    // container format; DataAccess >= Protocol means every port names how
    // the data is reached. A declared tier the ports don't back is
    // technical debt in the metadata itself.
    const Json* ports = component.find_path("ports");
    if (ports && ports->is_array()) {
      for (size_t p = 0; p < ports->as_array().size(); ++p) {
        const Json& port = (*ports)[p];
        if (!port.is_object()) continue;
        const std::string port_name = port.get_or("name", "?");
        const std::string port_path =
            component_path + ".ports[" + std::to_string(p) + "]";
        const std::string port_schema = port.get_or("schema", "");
        if (schema_tier >= 2 && port_schema.empty()) {
          report.add("FF401", locator.locate(file, port_path),
                     "component '" + id + "' declares DataSchema tier " +
                         tier_label(core::Gauge::DataSchema, schema_tier) +
                         " but port '" + port_name + "' names no schema",
                     "set the port's \"schema\" or lower the declared tier");
        }
        if (schema_tier >= 3 && !port_schema.empty() && schema_keys &&
            !schema_registered(port_schema, *schema_keys)) {
          report.add("FF402", locator.locate(file, port_path + ".schema"),
                     "component '" + id + "' declares DataSchema tier " +
                         tier_label(core::Gauge::DataSchema, schema_tier) +
                         " but port schema '" + port_schema +
                         "' is not registered in the catalog",
                     "register the schema descriptor or fix the reference");
        }
        if (access_tier >= 1 && port.get_or("access", "").empty()) {
          report.add("FF404", locator.locate(file, port_path),
                     "component '" + id + "' declares DataAccess tier " +
                         tier_label(core::Gauge::DataAccess, access_tier) +
                         " but port '" + port_name +
                         "' names no access method",
                     "set the port's \"access\" or lower the declared tier");
        }
      }
    }

    // Customizability >= ExposedVariables promises exposed config
    // variables; none exposed means the tier is aspirational.
    if (customizability_tier >= 2) {
      size_t exposed = 0;
      const Json* config = component.find_path("config");
      if (config && config->is_array()) {
        for (const Json& variable : config->as_array()) {
          if (variable.is_object() && variable.get_or("exposed", false)) {
            ++exposed;
          }
        }
      }
      if (exposed == 0) {
        report.add(
            "FF403", locator.locate(file, component_path + ".gauges.customizability"),
            "component '" + id + "' declares Customizability tier " +
                tier_label(core::Gauge::SoftwareCustomizability,
                           customizability_tier) +
                " but exposes no config variables",
            "expose at least one config variable or lower the declared "
            "tier");
      }
    }
  }
  return report;
}

LintReport lint_catalog(const Json& catalog, const JsonLocator& locator,
                        const std::string& file) {
  LintReport report;
  if (!catalog.is_object()) {
    report.add("FF004", locator.locate(file, ""),
               "a metadata catalog must be a JSON object");
    return report;
  }
  std::vector<std::string> schema_keys;
  const Json* schemas = catalog.find_path("schemas");
  if (schemas && schemas->is_array()) {
    for (const Json& schema : schemas->as_array()) {
      if (!schema.is_object() || !schema.contains("name")) continue;
      schema_keys.push_back(schema["name"].as_string() + ":v" +
                            std::to_string(schema.get_or("version", int64_t{1})));
    }
  }
  if (const Json* components = catalog.find_path("components")) {
    report.merge(lint_gauge_components(*components, &schema_keys, "components",
                                       locator, file));
  }
  return report;
}

}  // namespace ff::lint
