#include "lint/workspace.hpp"

#include <algorithm>
#include <filesystem>
#include <set>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

/// FNV-1a/64 over raw bytes — the same digest family the savanna journal
/// uses for run sets, cheap enough to hash a whole workspace per lint.
std::string fnv64_hex(std::initializer_list<const std::string*> parts) {
  uint64_t hash = 1469598103934665603ull;
  for (const std::string* part : parts) {
    for (const char byte : *part) {
      hash ^= static_cast<unsigned char>(byte);
      hash *= 1099511628211ull;
    }
    hash ^= 0xff;  // separator so ("ab","c") and ("a","bc") differ
    hash *= 1099511628211ull;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = hex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

ArtifactKind kind_from_name(std::string_view name) {
  for (ArtifactKind kind :
       {ArtifactKind::Unknown, ArtifactKind::SkelModel,
        ArtifactKind::CampaignManifest, ArtifactKind::StreamPlane,
        ArtifactKind::Catalog, ArtifactKind::Journal,
        ArtifactKind::ServiceRequest}) {
    if (artifact_kind_name(kind) == name) return kind;
  }
  return ArtifactKind::Unknown;
}

Json location_to_json(const SourceLocation& location) {
  Json out = Json::object();
  out["file"] = location.file;
  out["line"] = static_cast<int64_t>(location.line);
  out["column"] = static_cast<int64_t>(location.column);
  out["path"] = location.json_path;
  return out;
}

SourceLocation location_from_json(const Json& value) {
  SourceLocation location;
  location.file = value.get_or("file", "");
  location.line = static_cast<size_t>(value.get_or("line", int64_t{0}));
  location.column = static_cast<size_t>(value.get_or("column", int64_t{0}));
  location.json_path = value.get_or("path", "");
  return location;
}

Json refs_to_json(const std::vector<SymbolRef>& refs) {
  Json list = Json::array();
  for (const SymbolRef& ref : refs) {
    Json entry = Json::object();
    entry["value"] = ref.value;
    entry["loc"] = location_to_json(ref.location);
    list.push_back(std::move(entry));
  }
  return list;
}

std::vector<SymbolRef> refs_from_json(const Json& parent, const char* key) {
  std::vector<SymbolRef> refs;
  const Json* list = parent.find_path(key);
  if (!list || !list->is_array()) return refs;
  for (const Json& entry : list->as_array()) {
    SymbolRef ref;
    ref.value = entry.get_or("value", "");
    if (entry.contains("loc")) ref.location = location_from_json(entry["loc"]);
    refs.push_back(std::move(ref));
  }
  return refs;
}

/// Same resolution rule as rules_gauge: ports carry "container:name:vN",
/// catalogs key "name:vN" — exact match or ":"-separated suffix.
bool schema_resolves(const std::string& port_schema,
                     const std::set<std::string>& keys) {
  if (keys.count(port_schema)) return true;
  for (const std::string& key : keys) {
    if (ends_with(port_schema, ":" + key)) return true;
  }
  return false;
}

bool is_hidden_basename(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  return !name.empty() && name.front() == '.';
}

/// The obs trace envelope: {"seq","ts","clock","kind","cat","name",...}.
/// A .jsonl whose first record carries that shape is a trace stream, not a
/// savanna journal — running the FF205 journal checks over it would be a
/// stream of false positives.
bool looks_like_trace(const Json& first_line) {
  return first_line.is_object() && first_line.contains("seq") &&
         first_line.contains("kind") && first_line.contains("name");
}

void extract_symbols(const Json& document, const JsonLocator& locator,
                     const std::string& path, ArtifactInfo& info) {
  switch (info.kind) {
    case ArtifactKind::SkelModel: {
      if (document["$model-schema"].is_string()) {
        info.name = document["$model-schema"].as_string();
        info.name_loc = locator.locate(path, "$model-schema");
      }
      break;
    }
    case ArtifactKind::CampaignManifest: {
      info.name = document.get_or("name", "");
      info.name_loc = locator.locate(path, "name");
      for (const char* key : {"model", "stream_plane"}) {
        const Json* ref = document.find_path(key);
        if (!ref || !ref->is_string()) continue;
        SymbolRef symbol{ref->as_string(), locator.locate(path, key)};
        (std::string_view(key) == "model" ? info.model_refs
                                          : info.plane_refs)
            .push_back(std::move(symbol));
      }
      break;
    }
    case ArtifactKind::StreamPlane: {
      const Json* graph_name = document.find_path("graph.name");
      if (graph_name && graph_name->is_string()) {
        info.name = graph_name->as_string();
      }
      info.name_loc = locator.locate(path, "graph.name");
      const Json* components = document.find_path("graph.components");
      if (components && components->is_array()) {
        for (size_t c = 0; c < components->as_array().size(); ++c) {
          const Json& component = (*components)[c];
          if (!component.is_object()) continue;
          const std::string base =
              "graph.components[" + std::to_string(c) + "]";
          const Json* tier_value = component.find_path("gauges.schema.tier");
          const int64_t tier =
              tier_value && tier_value->is_int() ? tier_value->as_int() : 0;
          const Json* ports = component.find_path("ports");
          if (!ports || !ports->is_array()) continue;
          for (size_t p = 0; p < ports->as_array().size(); ++p) {
            const Json& port = (*ports)[p];
            if (!port.is_object()) continue;
            const std::string schema = port.get_or("schema", "");
            if (schema.empty()) continue;
            const SourceLocation loc = locator.locate(
                path, base + ".ports[" + std::to_string(p) + "].schema");
            info.schema_refs.push_back({schema, loc});
            if (tier >= 3) {
              info.gauge_claims.push_back(
                  {component.get_or("id", "<anonymous>"), schema, loc});
            }
          }
        }
      }
      const Json* queues = document.find_path("queues");
      if (queues && queues->is_array()) {
        for (size_t q = 0; q < queues->as_array().size(); ++q) {
          const Json& queue = (*queues)[q];
          if (!queue.is_object()) continue;
          const std::string schema = queue.get_or("schema", "");
          if (schema.empty()) continue;
          info.schema_refs.push_back(
              {schema, locator.locate(
                           path, "queues[" + std::to_string(q) + "].schema")});
        }
      }
      break;
    }
    case ArtifactKind::Catalog: {
      const Json* schemas = document.find_path("schemas");
      if (schemas && schemas->is_array()) {
        for (size_t s = 0; s < schemas->as_array().size(); ++s) {
          const Json& schema = (*schemas)[s];
          if (!schema.is_object() || !schema.contains("name")) continue;
          const std::string key =
              schema["name"].as_string() + ":v" +
              std::to_string(schema.get_or("version", int64_t{1}));
          info.schema_defs.push_back(
              {key, locator.locate(
                        path, "schemas[" + std::to_string(s) + "].name")});
        }
      }
      const Json* components = document.find_path("components");
      if (components && components->is_array()) {
        for (size_t c = 0; c < components->as_array().size(); ++c) {
          const Json& component = (*components)[c];
          if (!component.is_object()) continue;
          const Json* tier_value = component.find_path("gauges.schema.tier");
          if (!tier_value || !tier_value->is_int() ||
              tier_value->as_int() < 3) {
            continue;
          }
          const Json* ports = component.find_path("ports");
          if (!ports || !ports->is_array()) continue;
          for (size_t p = 0; p < ports->as_array().size(); ++p) {
            const Json& port = (*ports)[p];
            if (!port.is_object()) continue;
            const std::string schema = port.get_or("schema", "");
            if (schema.empty()) continue;
            info.gauge_claims.push_back(
                {component.get_or("id", "<anonymous>"), schema,
                 locator.locate(path, "components[" + std::to_string(c) +
                                          "].ports[" + std::to_string(p) +
                                          "].schema")});
          }
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

Json ArtifactInfo::to_json() const {
  Json out = Json::object();
  out["path"] = path;
  out["digest"] = digest;
  out["kind"] = std::string(artifact_kind_name(kind));
  out["trace"] = is_trace;
  out["name"] = name;
  out["name_loc"] = location_to_json(name_loc);
  out["schema_defs"] = refs_to_json(schema_defs);
  out["schema_refs"] = refs_to_json(schema_refs);
  out["model_refs"] = refs_to_json(model_refs);
  out["plane_refs"] = refs_to_json(plane_refs);
  out["campaign_refs"] = refs_to_json(campaign_refs);
  Json claims = Json::array();
  for (const GaugeClaim& claim : gauge_claims) {
    Json entry = Json::object();
    entry["component"] = claim.component;
    entry["schema"] = claim.port_schema;
    entry["loc"] = location_to_json(claim.location);
    claims.push_back(std::move(entry));
  }
  out["gauge_claims"] = std::move(claims);
  Json findings = Json::array();
  for (const Diagnostic& diagnostic : diagnostics) {
    findings.push_back(diagnostic.to_json());
  }
  out["diagnostics"] = std::move(findings);
  return out;
}

ArtifactInfo ArtifactInfo::from_json(const Json& value) {
  ArtifactInfo info;
  info.path = value.get_or("path", "");
  info.digest = value.get_or("digest", "");
  info.kind = kind_from_name(value.get_or("kind", "unknown"));
  info.is_trace = value.get_or("trace", false);
  info.name = value.get_or("name", "");
  if (value.contains("name_loc")) {
    info.name_loc = location_from_json(value["name_loc"]);
  }
  info.schema_defs = refs_from_json(value, "schema_defs");
  info.schema_refs = refs_from_json(value, "schema_refs");
  info.model_refs = refs_from_json(value, "model_refs");
  info.plane_refs = refs_from_json(value, "plane_refs");
  info.campaign_refs = refs_from_json(value, "campaign_refs");
  const Json* claims = value.find_path("gauge_claims");
  if (claims && claims->is_array()) {
    for (const Json& entry : claims->as_array()) {
      GaugeClaim claim;
      claim.component = entry.get_or("component", "");
      claim.port_schema = entry.get_or("schema", "");
      if (entry.contains("loc")) {
        claim.location = location_from_json(entry["loc"]);
      }
      info.gauge_claims.push_back(std::move(claim));
    }
  }
  const Json* findings = value.find_path("diagnostics");
  if (findings && findings->is_array()) {
    for (const Json& entry : findings->as_array()) {
      info.diagnostics.push_back(diagnostic_from_json(entry));
    }
  }
  return info;
}

ArtifactInfo WorkspaceAnalyzer::analyze_file(const std::string& path,
                                             WorkspaceStats* stats) {
  ArtifactInfo info;
  info.path = path;

  std::string text;
  try {
    text = read_file(path);
  } catch (const IoError& error) {
    LintReport report;
    report.add("FF001", SourceLocation{path, 0, 0, ""},
               std::string("cannot read file: ") + error.what());
    info.diagnostics = report.diagnostics();
    if (stats) ++stats->reparsed;
    return info;
  }

  const bool jsonl = ends_with(path, ".jsonl");
  Json manifest_hint;
  std::string manifest_path;
  std::string manifest_text;
  if (jsonl) {
    // A journal's findings depend on the sibling manifest too, so the
    // digest must cover both — otherwise editing manifest.json would
    // replay stale journal diagnostics from the cache.
    const std::filesystem::path sibling =
        std::filesystem::path(path).parent_path() / "manifest.json";
    std::error_code ec;
    if (std::filesystem::is_regular_file(sibling, ec)) {
      try {
        manifest_text = read_file(sibling.string());
        manifest_hint = Json::parse(manifest_text);
        manifest_path = sibling.string();
      } catch (const Error&) {
        manifest_hint = Json();  // it gets its own FF001 when linted directly
      }
    }
  }
  info.digest = fnv64_hex({&text, &manifest_text});

  auto cached = cache_.find(path);
  if (cached != cache_.end() && cached->second.digest == info.digest) {
    if (stats) ++stats->cached;
    return cached->second;
  }
  if (stats) ++stats->reparsed;

  if (jsonl) {
    // Trace streams share the .jsonl extension with journals; route by the
    // envelope of the first record instead of false-positiving FF205.
    Json first;
    bool first_parsed = false;
    const size_t newline = text.find('\n');
    const std::string head = text.substr(0, newline);
    if (!trim(head).empty()) {
      try {
        first = Json::parse(head);
        first_parsed = true;
      } catch (const Error&) {
      }
    }
    if (first_parsed && looks_like_trace(first)) {
      info.is_trace = true;
      LintReport report;
      size_t line_no = 0;
      size_t offset = 0;
      while (offset <= text.size()) {
        const size_t end = text.find('\n', offset);
        const std::string line =
            text.substr(offset, end == std::string::npos ? std::string::npos
                                                         : end - offset);
        ++line_no;
        if (!trim(line).empty()) {
          try {
            const Json event = Json::parse(line);
            const Json* campaign = event.find_path("args.campaign");
            if (campaign && campaign->is_string()) {
              info.campaign_refs.push_back(
                  {campaign->as_string(),
                   SourceLocation{path, line_no, 1, "args.campaign"}});
            }
          } catch (const Error& error) {
            report.add("FF001", SourceLocation{path, line_no, 1, ""},
                       "trace line is not parseable JSON: " +
                           std::string(error.what()));
          }
        }
        if (end == std::string::npos) break;
        offset = end + 1;
      }
      info.diagnostics = report.diagnostics();
    } else {
      info.kind = ArtifactKind::Journal;
      const LintReport report = lint_journal_text(
          text, path, manifest_hint,
          manifest_path.empty() ? "manifest.json" : manifest_path);
      info.diagnostics = report.diagnostics();
      if (first_parsed && first.is_object() &&
          first.contains("campaign") && first["campaign"].is_string()) {
        info.campaign_refs.push_back(
            {first["campaign"].as_string(),
             SourceLocation{path, 1, 1, "campaign"}});
      }
    }
  } else {
    LintReport report = engine.lint_text(text, path);
    Json document;
    bool parsed = false;
    try {
      document = Json::parse(text);
      parsed = true;
    } catch (const Error&) {
    }
    if (parsed) {
      const JsonLocator locator = JsonLocator::scan(text);
      info.kind = detect_kind(document);
      extract_symbols(document, locator, path, info);
      if (info.kind == ArtifactKind::StreamPlane) {
        report.merge(analyze_stream_dataflow(document, locator, path));
      }
    }
    // FF604 checks the same claim against the *union* of every catalog, so
    // the single-catalog FF402 finding is subsumed in workspace mode (and
    // would false-positive when another catalog registers the schema).
    report.filter([](const Diagnostic& diagnostic) {
      return diagnostic.code != "FF402";
    });
    info.diagnostics = report.diagnostics();
  }

  cache_[path] = info;
  return info;
}

void WorkspaceAnalyzer::cross_artifact_passes(
    const std::vector<const ArtifactInfo*>& artifacts,
    LintReport& report) const {
  std::set<std::string> model_names;
  std::set<std::string> plane_names;
  std::set<std::string> manifest_names;
  std::set<std::string> schema_keys;
  bool any_catalog = false;
  for (const ArtifactInfo* info : artifacts) {
    switch (info->kind) {
      case ArtifactKind::SkelModel:
        if (!info->name.empty()) model_names.insert(info->name);
        break;
      case ArtifactKind::CampaignManifest:
        if (!info->name.empty()) manifest_names.insert(info->name);
        break;
      case ArtifactKind::StreamPlane:
        if (!info->name.empty()) plane_names.insert(info->name);
        break;
      case ArtifactKind::Catalog:
        any_catalog = true;
        break;
      default:
        break;
    }
    for (const SymbolRef& def : info->schema_defs) {
      schema_keys.insert(def.value);
    }
  }

  for (const ArtifactInfo* info : artifacts) {
    // FF601: manifest workspace references must resolve.
    for (const SymbolRef& ref : info->model_refs) {
      if (model_names.count(ref.value)) continue;
      report.add("FF601", ref.location,
                 "manifest references model '" + ref.value +
                     "' but no artifact in the workspace declares "
                     "\"$model-schema\": \"" + ref.value + "\"",
                 "add the model artifact to the workspace or fix the "
                 "\"model\" reference");
    }
    for (const SymbolRef& ref : info->plane_refs) {
      if (plane_names.count(ref.value)) continue;
      report.add("FF601", ref.location,
                 "manifest references stream plane '" + ref.value +
                     "' but no stream-plane artifact in the workspace has "
                     "\"graph\": {\"name\": \"" + ref.value + "\"}",
                 "add the plane artifact to the workspace or fix the "
                 "\"stream_plane\" reference");
    }

    // FF602: plane schema references vs the union of workspace catalogs
    // (only meaningful once the workspace carries at least one catalog).
    if (info->kind == ArtifactKind::StreamPlane && any_catalog) {
      std::set<std::string> seen;
      for (const SymbolRef& ref : info->schema_refs) {
        if (!seen.insert(ref.value).second) continue;
        if (schema_resolves(ref.value, schema_keys)) continue;
        report.add("FF602", ref.location,
                   "stream plane references record schema '" + ref.value +
                       "' but no catalog in the workspace registers it",
                   "add the schema to a catalog's \"schemas\" or fix the "
                   "reference");
      }
    }

    // FF603: the journal↔manifest↔trace triangle — every campaign a
    // journal or trace names must have a manifest in the workspace.
    if (info->kind == ArtifactKind::Journal || info->is_trace) {
      std::set<std::string> seen;
      for (const SymbolRef& ref : info->campaign_refs) {
        if (!seen.insert(ref.value).second) continue;
        if (manifest_names.count(ref.value)) continue;
        report.add("FF603", ref.location,
                   std::string(info->is_trace ? "trace" : "journal") +
                       " names campaign '" + ref.value +
                       "' but no campaign manifest in the workspace "
                       "defines it — the provenance triangle "
                       "(journal↔manifest↔trace) cannot be closed",
                   "bundle the campaign's manifest with its journal and "
                   "trace, or fix the campaign name");
      }
    }

    // FF604: tier >= 3 schema claims vs every catalog in the workspace.
    for (const ArtifactInfo::GaugeClaim& claim : info->gauge_claims) {
      if (schema_resolves(claim.port_schema, schema_keys)) continue;
      report.add("FF604", claim.location,
                 "component '" + claim.component +
                     "' declares DataSchema tier >= 3 (TypedStructure) but "
                     "port schema '" + claim.port_schema +
                     "' is registered by no catalog anywhere in the "
                     "workspace",
                 "register the schema descriptor in a workspace catalog or "
                 "lower the declared tier");
    }
  }
}

LintReport WorkspaceAnalyzer::analyze(const std::string& root,
                                      WorkspaceStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);

  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root, ec)) {
    if (!entry.is_regular_file()) continue;
    if (is_hidden_basename(entry.path())) continue;
    const std::string name = entry.path().string();
    if (ends_with(name, ".json") || ends_with(name, ".jsonl")) {
      files.push_back(name);
    }
  }
  std::sort(files.begin(), files.end());

  LintReport report;
  std::vector<const ArtifactInfo*> artifacts;
  artifacts.reserve(files.size());
  std::vector<ArtifactInfo> analyzed;
  analyzed.reserve(files.size());
  for (const std::string& file : files) {
    analyzed.push_back(analyze_file(file, stats));
  }
  for (const ArtifactInfo& info : analyzed) {
    artifacts.push_back(&info);
    for (const Diagnostic& diagnostic : info.diagnostics) {
      report.append(diagnostic);
    }
  }
  if (stats) stats->artifacts = files.size();

  cross_artifact_passes(artifacts, report);
  report.sort();
  return report;
}

LintReport WorkspaceAnalyzer::lint_manifest_cached(const Json& manifest,
                                                   const std::string& file,
                                                   WorkspaceStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string text = manifest.pretty();
  const std::string digest = fnv64_hex({&text, &file});
  auto it = manifest_cache_.find(file);
  if (it != manifest_cache_.end() && it->second.digest == digest) {
    if (stats) ++stats->cached;
  } else {
    if (stats) ++stats->reparsed;
    const LintReport report =
        lint_campaign_manifest(manifest, JsonLocator::scan(text), file,
                               engine.campaign_options);
    manifest_cache_[file] = {digest, report.diagnostics()};
    it = manifest_cache_.find(file);
  }
  LintReport out;
  for (const Diagnostic& diagnostic : it->second.diagnostics) {
    out.append(diagnostic);
  }
  return out;
}

void WorkspaceAnalyzer::load_cache(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  try {
    const Json document = Json::parse_file(path);
    const Json* entries = document.find_path("artifacts");
    if (!entries || !entries->is_object()) return;
    for (const auto& [key, value] : entries->as_object()) {
      cache_[key] = ArtifactInfo::from_json(value);
    }
  } catch (const Error&) {
    cache_.clear();  // corrupt or missing: everything re-parses, no error
  }
}

void WorkspaceAnalyzer::save_cache(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json entries = Json::object();
  for (const auto& [key, info] : cache_) {
    entries[key] = info.to_json();
  }
  Json document = Json::object();
  document["version"] = int64_t{1};
  document["artifacts"] = std::move(entries);
  write_file_atomic(path, document.dump() + "\n");
}

size_t WorkspaceAnalyzer::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace ff::lint
