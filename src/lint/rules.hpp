#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/locator.hpp"
#include "skel/generator.hpp"
#include "skel/model.hpp"
#include "util/json.hpp"

namespace ff::lint {

// ---------------------------------------------------------------------------
// Skel model rules (FF10x)
// ---------------------------------------------------------------------------

/// What the linter knows about one "$model-schema" name: the declarative
/// schema plus the generator whose templates consume the model. Registered
/// on the engine by whoever owns the workflow (the CLI registers the
/// built-in GWAS paste workflow; tests register fixtures).
struct ModelRegistration {
  std::string name;  // matches the artifact's "$model-schema" value
  skel::ModelSchema schema;
  skel::Generator generator;
};

/// FF101 unbound-template-variable, FF102 unused-model-key,
/// FF103 model-type-mismatch, FF104 missing-required-field.
LintReport lint_model(const Json& model, const JsonLocator& locator,
                      const std::string& file,
                      const ModelRegistration& registration);

// ---------------------------------------------------------------------------
// Cheetah campaign rules (FF20x)
// ---------------------------------------------------------------------------

struct CampaignLintOptions {
  /// Assumed minimum seconds one run occupies a node, for the FF203
  /// walltime budget bound (`--min-run-s`). The check is conservative: it
  /// only errors when the budget is impossible even at this floor.
  double min_run_s = 1.0;
};

/// FF201 undeclared-sweep-parameter, FF202 nodes-exceed-machine,
/// FF203 sweep-exceeds-walltime-budget, FF204 duplicate-run-id,
/// FF206 unknown-machine, FF207 empty-parameter-values. Operates on the
/// raw manifest JSON (cheetah's .campaign/manifest.json shape) so callers
/// can lint documents the Campaign constructor would reject.
LintReport lint_campaign_manifest(const Json& manifest,
                                  const JsonLocator& locator,
                                  const std::string& file,
                                  const CampaignLintOptions& options = {});

/// FF205 journal-manifest-drift, FF208 torn-journal-tail, FF209
/// checkpoint-coverage-gap, FF001 on corrupt non-final lines.
/// `journal_text` is the raw JSONL; `manifest` may be null
/// (journal-internal checks only) when no manifest is available.
LintReport lint_journal_text(const std::string& journal_text,
                             const std::string& journal_file,
                             const Json& manifest,
                             const std::string& manifest_file);

/// Stream the run-id set a manifest implies ("group/sweep/run-NNNN"),
/// mirroring SweepGroup's lazy iteration: each id is decoded, handed to
/// `fn`, and discarded — O(1) memory however large the sweeps are. The
/// digest side of the FF205 drift check is built on this.
void for_each_manifest_run_id(const Json& manifest,
                              const std::function<void(const std::string&)>& fn);

/// Expand the run-id set a manifest implies ("group/sweep/run-NNNN"),
/// mirroring SweepGroup::generate(). Convenience wrapper over
/// for_each_manifest_run_id; exposed for the drift check and tests.
std::vector<std::string> manifest_run_ids(const Json& manifest);

// ---------------------------------------------------------------------------
// Stream-plane rules (FF30x)
// ---------------------------------------------------------------------------

/// FF301 communication-cycle, FF302 unknown-policy-kind, FF303
/// release-exceeds-capacity, FF304 block-on-punctuated-queue, FF305
/// dangling-edge-endpoint, FF306 invalid-queue-transport — over a stream
/// plane document: {"graph": <workflow_graph>, "queues": [{"queue","kind",
/// "args","capacity","overflow","punctuated"}...]}.
LintReport lint_stream_plane(const Json& plane, const JsonLocator& locator,
                             const std::string& file);

// ---------------------------------------------------------------------------
// Gauge / technical-debt rules (FF40x)
// ---------------------------------------------------------------------------

/// FF401 schema-tier-unbacked-port, FF402 schema-tier-unregistered, FF403
/// customizability-tier-unbacked, FF404 access-tier-unbacked-port — over a
/// metadata catalog document ({"components": [...], "schemas": [...]}).
LintReport lint_catalog(const Json& catalog, const JsonLocator& locator,
                        const std::string& file);

/// The FF40x checks over a bare component array (`base_path` addresses it
/// in the document, e.g. "graph.components"). `schema_keys` may be null —
/// then FF402 (registry lookups) is skipped. Shared by lint_catalog and
/// the stream-plane graph pass.
LintReport lint_gauge_components(const Json& components,
                                 const std::vector<std::string>* schema_keys,
                                 const std::string& base_path,
                                 const JsonLocator& locator,
                                 const std::string& file);

// ---------------------------------------------------------------------------
// fairflowd service-request rules (FF50x)
// ---------------------------------------------------------------------------

/// FF501 request-not-object, FF502 unknown-command, FF503
/// missing-required-field, FF504 field-type-mismatch, FF505
/// unknown-request-field — over one request frame document, validated
/// against ff_service_proto's command registry (the table fairflowd
/// dispatches from, so the two cannot drift).
LintReport lint_service_request(const Json& request, const JsonLocator& locator,
                                const std::string& file);

}  // namespace ff::lint
