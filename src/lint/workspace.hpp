#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace ff::lint {

/// One recorded symbol occurrence: the value (a schema key, an artifact
/// name, a campaign id) plus where it sits in its artifact. Serialized into
/// the digest cache so cross-artifact findings keep precise locations even
/// when the artifact itself was not re-parsed this run.
struct SymbolRef {
  std::string value;
  SourceLocation location;
};

/// Everything the workspace analyzer remembers about one artifact after a
/// parse: identity, the names it defines, and the names it references.
/// This — not the raw JSON — is what the cross-artifact passes resolve
/// against, and what the digest cache persists.
struct ArtifactInfo {
  std::string path;
  std::string digest;  // FNV-1a/64 over the raw bytes (plus sibling manifest
                       // bytes for journals — their findings depend on both)
  ArtifactKind kind = ArtifactKind::Unknown;
  bool is_trace = false;  // .jsonl with the obs trace envelope, not a journal

  std::string name;         // model schema / campaign / graph name
  SourceLocation name_loc;
  std::vector<SymbolRef> schema_defs;    // catalogs: "name:vN" keys
  std::vector<SymbolRef> schema_refs;    // planes: port + queue schemas
  std::vector<SymbolRef> model_refs;     // manifests: optional "model"
  std::vector<SymbolRef> plane_refs;     // manifests: optional "stream_plane"
  std::vector<SymbolRef> campaign_refs;  // journal header / trace args
  /// DataSchema-tier >= 3 claims: component id + port schema + location,
  /// checked against the union of every catalog in the workspace (FF604).
  struct GaugeClaim {
    std::string component;
    std::string port_schema;
    SourceLocation location;
  };
  std::vector<GaugeClaim> gauge_claims;

  std::vector<Diagnostic> diagnostics;  // per-file findings, replayable

  Json to_json() const;
  static ArtifactInfo from_json(const Json& value);
};

/// Counters analyze() fills so callers (the CLI's stderr summary, the bench,
/// cache tests) can see the digest cache working.
struct WorkspaceStats {
  size_t artifacts = 0;
  size_t reparsed = 0;  // digest misses: full parse + rule run
  size_t cached = 0;    // digest hits: diagnostics replayed from the cache
};

/// Whole-workspace semantic analysis: every *.json / *.jsonl artifact under
/// a root directory is loaded into one resolved symbol table, per-file
/// linting delegates to the LintEngine, and cross-artifact passes run on
/// top:
///
///   FF601  manifest "model"/"stream_plane" references that resolve to no
///          workspace artifact
///   FF602  plane schema references no workspace catalog registers
///   FF603  journal/trace campaigns with no matching workspace manifest
///   FF604  DataSchema tier >= 3 claims unbacked by any catalog (the
///          workspace-wide form of FF402, which it subsumes in this mode)
///   FF610/FF611/FF612  the fixpoint dataflow pass over every stream-graph
///          IR (analysis_stream.cpp) — rates and blocking-capacity
///          constraints propagated to a fixed point
///
/// Incrementality: artifacts are keyed by a content digest; an unchanged
/// artifact replays its serialized diagnostics and symbols without being
/// re-read into the parser. The cache round-trips through JSON
/// (load_cache/save_cache) so CLI re-runs and the fairflowd daemon share
/// the same format; analyze() is internally locked so concurrent service
/// sessions can share one analyzer.
class WorkspaceAnalyzer {
 public:
  /// The per-file engine: model registrations and campaign options applied
  /// to every artifact. Mutate before the first analyze() call.
  LintEngine engine;

  /// Files whose basename starts with '.' are skipped (the cache file
  /// itself lives in the workspace); hidden *directories* (.campaign/) are
  /// still walked because the cheetah layout keeps manifests there.
  LintReport analyze(const std::string& root, WorkspaceStats* stats = nullptr);

  /// Tolerant cache I/O: a missing or corrupt cache file loads as empty
  /// (worst case everything re-parses — never an error).
  void load_cache(const std::string& path);
  void save_cache(const std::string& path) const;

  /// The submit preflight's entry point: lint one manifest, memoized by the
  /// digest of its pretty-printed text. The daemon calls this for every
  /// submit, so resubmissions of an already-vetted manifest skip the rule
  /// run entirely and share this analyzer's cache with `fairflow-ctl lint`.
  LintReport lint_manifest_cached(const Json& manifest,
                                  const std::string& file,
                                  WorkspaceStats* stats = nullptr);

  size_t cache_size() const;

 private:
  struct ManifestEntry {
    std::string digest;
    std::vector<Diagnostic> diagnostics;
  };

  ArtifactInfo analyze_file(const std::string& path, WorkspaceStats* stats);
  void cross_artifact_passes(const std::vector<const ArtifactInfo*>& artifacts,
                             LintReport& report) const;

  mutable std::mutex mutex_;
  std::map<std::string, ArtifactInfo> cache_;          // by path
  std::map<std::string, ManifestEntry> manifest_cache_;  // by file label
};

/// The fixpoint dataflow pass over one stream plane (analysis_stream.cpp):
/// worst-case production rates (out-port "rate_hz", component "service_hz")
/// and blocking-capacity constraints (queue "edge" bindings) propagated
/// edge-by-edge to a fixed point. Emits FF610 (deadlock-feasible
/// reconvergence, with the offending paths as related locations), FF611
/// (rate imbalance), FF612 (unreachable component). Runs only in workspace
/// mode — per-file FF30x goldens are unaffected.
LintReport analyze_stream_dataflow(const Json& plane,
                                   const JsonLocator& locator,
                                   const std::string& file);

}  // namespace ff::lint
