#pragma once

#include <set>
#include <string>

#include "lint/diagnostic.hpp"
#include "util/json.hpp"

namespace ff::lint {

/// Render a report as a SARIF 2.1.0 log (the interchange format CI systems
/// use for inline code annotations). One run; `tool.driver.rules` lists only
/// the rules that actually fired, and each result carries a `ruleIndex` into
/// that list, a physical location when the finding has one,
/// `relatedLocations` mirroring Diagnostic::related (the dataflow pass's
/// offending paths), and a `fingerprints` entry for baseline suppression.
Json to_sarif(const LintReport& report);

/// Pretty-printed `to_sarif` with a trailing newline.
std::string render_sarif(const LintReport& report);

/// The stable identity of one finding for `--baseline`: an FNV-1a/64 hex of
/// code, file, json path, and message (the same bytes a SARIF result's
/// message.text carries, fix-it suffix included) — line/column free, so a
/// reformatted artifact keeps its suppressions.
std::string diagnostic_fingerprint(const Diagnostic& diagnostic);

/// Collect every result fingerprint from a SARIF log produced by to_sarif.
/// Results missing the "fairflow/v1" fingerprint (a baseline from another
/// tool) are recomputed from ruleId + locations + message so suppression
/// still works.
std::set<std::string> sarif_fingerprints(const Json& sarif);

/// Drop every finding whose fingerprint is in `baseline` — the report then
/// carries only *new* findings (the CI ratchet).
void apply_baseline(LintReport& report, const std::set<std::string>& baseline);

}  // namespace ff::lint
