#pragma once

#include <string>

#include "lint/diagnostic.hpp"
#include "util/json.hpp"

namespace ff::lint {

/// Render a report as a SARIF 2.1.0 log (the interchange format CI systems
/// use for inline code annotations). One run; `tool.driver.rules` lists only
/// the rules that actually fired, and each result carries a `ruleIndex` into
/// that list plus a physical location when the finding has one.
Json to_sarif(const LintReport& report);

/// Pretty-printed `to_sarif` with a trailing newline.
std::string render_sarif(const LintReport& report);

}  // namespace ff::lint
