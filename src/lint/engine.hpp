#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"

namespace ff::lint {

/// What a JSON document claims to be, inferred from its shape.
enum class ArtifactKind {
  Unknown,           // no recognizable markers (FF002 note, then skipped)
  SkelModel,         // has "$model-schema"
  CampaignManifest,  // has "app" + "groups" (cheetah manifest shape)
  StreamPlane,       // has "queues" (and usually "graph")
  Catalog,           // has "components" + "schemas"
  Journal,           // JSONL whose first line is a savanna journal header
  ServiceRequest,    // has "cmd" (a fairflowd wire request)
};

std::string_view artifact_kind_name(ArtifactKind kind) noexcept;

/// Shape-based detection over a parsed document. Journal detection happens
/// at the text layer (lint_text) since journals are JSONL, not JSON.
ArtifactKind detect_kind(const Json& document);

/// The front door: owns the model-schema registry and campaign options,
/// dispatches artifacts to the rule packs, applies severity policy.
///
///   LintEngine engine;
///   engine.register_model({"gwas-paste", gwas::paste_model_schema(),
///                          gwas::make_paste_generator()});
///   LintReport report = engine.lint_paths({"model.json", "campaign/"});
///   if (report.has_errors()) ...
class LintEngine {
 public:
  CampaignLintOptions campaign_options;

  void register_model(ModelRegistration registration);
  const std::vector<ModelRegistration>& registered_models() const noexcept {
    return models_;
  }

  /// Lint one document given as text. `file` labels locations. Handles
  /// parse failure (FF001), kind detection (FF002), and dispatch. A file
  /// whose name ends in .jsonl is linted as a journal; when
  /// `manifest_hint` is an object it is used for the FF205 drift check.
  LintReport lint_text(const std::string& text, const std::string& file,
                       const Json& manifest_hint = Json()) const;

  /// Lint a file on disk. For .jsonl journals, a sibling manifest is
  /// looked up automatically (<dir>/manifest.json — the cheetah
  /// .campaign/ layout pairs the two).
  LintReport lint_file(const std::string& path) const;

  /// Lint files and directories (directories walk *.json + *.jsonl,
  /// recursively). Report order is sorted by file/line.
  LintReport lint_paths(const std::vector<std::string>& paths) const;

 private:
  std::vector<ModelRegistration> models_;
};

}  // namespace ff::lint
