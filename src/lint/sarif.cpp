#include "lint/sarif.hpp"

#include <map>
#include <vector>

namespace ff::lint {
namespace {

std::string_view sarif_level(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "none";
}

}  // namespace

Json to_sarif(const LintReport& report) {
  // Collect the fired rules in first-appearance order; SARIF results refer
  // to them by index into tool.driver.rules.
  std::vector<const RuleInfo*> fired;
  std::map<std::string, size_t> rule_index;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (rule_index.count(diagnostic.code)) continue;
    const RuleInfo* rule = find_rule(diagnostic.code);
    rule_index[diagnostic.code] = fired.size();
    fired.push_back(rule);
  }

  Json rules = Json::array();
  for (const RuleInfo* rule : fired) {
    Json entry = Json::object();
    entry["id"] = std::string(rule->code);
    entry["name"] = std::string(rule->name);
    Json short_description = Json::object();
    short_description["text"] = std::string(rule->summary);
    entry["shortDescription"] = std::move(short_description);
    Json configuration = Json::object();
    configuration["level"] = std::string(sarif_level(rule->default_severity));
    entry["defaultConfiguration"] = std::move(configuration);
    Json properties = Json::object();
    properties["family"] = std::string(rule->family);
    entry["properties"] = std::move(properties);
    rules.push_back(std::move(entry));
  }

  Json results = Json::array();
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    Json result = Json::object();
    result["ruleId"] = diagnostic.code;
    result["ruleIndex"] =
        static_cast<int64_t>(rule_index.at(diagnostic.code));
    result["level"] = std::string(sarif_level(diagnostic.severity));
    Json message = Json::object();
    std::string text = diagnostic.message;
    if (!diagnostic.fixit.empty()) text += " Fix: " + diagnostic.fixit;
    message["text"] = std::move(text);
    result["message"] = std::move(message);
    if (!diagnostic.location.file.empty()) {
      Json artifact = Json::object();
      artifact["uri"] = diagnostic.location.file;
      Json physical = Json::object();
      physical["artifactLocation"] = std::move(artifact);
      if (diagnostic.location.known()) {
        Json region = Json::object();
        region["startLine"] = static_cast<int64_t>(diagnostic.location.line);
        region["startColumn"] =
            static_cast<int64_t>(diagnostic.location.column);
        physical["region"] = std::move(region);
      }
      Json location = Json::object();
      location["physicalLocation"] = std::move(physical);
      if (!diagnostic.location.json_path.empty()) {
        Json logical = Json::object();
        logical["fullyQualifiedName"] = diagnostic.location.json_path;
        Json logical_list = Json::array();
        logical_list.push_back(std::move(logical));
        location["logicalLocations"] = std::move(logical_list);
      }
      Json locations = Json::array();
      locations.push_back(std::move(location));
      result["locations"] = std::move(locations);
    }
    results.push_back(std::move(result));
  }

  Json driver = Json::object();
  driver["name"] = "fairflow-lint";
  driver["informationUri"] = "https://example.invalid/fairflow";
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);
  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json log = Json::object();
  log["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json";
  log["version"] = "2.1.0";
  log["runs"] = std::move(runs);
  return log;
}

std::string render_sarif(const LintReport& report) {
  return to_sarif(report).pretty() + "\n";
}

}  // namespace ff::lint
