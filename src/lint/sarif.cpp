#include "lint/sarif.hpp"

#include <map>
#include <vector>

namespace ff::lint {
namespace {

std::string_view sarif_level(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "none";
}

std::string fingerprint_of(const std::string& code, const std::string& file,
                           const std::string& json_path,
                           const std::string& message_text) {
  uint64_t hash = 1469598103934665603ull;
  for (const std::string* part : {&code, &file, &json_path, &message_text}) {
    for (const char byte : *part) {
      hash ^= static_cast<unsigned char>(byte);
      hash *= 1099511628211ull;
    }
    hash ^= 0x1f;  // field separator
    hash *= 1099511628211ull;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = hex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string message_text_of(const Diagnostic& diagnostic) {
  std::string text = diagnostic.message;
  if (!diagnostic.fixit.empty()) text += " Fix: " + diagnostic.fixit;
  return text;
}

Json location_to_sarif(const SourceLocation& location) {
  Json artifact = Json::object();
  artifact["uri"] = location.file;
  Json physical = Json::object();
  physical["artifactLocation"] = std::move(artifact);
  if (location.known()) {
    Json region = Json::object();
    region["startLine"] = static_cast<int64_t>(location.line);
    region["startColumn"] = static_cast<int64_t>(location.column);
    physical["region"] = std::move(region);
  }
  Json out = Json::object();
  out["physicalLocation"] = std::move(physical);
  if (!location.json_path.empty()) {
    Json logical = Json::object();
    logical["fullyQualifiedName"] = location.json_path;
    Json logical_list = Json::array();
    logical_list.push_back(std::move(logical));
    out["logicalLocations"] = std::move(logical_list);
  }
  return out;
}

}  // namespace

Json to_sarif(const LintReport& report) {
  // Collect the fired rules in first-appearance order; SARIF results refer
  // to them by index into tool.driver.rules.
  std::vector<const RuleInfo*> fired;
  std::map<std::string, size_t> rule_index;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (rule_index.count(diagnostic.code)) continue;
    const RuleInfo* rule = find_rule(diagnostic.code);
    rule_index[diagnostic.code] = fired.size();
    fired.push_back(rule);
  }

  Json rules = Json::array();
  for (const RuleInfo* rule : fired) {
    Json entry = Json::object();
    entry["id"] = std::string(rule->code);
    entry["name"] = std::string(rule->name);
    Json short_description = Json::object();
    short_description["text"] = std::string(rule->summary);
    entry["shortDescription"] = std::move(short_description);
    Json configuration = Json::object();
    configuration["level"] = std::string(sarif_level(rule->default_severity));
    entry["defaultConfiguration"] = std::move(configuration);
    Json properties = Json::object();
    properties["family"] = std::string(rule->family);
    entry["properties"] = std::move(properties);
    rules.push_back(std::move(entry));
  }

  Json results = Json::array();
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    Json result = Json::object();
    result["ruleId"] = diagnostic.code;
    result["ruleIndex"] =
        static_cast<int64_t>(rule_index.at(diagnostic.code));
    result["level"] = std::string(sarif_level(diagnostic.severity));
    Json message = Json::object();
    message["text"] = message_text_of(diagnostic);
    result["message"] = std::move(message);
    if (!diagnostic.location.file.empty()) {
      Json locations = Json::array();
      locations.push_back(location_to_sarif(diagnostic.location));
      result["locations"] = std::move(locations);
    }
    if (!diagnostic.related.empty()) {
      // The offending path (the dataflow pass's ancestor→join walk) rides
      // along as SARIF relatedLocations, in path order.
      Json related = Json::array();
      for (const SourceLocation& step : diagnostic.related) {
        related.push_back(location_to_sarif(step));
      }
      result["relatedLocations"] = std::move(related);
    }
    Json fingerprints = Json::object();
    fingerprints["fairflow/v1"] = diagnostic_fingerprint(diagnostic);
    result["fingerprints"] = std::move(fingerprints);
    results.push_back(std::move(result));
  }

  Json driver = Json::object();
  driver["name"] = "fairflow-lint";
  driver["informationUri"] = "https://example.invalid/fairflow";
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);
  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json log = Json::object();
  log["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json";
  log["version"] = "2.1.0";
  log["runs"] = std::move(runs);
  return log;
}

std::string render_sarif(const LintReport& report) {
  return to_sarif(report).pretty() + "\n";
}

std::string diagnostic_fingerprint(const Diagnostic& diagnostic) {
  return fingerprint_of(diagnostic.code, diagnostic.location.file,
                        diagnostic.location.json_path,
                        message_text_of(diagnostic));
}

std::set<std::string> sarif_fingerprints(const Json& sarif) {
  std::set<std::string> out;
  if (!sarif.is_object() || !sarif.contains("runs")) return out;
  const Json& runs = sarif["runs"];
  if (!runs.is_array()) return out;
  for (const Json& run : runs.as_array()) {
    if (!run.is_object() || !run.contains("results")) continue;
    const Json& results = run["results"];
    if (!results.is_array()) continue;
    for (const Json& result : results.as_array()) {
      if (!result.is_object()) continue;
      if (const Json* stored = result.find_path("fingerprints");
          stored && stored->is_object() && stored->contains("fairflow/v1") &&
          (*stored)["fairflow/v1"].is_string()) {
        out.insert((*stored)["fairflow/v1"].as_string());
        continue;
      }
      // A baseline from another tool: rebuild the identity from the fields
      // fingerprint_of hashes, reading them back out of the SARIF shape.
      std::string code;
      if (const Json* rule_id = result.find_path("ruleId");
          rule_id && rule_id->is_string()) {
        code = rule_id->as_string();
      }
      std::string file;
      std::string json_path;
      if (const Json* uri = result.find_path(
              "locations[0].physicalLocation.artifactLocation.uri");
          uri && uri->is_string()) {
        file = uri->as_string();
      }
      if (const Json* fqn = result.find_path(
              "locations[0].logicalLocations[0].fullyQualifiedName");
          fqn && fqn->is_string()) {
        json_path = fqn->as_string();
      }
      std::string message_text;
      if (const Json* text = result.find_path("message.text");
          text && text->is_string()) {
        message_text = text->as_string();
      }
      out.insert(fingerprint_of(code, file, json_path, message_text));
    }
  }
  return out;
}

void apply_baseline(LintReport& report,
                    const std::set<std::string>& baseline) {
  if (baseline.empty()) return;
  report.filter([&baseline](const Diagnostic& diagnostic) {
    return baseline.count(diagnostic_fingerprint(diagnostic)) == 0;
  });
}

}  // namespace ff::lint
