#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "lint/rules.hpp"
#include "savanna/journal.hpp"  // kJournalSchemaVersion (header-only use)
#include "skel/template_engine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

/// Resolve a manifest's "machine" name against the preset registry in
/// src/cluster. "local" is what Campaign defaults to when no machine was
/// chosen — it claims nothing about capacity, so it gets no preset (and,
/// unlike a typo'd machine name, no FF206 either).
std::optional<sim::MachineSpec> machine_preset(const std::string& name) {
  const std::string wanted = to_lower(name);
  if (wanted == "summit") return sim::summit();
  if (wanted == "institutional" || wanted == "institutional-cluster" ||
      wanted == "institutional_cluster") {
    return sim::institutional_cluster();
  }
  if (wanted == "workstation") return sim::workstation();
  if (wanted == "generic") return sim::MachineSpec{};
  return std::nullopt;
}

/// First dotted segment of a template reference: RunSpec params are flat
/// names, so "{{dataset.count}}" resolves iff a parameter "dataset" exists
/// and holds an object.
std::string_view head_segment(std::string_view path) {
  const size_t dot = path.find('.');
  const size_t bracket = path.find('[');
  return path.substr(0, std::min(dot, bracket));
}

std::vector<std::string> template_refs(const std::string& text,
                                       const std::string& label) {
  try {
    return skel::Template::parse(text, label).referenced_paths();
  } catch (const Error&) {
    return {};  // unparseable template: reported as FF004 by the caller
  }
}

struct SweepSummary {
  std::string name;
  std::set<std::string> declared;  // swept + derived parameter names
  size_t run_count = 1;            // product of parameter cardinalities
  bool countable = true;           // false when a parameter entry is malformed
  bool overflowed = false;         // the product wrapped size_t (FF210 fired)
};

void check_sweep(const Json& sweep, const std::string& sweep_path,
                 const JsonLocator& locator, const std::string& file,
                 SweepSummary& summary, LintReport& report) {
  if (sweep.contains("parameters")) {
    const auto& parameters = sweep["parameters"].as_array();
    for (size_t p = 0; p < parameters.size(); ++p) {
      const Json& parameter = parameters[p];
      const std::string param_path =
          sweep_path + ".parameters[" + std::to_string(p) + "]";
      if (!parameter.is_object() || !parameter.contains("name")) {
        report.add("FF004", locator.locate(file, param_path),
                   "sweep parameter must be an object with \"name\" and "
                   "\"values\"");
        summary.countable = false;
        continue;
      }
      const std::string name = parameter["name"].as_string();
      if (!summary.declared.insert(name).second) {
        report.add("FF204", locator.locate(file, param_path + ".name"),
                   "parameter '" + name + "' declared twice in sweep '" +
                       summary.name + "' — assignments overwrite each other "
                       "and the cartesian product double-counts",
                   "remove or rename the duplicate parameter");
      }
      if (!parameter.contains("values") || !parameter["values"].is_array()) {
        report.add("FF004", locator.locate(file, param_path),
                   "parameter '" + name + "' has no \"values\" array");
        summary.countable = false;
        continue;
      }
      const size_t cardinality = parameter["values"].as_array().size();
      if (cardinality == 0) {
        report.add("FF207", locator.locate(file, param_path + ".values"),
                   "parameter '" + name + "' has an empty value list — the "
                   "cartesian product of sweep '" + summary.name +
                       "' collapses to zero runs",
                   "add at least one value or drop the parameter");
        summary.countable = false;
        continue;
      }
      // Saturating product: a wrapped size_t would make FF203's wave math
      // nonsense and — worse — look like a *small* sweep. Mirror the
      // construction-time guard in Sweep::add, which throws on the same
      // condition, so the linter flags the manifest before create() refuses
      // it.
      size_t grown = 0;
      if (summary.overflowed ||
          __builtin_mul_overflow(summary.run_count, cardinality, &grown)) {
        if (!summary.overflowed) {
          report.add("FF210", locator.locate(file, param_path + ".values"),
                     "parameter '" + name + "' (cardinality " +
                         std::to_string(cardinality) +
                         ") overflows sweep '" + summary.name +
                         "' — the cartesian product no longer fits in size_t "
                         "and Sweep::add will refuse the manifest",
                     "shrink the value lists or split the sweep");
          summary.overflowed = true;
          summary.countable = false;
        }
        summary.run_count = SIZE_MAX;
        continue;
      }
      summary.run_count = grown;
    }
  }
  // Derived parameters: names join the declared set; their templates may
  // only reference parameters declared before them (swept, or earlier
  // derived — Sweep::generate renders them in order).
  if (sweep.contains("derived")) {
    for (const auto& [name, template_text] : sweep["derived"].as_object()) {
      const std::string derived_path = sweep_path + ".derived." + name;
      for (const std::string& ref :
           template_refs(template_text.as_string(), "derived:" + name)) {
        const std::string head{head_segment(ref)};
        if (!summary.declared.count(head)) {
          report.add("FF201", locator.locate(file, derived_path),
                     "derived parameter '" + name + "' references '{{" + ref +
                         "}}' which sweep '" + summary.name +
                         "' does not declare (or declares later)",
                     "declare parameter '" + head +
                         "' or reorder the derived parameters");
        }
      }
      summary.declared.insert(name);
    }
  }
}

}  // namespace

void for_each_manifest_run_id(
    const Json& manifest, const std::function<void(const std::string&)>& fn) {
  const Json* groups = manifest.find_path("groups");
  if (!groups || !groups->is_array()) return;
  char buffer[32];
  for (const Json& group : groups->as_array()) {
    if (!group.is_object()) continue;
    const std::string group_name = group.get_or("name", "");
    const Json* sweeps = group.find_path("sweeps");
    if (!sweeps || !sweeps->is_array()) continue;
    for (const Json& sweep : sweeps->as_array()) {
      if (!sweep.is_object()) continue;
      const std::string sweep_name = sweep.get_or("name", "sweep");
      size_t count = 1;
      const Json* parameters = sweep.find_path("parameters");
      if (parameters && parameters->is_array()) {
        for (const Json& parameter : parameters->as_array()) {
          const Json* values =
              parameter.is_object() ? parameter.find_path("values") : nullptr;
          const size_t cardinality =
              values && values->is_array() ? values->as_array().size() : 0;
          size_t grown = 0;
          if (__builtin_mul_overflow(count, cardinality, &grown)) {
            // An overflowing sweep can never be constructed (Sweep::add
            // throws, flagged here as FF210) — emit no ids rather than loop
            // for ~2^64 iterations over a wrapped count.
            count = 0;
            break;
          }
          count = grown;
        }
      }
      const std::string prefix = group_name + "/" + sweep_name + "/";
      for (size_t index = 0; index < count; ++index) {
        std::snprintf(buffer, sizeof(buffer), "run-%04zu", index);
        fn(prefix + buffer);
      }
    }
  }
}

std::vector<std::string> manifest_run_ids(const Json& manifest) {
  std::vector<std::string> ids;
  for_each_manifest_run_id(manifest,
                           [&ids](const std::string& id) { ids.push_back(id); });
  return ids;
}

LintReport lint_campaign_manifest(const Json& manifest,
                                  const JsonLocator& locator,
                                  const std::string& file,
                                  const CampaignLintOptions& options) {
  LintReport report;
  if (!manifest.is_object() || !manifest.contains("app")) {
    report.add("FF004", locator.locate(file, ""),
               "a campaign manifest must be an object with \"app\" and "
               "\"groups\"");
    return report;
  }

  const std::string machine_name = manifest.get_or("machine", "local");
  const std::optional<sim::MachineSpec> machine = machine_preset(machine_name);
  if (!machine && to_lower(machine_name) != "local") {
    report.add("FF206", locator.locate(file, "machine"),
               "machine '" + machine_name +
                   "' is not a known preset — node and walltime budgets "
                   "cannot be verified",
               "use one of: summit, institutional-cluster, workstation, "
               "local, generic");
  }

  const std::vector<std::string> args_refs =
      template_refs(manifest.find_path("app.args_template")
                        ? manifest.at_path("app.args_template").as_string()
                        : "",
                    "args_template");

  const Json* groups = manifest.find_path("groups");
  if (!groups || !groups->is_array()) return report;

  std::set<std::string> group_names;
  for (size_t g = 0; g < groups->as_array().size(); ++g) {
    const Json& group = (*groups)[g];
    const std::string group_path = "groups[" + std::to_string(g) + "]";
    if (!group.is_object()) {
      report.add("FF004", locator.locate(file, group_path),
                 "sweep group must be an object");
      continue;
    }
    const std::string group_name = group.get_or("name", "");
    if (!group_names.insert(group_name).second) {
      report.add("FF204", locator.locate(file, group_path + ".name"),
                 "duplicate sweep group '" + group_name +
                     "' — run ids \"" + group_name +
                     "/<sweep>/run-NNNN\" collide across the groups",
                 "rename one of the groups");
    }

    const int64_t nodes = group.get_or("nodes", int64_t{1});
    const double walltime_s = group.get_or("walltime_s", 7200.0);
    const int64_t max_concurrent = group.get_or("max_concurrent", int64_t{0});
    if (machine && nodes > machine->nodes) {
      report.add("FF202", locator.locate(file, group_path + ".nodes"),
                 "group '" + group_name + "' requests " +
                     std::to_string(nodes) + " nodes but machine '" +
                     machine_name + "' has " + std::to_string(machine->nodes),
                 "lower \"nodes\" to at most " +
                     std::to_string(machine->nodes));
    }

    size_t group_runs = 0;
    bool group_countable = true;
    std::set<std::string> sweep_names;
    const Json* sweeps = group.find_path("sweeps");
    if (!sweeps || !sweeps->is_array()) continue;
    for (size_t s = 0; s < sweeps->as_array().size(); ++s) {
      const Json& sweep = (*sweeps)[s];
      const std::string sweep_path =
          group_path + ".sweeps[" + std::to_string(s) + "]";
      if (!sweep.is_object()) {
        report.add("FF004", locator.locate(file, sweep_path),
                   "sweep must be an object");
        continue;
      }
      SweepSummary summary;
      summary.name = sweep.get_or("name", "sweep");
      if (!sweep_names.insert(summary.name).second) {
        report.add("FF204", locator.locate(file, sweep_path + ".name"),
                   "duplicate sweep '" + summary.name + "' in group '" +
                       group_name + "' — run ids \"" + group_name + "/" +
                       summary.name + "/run-NNNN\" collide",
                   "rename one of the sweeps");
      }
      check_sweep(sweep, sweep_path, locator, file, summary, report);

      // FF201: every placeholder in the app args template must be a
      // declared parameter of *this* sweep — command_for renders each run
      // with only that run's assignment.
      for (const std::string& ref : args_refs) {
        const std::string head{head_segment(ref)};
        if (!summary.declared.count(head)) {
          report.add("FF201", locator.locate(file, "app.args_template"),
                     "args template references '{{" + ref + "}}' which sweep '" +
                         group_name + "/" + summary.name +
                         "' does not declare",
                     "declare parameter '" + head +
                         "' in the sweep or drop the placeholder");
        }
      }

      if (summary.countable) {
        size_t grown = 0;
        if (__builtin_add_overflow(group_runs, summary.run_count, &grown)) {
          group_countable = false;  // the sum wrapped; FF203 math would lie
        } else {
          group_runs = grown;
        }
      } else {
        group_countable = false;
      }
    }

    // FF203: can the cartesian product drain inside the walltime? Runs
    // occupy one node each; at most min(max_concurrent, nodes) execute at
    // once; each takes at least options.min_run_s.
    if (machine && group_countable && group_runs > 0 && nodes > 0 &&
        walltime_s > 0 && options.min_run_s > 0) {
      const size_t slots = max_concurrent > 0
                               ? static_cast<size_t>(std::min(max_concurrent, nodes))
                               : static_cast<size_t>(nodes);
      const size_t waves = (group_runs + slots - 1) / slots;
      const double floor_s = static_cast<double>(waves) * options.min_run_s;
      if (floor_s > walltime_s) {
        report.add(
            "FF203", locator.locate(file, group_path + ".walltime_s"),
            "group '" + group_name + "' sweeps " + std::to_string(group_runs) +
                " runs over " + std::to_string(slots) +
                " concurrent slots — at least " + std::to_string(waves) +
                " waves, which cannot fit " +
                std::to_string(static_cast<long long>(walltime_s)) +
                "s of walltime even at " + format_double(options.min_run_s) +
                "s per run",
            "raise \"walltime_s\", raise \"nodes\"/\"max_concurrent\", or "
            "shrink the sweep");
      }
    }
  }
  return report;
}

LintReport lint_journal_text(const std::string& journal_text,
                             const std::string& journal_file,
                             const Json& manifest,
                             const std::string& manifest_file) {
  LintReport report;
  const std::vector<std::string> lines = split(journal_text, '\n');
  // Trailing newline yields one empty final element; real content lines
  // keep their index for diagnostics.
  std::vector<std::pair<size_t, std::string>> content;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!trim(lines[i]).empty()) content.emplace_back(i + 1, lines[i]);
  }
  if (content.empty()) return report;  // never-started campaign: clean

  // Mirror savanna's replay(): the final line is torn when unparseable OR
  // unterminated (append's commit point is the fsync'd trailing newline).
  const bool unterminated =
      !journal_text.empty() && journal_text.back() != '\n';
  Json header;
  // FF209 state machine: walk the records tracking the next allocation
  // index the journal's coverage accounts for. An alloc record advances it;
  // a checkpoint must agree with it (then re-anchors it); a compaction
  // marker voids it until the next checkpoint — alloc history was folded
  // away, so only a checkpoint can vouch for the dropped records.
  bool coverage_known = true;
  int64_t expected_index = 0;
  for (size_t i = 0; i < content.size(); ++i) {
    const auto& [line_number, text] = content[i];
    const bool last = i + 1 == content.size();
    Json record;
    try {
      record = Json::parse(text);
    } catch (const ParseError&) {
      if (last) {
        report.add("FF208", SourceLocation{journal_file, line_number, 1, ""},
                   "journal ends in a torn (partially written) line — "
                   "resume will truncate it and re-execute that allocation");
      } else {
        report.add("FF001", SourceLocation{journal_file, line_number, 1, ""},
                   "journal line is not valid JSON");
      }
      continue;
    }
    if (last && unterminated) {
      report.add("FF208", SourceLocation{journal_file, line_number, 1, ""},
                 "journal's final line has no trailing newline — resume "
                 "treats it as torn and re-executes that allocation");
      if (i != 0) continue;  // an uncommitted alloc record: not state
    }
    const std::string kind = record.get_or("kind", "");
    if (i == 0) {
      header = record;
      if (kind != "header") {
        report.add("FF205", SourceLocation{journal_file, line_number, 1, ""},
                   "journal does not start with a header record",
                   "recreate the journal (delete it to restart the campaign)");
        header = Json();
      }
    } else if (kind == "header") {
      report.add("FF205", SourceLocation{journal_file, line_number, 1, ""},
                 "unexpected second header record");
    } else if (kind == "alloc") {
      // A record without "index" (malformed, but not this rule's concern)
      // is assumed sequential so one bad record doesn't cascade.
      const bool has_index = record.contains("index");
      const int64_t index = record.get_or("index", expected_index);
      if (!coverage_known) {
        report.add(
            "FF209", SourceLocation{journal_file, line_number, 1, ""},
            "allocation record follows a compaction marker with no checkpoint "
            "in between — the folded-away history is summarized nowhere, so "
            "resume would silently lose those allocations",
            "restore the journal from before the bad compaction, or restart "
            "the campaign");
        coverage_known = true;
      } else if (has_index && index != expected_index) {
        report.add(
            "FF209", SourceLocation{journal_file, line_number, 1, ""},
            "allocation record has index " + std::to_string(index) +
                " but the journal's records only account for allocations "
                "before " +
                std::to_string(expected_index) +
                " — a checkpoint or compaction left a coverage gap",
            "restore the journal from backup or restart the campaign");
      }
      expected_index = index + 1;
    } else if (kind == "ckpt") {
      const int64_t next_index = record.get_or("next_index", int64_t{0});
      if (coverage_known && next_index != expected_index) {
        report.add(
            "FF209", SourceLocation{journal_file, line_number, 1, ""},
            "checkpoint claims to summarize " + std::to_string(next_index) +
                " allocations but the journal's records account for " +
                std::to_string(expected_index) +
                " — a checkpoint or compaction left a coverage gap",
            "restore the journal from backup or restart the campaign");
      }
      coverage_known = true;
      expected_index = next_index;
    } else if (kind == "compact") {
      coverage_known = false;
    }
  }

  if (!header.is_object()) return report;

  const int64_t schema = header.get_or("schema", int64_t{0});
  if (schema != savanna::kJournalSchemaVersion) {
    report.add("FF205", SourceLocation{journal_file, 1, 1, "schema"},
               "journal schema version " + std::to_string(schema) +
                   " != savanna's " +
                   std::to_string(savanna::kJournalSchemaVersion) +
                   " — resume_campaign will refuse this journal",
               "re-run the campaign with the current savanna to rewrite it");
  }

  if (!manifest.is_object()) return report;

  const std::string journal_campaign = header.get_or("campaign", "");
  const std::string manifest_campaign = manifest.get_or("name", "");
  if (journal_campaign != manifest_campaign) {
    report.add("FF205", SourceLocation{journal_file, 1, 1, "campaign"},
               "journal belongs to campaign '" + journal_campaign +
                   "' but the manifest (" + manifest_file + ") describes '" +
                   manifest_campaign + "'");
  }

  if (header.contains("runs") && header["runs"].is_array()) {
    std::set<std::string> journal_runs;
    for (const Json& id : header["runs"].as_array()) {
      if (id.is_string()) journal_runs.insert(id.as_string());
    }
    std::set<std::string> manifest_runs;
    for (std::string& id : manifest_run_ids(manifest)) {
      manifest_runs.insert(std::move(id));
    }
    for (const std::string& id : journal_runs) {
      if (!manifest_runs.count(id)) {
        report.add("FF205", SourceLocation{journal_file, 1, 1, "runs"},
                   "journal registers run '" + id +
                       "' which the manifest's sweeps no longer produce — "
                       "the campaign definition drifted after execution "
                       "started",
                   "restore the original sweep definition or restart the "
                   "campaign");
        break;  // one finding per direction keeps the report readable
      }
    }
    for (const std::string& id : manifest_runs) {
      if (!journal_runs.count(id)) {
        report.add("FF205", SourceLocation{journal_file, 1, 1, "runs"},
                   "manifest produces run '" + id +
                       "' which the journal never registered — the sweep "
                       "grew after execution started",
                   "restart the campaign to register the new runs");
        break;
      }
    }
  } else if (header.contains("runs_digest")) {
    // At scale the header carries only a count + streaming digest of the
    // run-id sequence; compare against the manifest's ids without
    // materializing either set.
    savanna::RunSetDigest digest;
    for_each_manifest_run_id(manifest,
                             [&digest](const std::string& id) { digest.add(id); });
    const std::string journal_digest = header.get_or("runs_digest", "");
    const int64_t journal_count =
        header.get_or("run_count", static_cast<int64_t>(digest.count()));
    if (journal_digest != digest.hex() ||
        journal_count != static_cast<int64_t>(digest.count())) {
      report.add("FF205", SourceLocation{journal_file, 1, 1, "runs_digest"},
                 "journal registers " + std::to_string(journal_count) +
                     " runs with digest " + journal_digest +
                     " but the manifest's sweeps produce " +
                     std::to_string(digest.count()) + " runs with digest " +
                     digest.hex() +
                     " — the campaign definition drifted after execution "
                     "started",
                 "restore the original sweep definition or restart the "
                 "campaign");
    }
  }
  return report;
}

}  // namespace ff::lint
