#include "lint/engine.hpp"

#include <algorithm>
#include <filesystem>

#include "lint/locator.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

bool is_journal_path(const std::string& path) {
  return ends_with(path, ".jsonl");
}

/// The cheetah endpoint keeps journal.jsonl next to manifest.json inside
/// .campaign/ — when that sibling exists, the journal is linted against it.
Json sibling_manifest(const std::string& journal_path, std::string* out_path) {
  const std::filesystem::path manifest =
      std::filesystem::path(journal_path).parent_path() / "manifest.json";
  std::error_code ec;
  if (!std::filesystem::is_regular_file(manifest, ec)) return Json();
  try {
    Json document = Json::parse_file(manifest.string());
    *out_path = manifest.string();
    return document;
  } catch (const Error&) {
    return Json();  // the manifest gets its own FF001 when linted directly
  }
}

}  // namespace

std::string_view artifact_kind_name(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::Unknown: return "unknown";
    case ArtifactKind::SkelModel: return "skel-model";
    case ArtifactKind::CampaignManifest: return "campaign-manifest";
    case ArtifactKind::StreamPlane: return "stream-plane";
    case ArtifactKind::Catalog: return "catalog";
    case ArtifactKind::Journal: return "journal";
    case ArtifactKind::ServiceRequest: return "service-request";
  }
  return "?";
}

ArtifactKind detect_kind(const Json& document) {
  if (!document.is_object()) return ArtifactKind::Unknown;
  if (document.contains("$model-schema")) return ArtifactKind::SkelModel;
  if (document.contains("app") && document.contains("groups")) {
    return ArtifactKind::CampaignManifest;
  }
  if (document.contains("queues")) return ArtifactKind::StreamPlane;
  if (document.contains("components") && document.contains("schemas")) {
    return ArtifactKind::Catalog;
  }
  if (document.contains("cmd")) return ArtifactKind::ServiceRequest;
  return ArtifactKind::Unknown;
}

void LintEngine::register_model(ModelRegistration registration) {
  for (ModelRegistration& existing : models_) {
    if (existing.name == registration.name) {
      existing = std::move(registration);
      return;
    }
  }
  models_.push_back(std::move(registration));
}

LintReport LintEngine::lint_text(const std::string& text,
                                 const std::string& file,
                                 const Json& manifest_hint) const {
  if (is_journal_path(file)) {
    return lint_journal_text(text, file, manifest_hint, "manifest.json");
  }

  LintReport report;
  Json document;
  try {
    document = Json::parse(text);
  } catch (const ParseError& error) {
    report.add("FF001", SourceLocation{file, error.line(), error.column(), ""},
               std::string("not parseable JSON: ") + error.what());
    return report;
  }

  const JsonLocator locator = JsonLocator::scan(text);
  switch (detect_kind(document)) {
    case ArtifactKind::SkelModel: {
      const std::string schema_name = document["$model-schema"].is_string()
                                          ? document["$model-schema"].as_string()
                                          : "";
      const ModelRegistration* registration = nullptr;
      for (const ModelRegistration& model : models_) {
        if (model.name == schema_name) registration = &model;
      }
      if (!registration) {
        report.add("FF003", locator.locate(file, "$model-schema"),
                   "model declares \"$model-schema\": \"" + schema_name +
                       "\" but no such schema is registered — model rules "
                       "cannot run",
                   "register the schema with the lint engine (see "
                   "fairflow-lint --list-rules)");
        return report;
      }
      report.merge(lint_model(document, locator, file, *registration));
      return report;
    }
    case ArtifactKind::CampaignManifest:
      report.merge(
          lint_campaign_manifest(document, locator, file, campaign_options));
      return report;
    case ArtifactKind::StreamPlane:
      report.merge(lint_stream_plane(document, locator, file));
      return report;
    case ArtifactKind::Catalog:
      report.merge(lint_catalog(document, locator, file));
      return report;
    case ArtifactKind::ServiceRequest:
      report.merge(lint_service_request(document, locator, file));
      return report;
    case ArtifactKind::Journal:  // unreachable: journals route by filename
    case ArtifactKind::Unknown:
      break;
  }
  report.add("FF002", locator.locate(file, ""),
             "document matches no known artifact kind (model, campaign "
             "manifest, stream plane, catalog, journal) — skipped");
  return report;
}

LintReport LintEngine::lint_file(const std::string& path) const {
  std::string text;
  try {
    text = read_file(path);
  } catch (const IoError& error) {
    LintReport report;
    report.add("FF001", SourceLocation{path, 0, 0, ""},
               std::string("cannot read file: ") + error.what());
    return report;
  }
  Json manifest_hint;
  std::string manifest_path;
  if (is_journal_path(path)) {
    manifest_hint = sibling_manifest(path, &manifest_path);
    return lint_journal_text(text, path, manifest_hint,
                             manifest_path.empty() ? "manifest.json"
                                                   : manifest_path);
  }
  return lint_text(text, path);
}

LintReport LintEngine::lint_paths(const std::vector<std::string>& paths) const {
  LintReport report;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().string();
        if (ends_with(name, ".json") || ends_with(name, ".jsonl")) {
          files.push_back(name);
        }
      }
      std::sort(files.begin(), files.end());
      for (const std::string& file : files) report.merge(lint_file(file));
    } else {
      report.merge(lint_file(path));
    }
  }
  report.sort();
  return report;
}

}  // namespace ff::lint
