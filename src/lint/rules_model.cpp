#include <algorithm>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

using skel::Generator;
using skel::ModelSchema;

/// True when `path` addresses the same model subtree as `other` — equal, an
/// ancestor, or a descendant. Both prefix directions matter: a template
/// referencing "dataset.path" uses the model key "dataset", and a template
/// referencing "dataset" (e.g. via |json) uses "dataset.path".
bool overlaps(std::string_view path, std::string_view other) {
  if (path == other) return true;
  if (path.size() > other.size()) {
    return starts_with(path, other) && path[other.size()] == '.';
  }
  return starts_with(other, path) && other[path.size()] == '.';
}

bool is_local_reference(std::string_view path) {
  return path == "this" || path == "item" || path == "item_index" ||
         starts_with(path, "@") || starts_with(path, "this.") ||
         starts_with(path, "item.");
}

bool schema_binds(const ModelSchema& schema, std::string_view path) {
  for (const ModelSchema::FieldSpec& field : schema.fields()) {
    if (overlaps(path, field.path)) return true;
  }
  return false;
}

/// True when any object element of the array at `each_path` resolves `path`
/// — the per-item render context merges element keys over the model.
bool element_binds(const Json& model, const std::string& each_path,
                   std::string_view path) {
  const Json* items = model.find_path(each_path);
  if (!items || !items->is_array()) return false;
  for (const Json& element : items->as_array()) {
    if (element.is_object() && element.find_path(path)) return true;
  }
  return false;
}

/// Fallback for {{#each <array>}} blocks nested inside a template: the
/// flat reference list loses the each-scoping, so a path unresolvable at
/// model scope may still bind inside an element of any array the same
/// entry iterates. Over-approximates (never a false FF101).
bool binds_in_sibling_arrays(const Json& model,
                             const std::vector<std::string>& entry_refs,
                             std::string_view path) {
  for (const std::string& ref : entry_refs) {
    const Json* value = model.find_path(ref);
    if (!value || !value->is_array()) continue;
    for (const Json& element : value->as_array()) {
      if (element.is_object() && element.find_path(path)) return true;
    }
  }
  return false;
}

std::string type_of(const Json& value) {
  return std::string(Json::type_name(value.type()));
}

bool type_matches(const Json& value, const std::string& type) {
  if (type == "int") return value.is_int();
  if (type == "double") return value.is_number();
  if (type == "string") return value.is_string();
  if (type == "bool") return value.is_bool();
  if (type == "array") return value.is_array();
  if (type == "object") return value.is_object();
  return true;  // "any" (or a registration bug — the schema ctor validates)
}

void check_schema_fields(const Json& model, const JsonLocator& locator,
                         const std::string& file, const ModelSchema& schema,
                         LintReport& report) {
  for (const ModelSchema::FieldSpec& field : schema.fields()) {
    const Json* value = model.find_path(field.path);
    if (!value) {
      if (!field.required) continue;
      std::string message = "missing required field '" + field.path + "' (" +
                            field.type + ")";
      if (!field.description.empty()) message += ": " + field.description;
      report.add("FF104", locator.locate(file, field.path), std::move(message),
                 "add \"" + field.path + "\" to the model");
      continue;
    }
    if (!type_matches(*value, field.type)) {
      report.add("FF103", locator.locate(file, field.path),
                 "field '" + field.path + "' must be " + field.type + ", got " +
                     type_of(*value),
                 "change the value to a JSON " + field.type);
    }
  }
}

void check_template_bindings(const Json& model, const JsonLocator& locator,
                             const std::string& file,
                             const ModelRegistration& registration,
                             LintReport& report) {
  std::vector<std::string> reported;
  for (const Generator::SurfaceEntry& entry :
       registration.generator.surface_entries()) {
    for (const std::string& path : entry.referenced_paths) {
      if (is_local_reference(path)) continue;
      if (model.find_path(path)) continue;
      if (schema_binds(registration.schema, path)) continue;
      if (!entry.each_path.empty() &&
          element_binds(model, entry.each_path, path)) {
        continue;
      }
      if (binds_in_sibling_arrays(model, entry.referenced_paths, path)) continue;
      if (std::find(reported.begin(), reported.end(), path) != reported.end()) {
        continue;
      }
      reported.push_back(path);
      std::string context =
          entry.each_path.empty()
              ? std::string("")
              : " (rendered per element of '" + entry.each_path + "')";
      report.add("FF101", locator.locate(file, path),
                 "template references '{{" + path +
                     "}}' which neither the model nor schema '" +
                     registration.name + "' binds" + context,
                 "add '" + path + "' to the model or fix the reference");
    }
  }
}

/// Depth-first pass over the model object tree (arrays are opaque leaves —
/// element keys are the per-item render surface, not model keys). Reports
/// the *shallowest* unused subtree so one stray object yields one finding.
void check_unused_keys(const Json& node, const std::string& path,
                       const ModelSchema& schema,
                       const std::vector<std::string>& surface,
                       const JsonLocator& locator, const std::string& file,
                       LintReport& report) {
  if (!node.is_object()) return;
  for (const auto& [key, value] : node.as_object()) {
    if (path.empty() && starts_with(key, "$")) continue;  // "$model-schema"
    const std::string child = path.empty() ? key : path + "." + key;
    const bool used =
        schema_binds(schema, child) ||
        std::any_of(surface.begin(), surface.end(),
                    [&](const std::string& ref) { return overlaps(child, ref); });
    if (!used) {
      report.add("FF102", locator.locate(file, child),
                 "model key '" + child +
                     "' is neither schema-declared nor referenced by any "
                     "template",
                 "remove the key or reference it from a template");
      continue;  // children are covered by this finding
    }
    check_unused_keys(value, child, schema, surface, locator, file, report);
  }
}

}  // namespace

LintReport lint_model(const Json& model, const JsonLocator& locator,
                      const std::string& file,
                      const ModelRegistration& registration) {
  LintReport report;
  if (!model.is_object()) {
    report.add("FF004", locator.locate(file, ""),
               "a Skel model must be a JSON object, got " + type_of(model));
    return report;
  }
  check_schema_fields(model, locator, file, registration.schema, report);
  check_template_bindings(model, locator, file, registration, report);
  const std::vector<std::string> surface =
      registration.generator.customization_surface();
  check_unused_keys(model, "", registration.schema, surface, locator, file,
                    report);
  return report;
}

}  // namespace ff::lint
