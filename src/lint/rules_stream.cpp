#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "stream/scheduler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::lint {
namespace {

constexpr std::string_view kOverflowNames = "block, drop-oldest, keep-latest";
constexpr std::string_view kChannelKinds = "mutex, spsc, mpmc";
constexpr std::string_view kWireFormats = "self-describing, binary";
constexpr std::string_view kBuiltinKinds =
    "forward-all, sliding-window-count, sliding-window-time, "
    "direct-selection, sample-every";

struct Endpoint {
  std::string component;
  std::string port;
  bool ok = false;
};

Endpoint parse_endpoint(const Json& value) {
  Endpoint endpoint;
  if (!value.is_string()) return endpoint;
  const std::string& text = value.as_string();
  const size_t dot = text.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == text.size()) {
    return endpoint;
  }
  endpoint.component = text.substr(0, dot);
  endpoint.port = text.substr(dot + 1);
  endpoint.ok = true;
  return endpoint;
}

/// Component id -> declared port names, from the raw graph JSON. Built
/// directly (not via WorkflowGraph::from_json) so a graph the constructor
/// would reject still gets precise diagnostics.
std::map<std::string, std::set<std::string>> collect_components(
    const Json& graph) {
  std::map<std::string, std::set<std::string>> components;
  const Json* list = graph.find_path("components");
  if (!list || !list->is_array()) return components;
  for (const Json& component : list->as_array()) {
    if (!component.is_object() || !component.contains("id")) continue;
    std::set<std::string>& ports = components[component["id"].as_string()];
    const Json* port_list = component.find_path("ports");
    if (!port_list || !port_list->is_array()) continue;
    for (const Json& port : port_list->as_array()) {
      if (port.is_object() && port.contains("name")) {
        ports.insert(port["name"].as_string());
      }
    }
  }
  return components;
}

void check_graph(const Json& graph, const std::string& base_path,
                 const JsonLocator& locator, const std::string& file,
                 LintReport& report) {
  const auto components = collect_components(graph);
  const Json* edges = graph.find_path("edges");
  if (!edges || !edges->is_array()) return;

  // FF305 first; only structurally valid edges feed the cycle check.
  std::vector<std::pair<std::string, std::string>> valid_edges;
  for (size_t e = 0; e < edges->as_array().size(); ++e) {
    const Json& edge = (*edges)[e];
    const std::string edge_path = base_path + ".edges[" + std::to_string(e) + "]";
    if (!edge.is_object()) {
      report.add("FF004", locator.locate(file, edge_path),
                 "edge must be an object with \"from\" and \"to\"");
      continue;
    }
    bool edge_ok = true;
    std::array<Endpoint, 2> endpoints;
    const std::array<std::string_view, 2> keys = {"from", "to"};
    for (size_t k = 0; k < 2; ++k) {
      const std::string key_path = edge_path + "." + std::string(keys[k]);
      if (!edge.contains(keys[k])) {
        report.add("FF305", locator.locate(file, edge_path),
                   "edge is missing \"" + std::string(keys[k]) + "\"");
        edge_ok = false;
        continue;
      }
      Endpoint endpoint = parse_endpoint(edge[keys[k]]);
      if (!endpoint.ok) {
        report.add("FF305", locator.locate(file, key_path),
                   "edge endpoint must be \"component.port\"",
                   "write the endpoint as <component-id>.<port-name>");
        edge_ok = false;
        continue;
      }
      auto it = components.find(endpoint.component);
      if (it == components.end()) {
        report.add("FF305", locator.locate(file, key_path),
                   "edge references component '" + endpoint.component +
                       "' which the graph does not define",
                   "add the component or fix the endpoint");
        edge_ok = false;
      } else if (!it->second.count(endpoint.port)) {
        report.add("FF305", locator.locate(file, key_path),
                   "component '" + endpoint.component + "' has no port '" +
                       endpoint.port + "'",
                   "declare the port on the component or fix the endpoint");
        edge_ok = false;
      }
      endpoints[k] = std::move(endpoint);
    }
    if (edge_ok) {
      valid_edges.emplace_back(endpoints[0].component, endpoints[1].component);
    }
  }

  // FF301: Kahn's algorithm over the component-level communication graph.
  // Whatever survives peeling is (in or downstream-entangled with) a cycle;
  // report the lexicographically sorted residue once.
  std::map<std::string, size_t> indegree;
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [id, _] : components) indegree[id] = 0;
  for (const auto& [from, to] : valid_edges) {
    adjacency[from].push_back(to);
    ++indegree[to];
  }
  std::vector<std::string> frontier;
  for (const auto& [id, degree] : indegree) {
    if (degree == 0) frontier.push_back(id);
  }
  size_t peeled = 0;
  while (!frontier.empty()) {
    const std::string id = std::move(frontier.back());
    frontier.pop_back();
    ++peeled;
    for (const std::string& next : adjacency[id]) {
      if (--indegree[next] == 0) frontier.push_back(next);
    }
  }
  if (peeled < indegree.size()) {
    std::vector<std::string> residue;
    for (const auto& [id, degree] : indegree) {
      if (degree > 0) residue.push_back(id);
    }
    report.add("FF301", locator.locate(file, base_path + ".edges"),
               "the communication subgraph contains a cycle through {" +
                   join(residue, ", ") +
                   "} — with blocking transports this deadlocks once every "
                   "channel on the cycle fills",
               "break the cycle (drop an edge, or route the feedback "
               "through a lossy overflow policy)");
  }
}

void check_queues(const Json& plane, const JsonLocator& locator,
                  const std::string& file, LintReport& report) {
  const Json* queues = plane.find_path("queues");
  if (!queues || !queues->is_array()) return;
  const stream::PolicyFactory factory = stream::PolicyFactory::with_builtins();

  std::set<std::string> names;
  for (size_t q = 0; q < queues->as_array().size(); ++q) {
    const Json& queue = (*queues)[q];
    const std::string queue_path = "queues[" + std::to_string(q) + "]";
    if (!queue.is_object()) {
      report.add("FF004", locator.locate(file, queue_path),
                 "queue must be an object with \"queue\" and \"kind\"");
      continue;
    }
    const std::string name = queue.get_or("queue", "");
    if (name.empty()) {
      report.add("FF306", locator.locate(file, queue_path),
                 "queue has no \"queue\" name",
                 "add \"queue\": \"<name>\"");
    } else if (!names.insert(name).second) {
      report.add("FF306", locator.locate(file, queue_path + ".queue"),
                 "duplicate queue '" + name +
                     "' — the second install replaces the first's policy",
                 "rename or remove one of the entries");
    }

    // FF302 + argument validation: actually build the policy the way
    // PolicyFactory::handle_install would.
    const std::string kind = queue.get_or("kind", "");
    const Json args =
        queue.contains("args") ? queue["args"] : Json::object();
    bool policy_ok = false;
    size_t bulk_release = 0;  // max records one punctuation can release
    bool releases_on_punctuation = false;
    if (kind.empty()) {
      report.add("FF306", locator.locate(file, queue_path),
                 "queue '" + name + "' has no policy \"kind\"",
                 "add \"kind\" (one of: " + std::string(kBuiltinKinds) + ")");
    } else if (!factory.knows(kind)) {
      report.add("FF302", locator.locate(file, queue_path + ".kind"),
                 "policy kind '" + kind + "' is unknown to the PolicyFactory",
                 "use one of: " + std::string(kBuiltinKinds) +
                     ", or register the kind before installing");
    } else {
      try {
        (void)factory.build(kind, args);
        policy_ok = true;
      } catch (const std::exception& error) {
        report.add("FF306", locator.locate(file, queue_path + ".args"),
                   "policy '" + kind + "' rejects its args: " +
                       std::string(error.what()),
                   "fix the \"args\" object (see docs/lint_codes.md FF306)");
      }
      if (kind == "sliding-window-count") {
        bulk_release = static_cast<size_t>(args.get_or("capacity", int64_t{0}));
        releases_on_punctuation = true;
      } else if (kind == "direct-selection") {
        bulk_release =
            static_cast<size_t>(args.get_or("max_queue", int64_t{4096}));
        releases_on_punctuation = true;
      } else if (kind == "sliding-window-time") {
        releases_on_punctuation = true;  // window size unbounded statically
      }
    }

    // Transport keys, mirroring handle_install(StreamPipeline&).
    int64_t capacity = 256;
    if (queue.contains("capacity")) {
      if (!queue["capacity"].is_int() || queue["capacity"].as_int() <= 0) {
        report.add("FF306", locator.locate(file, queue_path + ".capacity"),
                   "queue '" + name + "' capacity must be a positive integer",
                   "set \"capacity\" to a positive channel size");
        capacity = 0;
      } else {
        capacity = queue["capacity"].as_int();
      }
    }
    std::string overflow = queue.get_or("overflow", "block");
    if (overflow != "block" && overflow != "drop-oldest" &&
        overflow != "keep-latest") {
      report.add("FF306", locator.locate(file, queue_path + ".overflow"),
                 "unknown overflow policy '" + overflow + "'",
                 "use one of: " + std::string(kOverflowNames));
      overflow = "";
    }
    if (queue.contains("batch") &&
        (!queue["batch"].is_int() || queue["batch"].as_int() < 1)) {
      report.add("FF306", locator.locate(file, queue_path + ".batch"),
                 "queue '" + name + "' batch must be an integer >= 1",
                 "set \"batch\" to the records one strand drain may take");
    }
    const std::string channel = queue.get_or("channel", "spsc");
    if (channel != "mutex" && channel != "spsc" && channel != "mpmc") {
      report.add("FF306", locator.locate(file, queue_path + ".channel"),
                 "unknown channel implementation '" + channel + "'",
                 "use one of: " + std::string(kChannelKinds));
    }
    const std::string format = queue.get_or("format", "self-describing");
    if (format != "self-describing" && format != "binary") {
      report.add("FF306", locator.locate(file, queue_path + ".format"),
                 "unknown wire format '" + format + "'",
                 "use one of: " + std::string(kWireFormats));
    } else if (format == "binary" && !queue.contains("schema")) {
      // FF307: the binary frame codec cannot self-describe; a consumer
      // with no registered schema cannot decode this queue's wire chunks.
      report.add("FF307", locator.locate(file, queue_path + ".format"),
                 "queue '" + name + "' uses the binary wire format but "
                 "declares no \"schema\" — downstream decoders need the "
                 "schema the frames were encoded against",
                 "add \"schema\": \"<name:vN>\" naming the record schema "
                 "the pipeline registers via register_schema()");
    }

    // FF303/FF304: bulk releases vs a blocking bounded channel. A release
    // happens under the queue's scheduler lock; blocking there stalls every
    // publisher of the queue until workers drain the backlog.
    const bool punctuated = queue.get_or("punctuated", false);
    if (policy_ok && overflow == "block" && capacity > 0) {
      if (bulk_release > static_cast<size_t>(capacity)) {
        report.add(
            "FF303", locator.locate(file, queue_path + ".capacity"),
            "queue '" + name + "': one punctuation can release up to " +
                std::to_string(bulk_release) + " records into a capacity-" +
                std::to_string(capacity) +
                " blocking channel, stalling the publisher under the queue "
                "lock",
            "raise \"capacity\" to at least " + std::to_string(bulk_release) +
                " or use a lossy overflow policy");
      } else if (punctuated && releases_on_punctuation) {
        report.add(
            "FF304", locator.locate(file, queue_path + ".overflow"),
            "queue '" + name + "' buffers between punctuations and its "
                "producer punctuates it, but overflow \"block\" gives the "
                "punctuation burst no slack — the producer can stall mid-"
                "burst when consumers lag",
            "prefer \"drop-oldest\"/\"keep-latest\" for punctuated "
            "monitoring taps, or size \"capacity\" well above the burst");
      }
    }
  }
}

}  // namespace

LintReport lint_stream_plane(const Json& plane, const JsonLocator& locator,
                             const std::string& file) {
  LintReport report;
  if (!plane.is_object()) {
    report.add("FF004", locator.locate(file, ""),
               "a stream plane must be a JSON object");
    return report;
  }
  const Json* graph = plane.find_path("graph");
  if (graph && graph->is_object()) {
    check_graph(*graph, "graph", locator, file, report);
    if (const Json* components = graph->find_path("components")) {
      report.merge(lint_gauge_components(*components, nullptr,
                                         "graph.components", locator, file));
    }
  }
  check_queues(plane, locator, file, report);
  return report;
}

}  // namespace ff::lint
