#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/sim.hpp"
#include "util/rng.hpp"

namespace ff::sim {

/// A granted batch allocation: `nodes` nodes for at most `walltime_s`,
/// starting at `start_time`. The holder runs work inside it via the
/// Simulation; the batch system revokes it at the walltime deadline.
struct Allocation {
  uint64_t id = 0;
  int nodes = 0;
  double walltime_s = 0;
  double start_time = 0;

  double deadline() const noexcept { return start_time + walltime_s; }
  /// Seconds remaining at virtual time `now` (never negative).
  double remaining(double now) const noexcept {
    return deadline() > now ? deadline() - now : 0.0;
  }
};

/// A minimal batch system over the event simulator: FIFO queue with
/// node-count admission on a fixed-size machine, stochastic queue wait on
/// top of resource availability (facility is shared with other users), and
/// hard walltime enforcement. This is the piece that makes "submit, wait,
/// babysit, resubmit" costly in the baseline workflows.
class BatchSystem {
 public:
  BatchSystem(Simulation& sim, const MachineSpec& machine, uint64_t seed);

  struct JobRequest {
    std::string name;
    int nodes = 1;
    double walltime_s = 7200;
    /// Called when the allocation starts.
    std::function<void(const Allocation&)> on_start;
    /// Called when the walltime expires (only if still running then).
    std::function<void(const Allocation&)> on_walltime;
  };

  /// Submit a job; it starts once enough nodes are free AND its stochastic
  /// queue delay has elapsed. Returns the job id.
  uint64_t submit(JobRequest request);

  /// Release an allocation early (job finished before walltime).
  void complete(const Allocation& allocation);

  int free_nodes() const noexcept { return free_nodes_; }
  size_t queued() const noexcept { return queue_.size(); }
  uint64_t jobs_started() const noexcept { return started_; }

 private:
  struct Pending {
    uint64_t id;
    JobRequest request;
    double eligible_at;  // submission time + sampled queue delay
  };

  void try_start();

  Simulation& sim_;
  MachineSpec machine_;
  ff::Rng rng_;
  int free_nodes_;
  uint64_t next_id_ = 1;
  uint64_t started_ = 0;
  std::vector<Pending> queue_;
  std::vector<uint64_t> active_;  // allocation ids still holding nodes
  std::vector<std::pair<uint64_t, int>> active_nodes_;  // id -> nodes held
};

}  // namespace ff::sim
