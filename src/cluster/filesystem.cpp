#include "cluster/filesystem.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ff::sim {

SharedFilesystem::SharedFilesystem(const MachineSpec& machine, uint64_t seed)
    : machine_(machine), rng_(ff::splitmix64(seed ^ 0xf11e5f5ULL)) {
  if (machine_.fs_bandwidth_gbps <= 0) {
    throw ff::Error("SharedFilesystem: bandwidth must be positive");
  }
}

double SharedFilesystem::grid_load(size_t index) {
  // AR(1): x_{k+1} = phi * x_k + noise; load = exp(x) (lognormal marginal).
  const double phi = 0.95;
  const double sigma = machine_.fs_load_volatility * std::sqrt(1 - phi * phi);
  while (grid_.size() <= index) {
    const double previous = grid_.empty() ? 0.0 : grid_.back();
    grid_.push_back(phi * previous + sigma * rng_.normal());
  }
  return std::exp(grid_[index]);
}

double SharedFilesystem::load_factor(double now) {
  if (now < 0) now = 0;
  double factor = grid_load(static_cast<size_t>(now / grid_step_s_));
  for (const Window& window : windows_) {
    if (now >= window.from && now < window.to) factor *= window.factor;
  }
  return std::max(0.2, factor);
}

void SharedFilesystem::add_congestion_window(double from, double to,
                                             double extra_factor) {
  if (to <= from || extra_factor <= 0) {
    throw ff::Error("add_congestion_window: bad window");
  }
  windows_.push_back(Window{from, to, extra_factor});
}

double SharedFilesystem::write_seconds(double bytes, double now) {
  if (bytes < 0) throw ff::Error("write_seconds: negative size");
  const double effective_gbps = machine_.fs_bandwidth_gbps / load_factor(now);
  const double seconds =
      machine_.fs_latency_s + bytes / (effective_gbps * 1e9);
  write_stats_.add(seconds);
  return seconds;
}

}  // namespace ff::sim
