#include "cluster/machine.hpp"

namespace ff::sim {

ff::Json MachineSpec::to_json() const {
  ff::Json out = ff::Json::object();
  out["name"] = name;
  out["nodes"] = static_cast<int64_t>(nodes);
  out["cores_per_node"] = static_cast<int64_t>(cores_per_node);
  out["memory_gb_per_node"] = memory_gb_per_node;
  out["fs_bandwidth_gbps"] = fs_bandwidth_gbps;
  out["fs_load_volatility"] = fs_load_volatility;
  out["fs_latency_s"] = fs_latency_s;
  out["node_mttf_hours"] = node_mttf_hours;
  out["queue_wait_mean_s"] = queue_wait_mean_s;
  return out;
}

MachineSpec MachineSpec::from_json(const ff::Json& json) {
  MachineSpec spec;
  spec.name = json.get_or("name", spec.name);
  spec.nodes = static_cast<int>(json.get_or("nodes", int64_t{spec.nodes}));
  spec.cores_per_node =
      static_cast<int>(json.get_or("cores_per_node", int64_t{spec.cores_per_node}));
  spec.memory_gb_per_node =
      json.get_or("memory_gb_per_node", spec.memory_gb_per_node);
  spec.fs_bandwidth_gbps = json.get_or("fs_bandwidth_gbps", spec.fs_bandwidth_gbps);
  spec.fs_load_volatility =
      json.get_or("fs_load_volatility", spec.fs_load_volatility);
  spec.fs_latency_s = json.get_or("fs_latency_s", spec.fs_latency_s);
  spec.node_mttf_hours = json.get_or("node_mttf_hours", spec.node_mttf_hours);
  spec.queue_wait_mean_s = json.get_or("queue_wait_mean_s", spec.queue_wait_mean_s);
  return spec;
}

MachineSpec summit() {
  MachineSpec spec;
  spec.name = "summit";
  spec.nodes = 4608;
  spec.cores_per_node = 42;
  spec.memory_gb_per_node = 512;
  spec.fs_bandwidth_gbps = 2500;  // Alpine aggregate
  spec.fs_load_volatility = 0.35; // shared with the whole facility
  spec.fs_latency_s = 0.02;
  spec.node_mttf_hours = 8000;
  spec.queue_wait_mean_s = 3600;
  return spec;
}

MachineSpec institutional_cluster() {
  MachineSpec spec;
  spec.name = "institutional";
  spec.nodes = 64;
  spec.cores_per_node = 32;
  spec.memory_gb_per_node = 192;
  spec.fs_bandwidth_gbps = 40;
  spec.fs_load_volatility = 0.25;
  spec.fs_latency_s = 0.005;
  spec.node_mttf_hours = 15000;
  spec.queue_wait_mean_s = 900;
  return spec;
}

MachineSpec workstation() {
  MachineSpec spec;
  spec.name = "workstation";
  spec.nodes = 1;
  spec.cores_per_node = 8;
  spec.memory_gb_per_node = 32;
  spec.fs_bandwidth_gbps = 2;
  spec.fs_load_volatility = 0.1;
  spec.fs_latency_s = 0.001;
  spec.node_mttf_hours = 50000;
  spec.queue_wait_mean_s = 0;
  return spec;
}

}  // namespace ff::sim
