#pragma once

#include <string>

#include "util/json.hpp"

namespace ff::sim {

/// Static description of a (simulated) HPC machine. The presets model the
/// systems the paper evaluated on: ORNL Summit (leadership-class) and an
/// institutional-scale cluster.
struct MachineSpec {
  std::string name = "generic";
  int nodes = 16;
  int cores_per_node = 32;
  double memory_gb_per_node = 256;

  // Shared parallel filesystem characteristics.
  double fs_bandwidth_gbps = 240;   // aggregate GB/s (GPFS-like)
  double fs_load_volatility = 0.3;  // relative stddev of background load
  double fs_latency_s = 0.01;      // per-operation fixed cost

  // Reliability: mean time to failure of a single node, in hours.
  double node_mttf_hours = 10000;

  // Batch system behaviour.
  double queue_wait_mean_s = 1800;  // mean wait before an allocation starts

  ff::Json to_json() const;
  static MachineSpec from_json(const ff::Json& json);
};

/// ORNL Summit-like: 4608 nodes, 2.5 TB/s Alpine/GPFS.
MachineSpec summit();
/// Institutional-scale commodity cluster.
MachineSpec institutional_cluster();
/// A developer workstation (useful in tests/examples).
MachineSpec workstation();

}  // namespace ff::sim
