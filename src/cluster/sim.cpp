#include "cluster/sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ff::sim {

namespace {

constexpr size_t kMinBuckets = 8;

/// Strict ordering: does event `a` fire before event `b`?
bool fires_before(double a_time, uint64_t a_seq, double b_time, uint64_t b_seq) {
  if (a_time != b_time) return a_time < b_time;
  return a_seq < b_seq;
}

}  // namespace

Simulation::Simulation() : buckets_(kMinBuckets) {}

size_t Simulation::bucket_of(double time) const noexcept {
  // fmod keeps the slot math valid for times far beyond 2^64 * width; any
  // double rounding is applied identically on push and peek, so an event is
  // always searched in the bucket it was stored in.
  const double slot = std::floor(time / width_);
  const double wrapped = std::fmod(slot, static_cast<double>(buckets_.size()));
  return static_cast<size_t>(wrapped);
}

void Simulation::cq_push(Event event) {
  if (!std::isfinite(event.time)) {
    // +inf sentinels ("never, unless cancelled") would break the slot math;
    // park them aside. They only surface once every finite event drained.
    auto it = std::upper_bound(
        overflow_.begin(), overflow_.end(), event,
        [](const Event& a, const Event& b) { return a.sequence > b.sequence; });
    overflow_.insert(it, std::move(event));
    return;
  }
  if (queued_ + 1 > 2 * buckets_.size()) cq_resize(2 * buckets_.size());
  std::vector<Event>& bucket = buckets_[bucket_of(event.time)];
  auto it = std::upper_bound(bucket.begin(), bucket.end(), event,
                             [](const Event& a, const Event& b) {
                               return fires_before(b.time, b.sequence, a.time,
                                                   a.sequence);
                             });
  bucket.insert(it, std::move(event));
  ++queued_;
}

const Simulation::Event* Simulation::cq_peek() {
  if (queued_ == 0) {
    peeked_ = SIZE_MAX;
    return overflow_.empty() ? nullptr : &overflow_.back();
  }
  // Calendar scan: walk slots forward from now(), one bucket per slot. A
  // bucket's minimum belongs to the slot under the cursor iff its time falls
  // inside that slot's window — then it is the global minimum, because every
  // earlier slot has already been checked.
  const double base_slot = std::floor(now_ / width_);
  const size_t n = buckets_.size();
  for (size_t i = 0; i < n; ++i) {
    const double slot = base_slot + static_cast<double>(i);
    const size_t b = static_cast<size_t>(std::fmod(slot, static_cast<double>(n)));
    if (buckets_[b].empty()) continue;
    const Event& head = buckets_[b].back();
    if (head.time < (slot + 1.0) * width_) {
      peeked_ = b;
      return &head;
    }
  }
  // Sparse population: nothing within a full calendar year of now(). Fall
  // back to a direct scan for the global minimum.
  size_t best = SIZE_MAX;
  for (size_t b = 0; b < n; ++b) {
    if (buckets_[b].empty()) continue;
    const Event& head = buckets_[b].back();
    if (best == SIZE_MAX ||
        fires_before(head.time, head.sequence, buckets_[best].back().time,
                     buckets_[best].back().sequence)) {
      best = b;
    }
  }
  peeked_ = best;
  return &buckets_[best].back();
}

Simulation::Event Simulation::cq_pop() {
  if (peeked_ == SIZE_MAX) {
    Event event = std::move(overflow_.back());
    overflow_.pop_back();
    return event;
  }
  Event event = std::move(buckets_[peeked_].back());
  buckets_[peeked_].pop_back();
  --queued_;
  peeked_ = SIZE_MAX;
  if (buckets_.size() > kMinBuckets && queued_ < buckets_.size() / 4) {
    cq_resize(buckets_.size() / 2);
  }
  return event;
}

void Simulation::cq_resize(size_t nbuckets) {
  nbuckets = std::max(nbuckets, kMinBuckets);
  std::vector<Event> all;
  all.reserve(queued_);
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& event : bucket) all.push_back(std::move(event));
    bucket.clear();
  }
  // Re-estimate the slot width from the actual event spacing (median gap,
  // widened so a slot holds a few events): the calendar stays O(1) whether
  // completions are microseconds or hours apart.
  if (all.size() >= 2) {
    std::vector<double> times;
    times.reserve(all.size());
    for (const Event& event : all) times.push_back(event.time);
    std::sort(times.begin(), times.end());
    std::vector<double> gaps;
    gaps.reserve(times.size() - 1);
    for (size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    double gap = gaps[gaps.size() / 2];
    if (gap <= 0) {
      // A burst of equal-time events drives the median gap to zero. Skipping
      // the update here would pin whatever width an earlier (possibly very
      // sparse) population derived — hour-wide slots over a microsecond
      // burst degenerates every scan to O(n). Fall back to the smallest
      // *positive* gap: duplicates share a bucket by construction, so the
      // distinct-time spacing is what the slot width must match.
      gap = std::numeric_limits<double>::infinity();
      for (const double candidate : gaps) {
        if (candidate > 0) gap = std::min(gap, candidate);
      }
    }
    if (gap > 0 && std::isfinite(gap)) width_ = 4.0 * gap;
    // All events at one instant: any width works (they share a bucket), so
    // keep the current one.
  }
  if (!(width_ > 0) || !std::isfinite(width_)) width_ = 1.0;

  buckets_.assign(nbuckets, {});
  queued_ = 0;
  peeked_ = SIZE_MAX;
  for (Event& event : all) {
    std::vector<Event>& bucket = buckets_[bucket_of(event.time)];
    auto it = std::upper_bound(bucket.begin(), bucket.end(), event,
                               [](const Event& a, const Event& b) {
                                 return fires_before(b.time, b.sequence, a.time,
                                                     a.sequence);
                               });
    bucket.insert(it, std::move(event));
    ++queued_;
  }
}

uint64_t Simulation::schedule_at(double time, std::function<void()> handler) {
  if (std::isnan(time) || time < now_) {
    throw Error("Simulation: cannot schedule in the past (" +
                std::to_string(time) + " < " + std::to_string(now_) + ")");
  }
  const uint64_t sequence = next_sequence_++;
  cq_push(Event{time, sequence, std::move(handler)});
  live_.insert(sequence);
  return sequence;
}

uint64_t Simulation::schedule_after(double delay, std::function<void()> handler) {
  if (delay < 0) throw Error("Simulation: negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulation::cancel(uint64_t event_id) { return live_.erase(event_id) > 0; }

bool Simulation::step() {
  while (cq_peek() != nullptr) {
    Event event = cq_pop();
    if (!live_.erase(event.sequence)) continue;  // cancelled
    now_ = event.time;
    ++processed_;
    event.handler();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(double deadline) {
  while (const Event* head = cq_peek()) {
    // Skip over cancelled entries so a stale head doesn't stop progress.
    if (!live_.count(head->sequence)) {
      cq_pop();
      continue;
    }
    if (head->time > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace ff::sim
