#include "cluster/sim.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ff::sim {

uint64_t Simulation::schedule_at(double time, std::function<void()> handler) {
  if (time < now_) {
    throw Error("Simulation: cannot schedule in the past (" +
                std::to_string(time) + " < " + std::to_string(now_) + ")");
  }
  const uint64_t sequence = next_sequence_++;
  queue_.push(Event{time, sequence, std::move(handler)});
  live_.insert(sequence);
  return sequence;
}

uint64_t Simulation::schedule_after(double delay, std::function<void()> handler) {
  if (delay < 0) throw Error("Simulation: negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulation::cancel(uint64_t event_id) { return live_.erase(event_id) > 0; }

bool Simulation::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (!live_.erase(event.sequence)) continue;  // cancelled
    now_ = event.time;
    ++processed_;
    event.handler();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(double deadline) {
  while (!queue_.empty()) {
    // Skip over cancelled entries so a stale head doesn't stop progress.
    if (!live_.count(queue_.top().sequence)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace ff::sim
