#pragma once

#include <optional>
#include <vector>

#include "cluster/machine.hpp"
#include "util/rng.hpp"

namespace ff::sim {

/// Node-failure process: each node fails independently with exponential
/// inter-failure times (mean = MTTF), then recovers after a fixed repair
/// time. Used by the checkpoint-restart experiments (work lost since last
/// checkpoint) and by Savanna's run tracker (failed runs need re-runs).
class FailureModel {
 public:
  FailureModel(const MachineSpec& machine, uint64_t seed,
               double repair_time_s = 600.0);

  /// Next failure time strictly after `now` across `nodes` nodes running
  /// together (the aggregate process of n exponential clocks). Returns
  /// nullopt if MTTF is non-positive (failures disabled).
  std::optional<double> next_failure_after(double now, int nodes);

  /// Probability that an allocation of `nodes` nodes survives `duration_s`
  /// without any failure (analytic, for tests and planning).
  double survival_probability(int nodes, double duration_s) const;

  double repair_time_s() const noexcept { return repair_time_s_; }
  double node_mttf_s() const noexcept { return node_mttf_s_; }

 private:
  double node_mttf_s_;
  double repair_time_s_;
  ff::Rng rng_;
};

}  // namespace ff::sim
