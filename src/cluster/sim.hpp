#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace ff::sim {

/// A deterministic discrete-event simulation core. Events fire in
/// (time, insertion-order) order, so equal-time events are processed in the
/// order they were scheduled — this makes every simulation in the repo
/// bit-reproducible, which the experiment benches rely on.
///
/// Time is in seconds of virtual wall-clock. The simulator has no notion of
/// real time; a "two-hour Summit allocation" costs microseconds to simulate.
///
/// The pending set is a calendar (bucket) queue rather than a binary heap:
/// events hash into time-slot buckets of adaptive width, so push/pop are
/// amortized O(1) for the evenly-spread event populations a cluster
/// simulation produces (task completions across an allocation), instead of
/// the heap's O(log n) — the difference between 10^3-run and 10^6-run
/// campaigns feeling the same. Equal-time events always land in the same
/// bucket, so the (time, sequence) tie-break — and with it bit-exact
/// determinism — is preserved structurally, not by luck.
class Simulation {
 public:
  Simulation();

  double now() const noexcept { return now_; }

  /// Schedule `handler` at absolute virtual time `time` (>= now).
  /// Returns an event id usable with cancel().
  uint64_t schedule_at(double time, std::function<void()> handler);

  /// Schedule `handler` after `delay` seconds (>= 0).
  uint64_t schedule_after(double delay, std::function<void()> handler);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or is unknown.
  bool cancel(uint64_t event_id);

  /// Run until the queue is empty.
  void run();

  /// Run until virtual time reaches `deadline` (events at exactly deadline
  /// fire). Pending later events stay queued; now() advances to deadline.
  void run_until(double deadline);

  /// Fire the single next event. Returns false when the queue is empty.
  bool step();

  size_t pending() const noexcept { return live_.size(); }
  uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double time;
    uint64_t sequence;
    std::function<void()> handler;
  };

  // --- calendar queue ------------------------------------------------------
  // buckets_[slot % n] holds its events sorted descending by (time, seq), so
  // each bucket's minimum is back() and removal is an O(1) pop_back.
  size_t bucket_of(double time) const noexcept;
  void cq_push(Event event);
  /// Locate the earliest pending event (nullptr when empty). The found
  /// bucket is cached for the immediately following cq_pop().
  const Event* cq_peek();
  Event cq_pop();
  void cq_resize(size_t nbuckets);

  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t processed_ = 0;

  std::vector<std::vector<Event>> buckets_;
  double width_ = 1.0;           // current bucket (time-slot) width
  size_t queued_ = 0;            // events in buckets_ (cancelled included)
  std::vector<Event> overflow_;  // +inf-time events, sorted descending by seq
  size_t peeked_ = SIZE_MAX;     // bucket found by cq_peek (SIZE_MAX: overflow)

  std::unordered_set<uint64_t> live_;  // scheduled, not yet fired or cancelled
};

}  // namespace ff::sim
