#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ff::sim {

/// A deterministic discrete-event simulation core. Events fire in
/// (time, insertion-order) order, so equal-time events are processed in the
/// order they were scheduled — this makes every simulation in the repo
/// bit-reproducible, which the experiment benches rely on.
///
/// Time is in seconds of virtual wall-clock. The simulator has no notion of
/// real time; a "two-hour Summit allocation" costs microseconds to simulate.
class Simulation {
 public:
  double now() const noexcept { return now_; }

  /// Schedule `handler` at absolute virtual time `time` (>= now).
  /// Returns an event id usable with cancel().
  uint64_t schedule_at(double time, std::function<void()> handler);

  /// Schedule `handler` after `delay` seconds (>= 0).
  uint64_t schedule_after(double delay, std::function<void()> handler);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or is unknown.
  bool cancel(uint64_t event_id);

  /// Run until the queue is empty.
  void run();

  /// Run until virtual time reaches `deadline` (events at exactly deadline
  /// fire). Pending later events stay queued; now() advances to deadline.
  void run_until(double deadline);

  /// Fire the single next event. Returns false when the queue is empty.
  bool step();

  size_t pending() const noexcept { return live_.size(); }
  uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double time;
    uint64_t sequence;
    std::function<void()> handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<uint64_t> live_;  // scheduled, not yet fired or cancelled
};

}  // namespace ff::sim
