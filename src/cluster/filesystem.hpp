#pragma once

#include <vector>

#include "cluster/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ff::sim {

/// A shared parallel-filesystem model. The effective bandwidth seen by a
/// job fluctuates with facility-wide background load, which we model as a
/// mean-reverting (AR(1) / discretized Ornstein-Uhlenbeck) multiplicative
/// load factor sampled on a coarse time grid. This reproduces the behaviour
/// Fig. 4 of the paper depends on: the *same* application run twice sees
/// different checkpoint I/O costs because the filesystem is shared.
class SharedFilesystem {
 public:
  SharedFilesystem(const MachineSpec& machine, uint64_t seed);

  /// Seconds to write `bytes` starting at virtual time `now`, given the
  /// background load at that time. Deterministic for a given (seed, now).
  double write_seconds(double bytes, double now);

  /// Seconds to read `bytes` (reads see the same contention).
  double read_seconds(double bytes, double now) { return write_seconds(bytes, now); }

  /// Background load factor at `now`: 1.0 = nominal, >1 = congested.
  /// Always >= 0.2 so bandwidth never fully vanishes.
  double load_factor(double now);

  /// Externally force extra congestion (e.g. "another job is draining a
  /// burst buffer") for the interval [from, to).
  void add_congestion_window(double from, double to, double extra_factor);

  const ff::RunningStats& write_stats() const noexcept { return write_stats_; }

 private:
  MachineSpec machine_;
  ff::Rng rng_;
  double grid_step_s_ = 60.0;  // load re-sampled every virtual minute
  // Cache of load factors per grid index, filled in order.
  std::vector<double> grid_;
  struct Window {
    double from;
    double to;
    double factor;
  };
  std::vector<Window> windows_;
  ff::RunningStats write_stats_;

  double grid_load(size_t index);
};

}  // namespace ff::sim
