#include "cluster/batch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ff::sim {

BatchSystem::BatchSystem(Simulation& sim, const MachineSpec& machine, uint64_t seed)
    : sim_(sim),
      machine_(machine),
      rng_(ff::splitmix64(seed ^ 0xba7c4ULL)),
      free_nodes_(machine.nodes) {}

uint64_t BatchSystem::submit(JobRequest request) {
  if (request.nodes <= 0 || request.nodes > machine_.nodes) {
    throw ff::Error("BatchSystem: job '" + request.name + "' requests " +
                    std::to_string(request.nodes) + " nodes on a " +
                    std::to_string(machine_.nodes) + "-node machine");
  }
  if (request.walltime_s <= 0) {
    throw ff::Error("BatchSystem: non-positive walltime");
  }
  const uint64_t id = next_id_++;
  const double delay = machine_.queue_wait_mean_s > 0
                           ? rng_.exponential(machine_.queue_wait_mean_s)
                           : 0.0;
  queue_.push_back(Pending{id, std::move(request), sim_.now() + delay});
  // Wake the scheduler when the job becomes queue-eligible.
  sim_.schedule_at(queue_.back().eligible_at, [this] { try_start(); });
  try_start();
  return id;
}

void BatchSystem::try_start() {
  // Strict FIFO among eligible jobs: the head blocks later jobs (no
  // backfill), mirroring the pessimistic behaviour the paper's users plan
  // around when they split work into many small submissions.
  while (!queue_.empty()) {
    auto head = std::min_element(queue_.begin(), queue_.end(),
                                 [](const Pending& a, const Pending& b) {
                                   if (a.eligible_at != b.eligible_at) {
                                     return a.eligible_at < b.eligible_at;
                                   }
                                   return a.id < b.id;
                                 });
    if (head->eligible_at > sim_.now()) return;  // scheduler will rewake
    if (head->request.nodes > free_nodes_) return;
    Pending pending = std::move(*head);
    queue_.erase(head);

    Allocation allocation;
    allocation.id = pending.id;
    allocation.nodes = pending.request.nodes;
    allocation.walltime_s = pending.request.walltime_s;
    allocation.start_time = sim_.now();
    free_nodes_ -= allocation.nodes;
    active_nodes_.emplace_back(allocation.id, allocation.nodes);
    ++started_;

    auto on_walltime = pending.request.on_walltime;
    sim_.schedule_at(allocation.deadline(), [this, allocation, on_walltime] {
      // Only enforce if the job is still holding nodes.
      auto it = std::find_if(active_nodes_.begin(), active_nodes_.end(),
                             [&](const auto& entry) {
                               return entry.first == allocation.id;
                             });
      if (it == active_nodes_.end()) return;
      if (on_walltime) on_walltime(allocation);
      complete(allocation);
    });
    if (pending.request.on_start) pending.request.on_start(allocation);
  }
}

void BatchSystem::complete(const Allocation& allocation) {
  auto it = std::find_if(
      active_nodes_.begin(), active_nodes_.end(),
      [&](const auto& entry) { return entry.first == allocation.id; });
  if (it == active_nodes_.end()) return;  // already released
  free_nodes_ += it->second;
  active_nodes_.erase(it);
  try_start();
}

}  // namespace ff::sim
