#include "cluster/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::sim {

double DurationModel::sample(ff::Rng& rng) const {
  if (median_s <= 0) throw ff::Error("DurationModel: median must be positive");
  if (rng.chance(straggler_fraction)) {
    return rng.pareto(straggler_scale * median_s, straggler_alpha);
  }
  // Lognormal with median = exp(mu) => mu = ln(median).
  return rng.lognormal(std::log(median_s), sigma);
}

std::vector<TaskSpec> make_ensemble(size_t count, const DurationModel& model,
                                    uint64_t seed) {
  ff::Rng rng(ff::splitmix64(seed ^ 0x3a55ULL));
  std::vector<TaskSpec> tasks;
  tasks.reserve(count);
  char buffer[32];
  for (size_t i = 0; i < count; ++i) {
    std::snprintf(buffer, sizeof(buffer), "run-%04zu", i);
    TaskSpec task;
    task.id = buffer;
    task.duration_s = model.sample(rng);
    task.feature_index = static_cast<int>(i);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

EnsembleSummary summarize_ensemble(const std::vector<TaskSpec>& tasks) {
  EnsembleSummary summary;
  if (tasks.empty()) return summary;
  std::vector<double> durations;
  durations.reserve(tasks.size());
  for (const TaskSpec& task : tasks) {
    durations.push_back(task.duration_s);
    summary.total_core_seconds += task.duration_s;
  }
  summary.mean_s = ff::mean(durations);
  summary.min_s = *std::min_element(durations.begin(), durations.end());
  summary.max_s = *std::max_element(durations.begin(), durations.end());
  summary.p95_s = ff::percentile(durations, 95);
  return summary;
}

}  // namespace ff::sim
