#include "cluster/failure.hpp"

#include <cmath>

namespace ff::sim {

FailureModel::FailureModel(const MachineSpec& machine, uint64_t seed,
                           double repair_time_s)
    : node_mttf_s_(machine.node_mttf_hours * 3600.0),
      repair_time_s_(repair_time_s),
      rng_(ff::splitmix64(seed ^ 0xfa11fa11ULL)) {}

std::optional<double> FailureModel::next_failure_after(double now, int nodes) {
  if (node_mttf_s_ <= 0 || nodes <= 0) return std::nullopt;
  // Minimum of n exponentials is exponential with mean mttf/n.
  return now + rng_.exponential(node_mttf_s_ / nodes);
}

double FailureModel::survival_probability(int nodes, double duration_s) const {
  if (node_mttf_s_ <= 0 || nodes <= 0) return 1.0;
  return std::exp(-duration_s * nodes / node_mttf_s_);
}

}  // namespace ff::sim
