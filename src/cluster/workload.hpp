#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ff::sim {

/// Per-run duration model for task ensembles. The iRF-LOOP experiments
/// (paper Section V-D) hinge on run-time *skew*: "run times between the
/// individual iRF processes can differ within one submission", so static
/// set-synchronized submission leaves nodes idle. The model combines a
/// lognormal body with a Pareto straggler tail.
struct DurationModel {
  double median_s = 300;        // median run time
  double sigma = 0.4;           // lognormal shape (body spread)
  double straggler_fraction = 0.05;  // fraction of runs drawn from the tail
  double straggler_scale = 2.0;      // tail starts at scale * median
  double straggler_alpha = 1.5;      // Pareto shape (smaller = heavier)

  double sample(ff::Rng& rng) const;
};

/// One schedulable task in an ensemble.
struct TaskSpec {
  std::string id;
  double duration_s = 0;   // true duration (unknown to the scheduler a priori)
  int feature_index = -1;  // iRF-LOOP: which dependent feature this run fits
};

/// Generate `count` tasks with durations drawn from `model` (deterministic
/// in `seed`). Ids are "run-0000" style.
std::vector<TaskSpec> make_ensemble(size_t count, const DurationModel& model,
                                    uint64_t seed);

/// Summary statistics used by benches to report workloads honestly.
struct EnsembleSummary {
  double total_core_seconds = 0;
  double min_s = 0;
  double max_s = 0;
  double mean_s = 0;
  double p95_s = 0;
};
EnsembleSummary summarize_ensemble(const std::vector<TaskSpec>& tasks);

}  // namespace ff::sim
