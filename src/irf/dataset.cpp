#include "irf/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::irf {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& DenseMatrix::at(size_t row, size_t col) {
  if (row >= rows_ || col >= cols_) {
    throw Error("DenseMatrix: index (" + std::to_string(row) + "," +
                std::to_string(col) + ") out of " + std::to_string(rows_) + "x" +
                std::to_string(cols_));
  }
  return data_[row * cols_ + col];
}

double DenseMatrix::at(size_t row, size_t col) const {
  return const_cast<DenseMatrix*>(this)->at(row, col);
}

std::vector<double> DenseMatrix::column(size_t col) const {
  std::vector<double> out(rows_);
  for (size_t row = 0; row < rows_; ++row) out[row] = at(row, col);
  return out;
}

std::vector<double> DenseMatrix::row(size_t row) const {
  std::vector<double> out(cols_);
  for (size_t col = 0; col < cols_; ++col) out[col] = at(row, col);
  return out;
}

DenseMatrix DenseMatrix::drop_column(size_t col) const {
  if (col >= cols_) throw Error("drop_column: out of range");
  DenseMatrix out(rows_, cols_ - 1);
  for (size_t row = 0; row < rows_; ++row) {
    size_t out_col = 0;
    for (size_t c = 0; c < cols_; ++c) {
      if (c == col) continue;
      out.at(row, out_col++) = at(row, c);
    }
  }
  return out;
}

MatrixView::MatrixView(const DenseMatrix& m)
    : data_(m.data()), rows_(m.rows()), stride_(m.cols()) {
  map_.resize(m.cols());
  std::iota(map_.begin(), map_.end(), 0u);
}

MatrixView MatrixView::drop_column(const DenseMatrix& m, size_t col) {
  if (col >= m.cols()) throw Error("MatrixView::drop_column: out of range");
  MatrixView view;
  view.data_ = m.data();
  view.rows_ = m.rows();
  view.stride_ = m.cols();
  view.map_.reserve(m.cols() - 1);
  for (size_t c = 0; c < m.cols(); ++c) {
    if (c != col) view.map_.push_back(static_cast<uint32_t>(c));
  }
  return view;
}

std::vector<double> MatrixView::column(size_t col) const {
  std::vector<double> out(rows_);
  for (size_t row = 0; row < rows_; ++row) out[row] = at(row, col);
  return out;
}

std::vector<double> MatrixView::row(size_t row) const {
  std::vector<double> out(map_.size());
  for (size_t col = 0; col < map_.size(); ++col) out[col] = at(row, col);
  return out;
}

MatrixView MatrixView::with_orders(const FeatureOrderCache* orders) const {
  MatrixView view = *this;
  view.orders_ = orders;
  return view;
}

FeatureOrderCache FeatureOrderCache::build(const MatrixView& x) {
  if (x.rows() > std::numeric_limits<uint32_t>::max()) {
    throw Error("FeatureOrderCache: too many rows");
  }
  FeatureOrderCache cache;
  cache.columns_.resize(x.storage_cols());
  const size_t m = x.rows();
  std::vector<std::pair<double, uint32_t>> sorted(m);
  for (size_t col = 0; col < x.cols(); ++col) {
    for (size_t row = 0; row < m; ++row) {
      sorted[row] = {x.at(row, col), static_cast<uint32_t>(row)};
    }
    std::sort(sorted.begin(), sorted.end());
    ColumnOrder& order = cache.columns_[x.storage_column(col)];
    order.rows.resize(m);
    order.values.resize(m);
    for (size_t i = 0; i < m; ++i) {
      order.values[i] = sorted[i].first;
      order.rows[i] = sorted[i].second;
    }
  }
  return cache;
}

Dataset::LooView Dataset::leave_one_out(size_t target,
                                        const FeatureOrderCache* orders) const {
  if (target >= features()) throw Error("leave_one_out: target out of range");
  LooView view;
  view.predictors = MatrixView::drop_column(x, target).with_orders(orders);
  view.y = x.column(target);
  for (size_t i = 0; i < feature_names.size(); ++i) {
    if (i != target) view.predictor_names.push_back(feature_names[i]);
  }
  return view;
}

Dataset Dataset::from_table(const Table& table) {
  Dataset dataset;
  dataset.feature_names = table.column_names();
  dataset.x = DenseMatrix(table.rows(), table.cols());
  for (size_t col = 0; col < table.cols(); ++col) {
    const auto values = table.column_as_double(table.column_names()[col]);
    for (size_t row = 0; row < values.size(); ++row) {
      dataset.x.at(row, col) = values[row];
    }
  }
  return dataset;
}

Table Dataset::to_table() const {
  Table table(feature_names);
  for (size_t row = 0; row < samples(); ++row) {
    std::vector<std::string> cells;
    cells.reserve(features());
    for (size_t col = 0; col < features(); ++col) {
      cells.push_back(format_double(x.at(row, col)));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

CensusDataset make_census_dataset(const CensusConfig& config, uint64_t seed) {
  if (config.features < 4 || config.samples < 8 || config.blocks == 0) {
    throw ValidationError("make_census_dataset: implausible config");
  }
  Rng rng(splitmix64(seed ^ 0xce5505ULL));
  CensusDataset out;
  out.data.x = DenseMatrix(config.samples, config.features);
  for (size_t f = 0; f < config.features; ++f) {
    static const char* kBlocks[] = {"demo", "socio", "housing", "econ", "health"};
    const size_t block = f % config.blocks;
    out.data.feature_names.push_back(std::string(kBlocks[block % 5]) + "_" +
                                     std::to_string(f));
  }

  // Latent block factors per sample.
  DenseMatrix factors(config.samples, config.blocks);
  for (size_t s = 0; s < config.samples; ++s) {
    for (size_t b = 0; b < config.blocks; ++b) factors.at(s, b) = rng.normal();
  }

  // Base features: block factor + idiosyncratic noise.
  for (size_t f = 0; f < config.features; ++f) {
    const size_t block = f % config.blocks;
    const double loading =
        config.factor_strength * (0.7 + 0.6 * rng.uniform());
    for (size_t s = 0; s < config.samples; ++s) {
      out.data.x.at(s, f) =
          loading * factors.at(s, block) + config.noise * rng.normal();
    }
  }

  // Plant direct dependencies: selected features become near-deterministic
  // functions of two parents. Children are spaced three apart so no child
  // is another child's parent (disjoint parent sets keep the ground truth
  // unambiguous for recovery scoring).
  const size_t planted = static_cast<size_t>(
      config.planted_fraction * static_cast<double>(config.features));
  for (size_t k = 0; k < planted; ++k) {
    const size_t offset = 3 * k;
    if (offset + 2 >= config.features) break;
    const size_t child = config.features - 1 - offset;
    const size_t parent_a = child - 1;
    const size_t parent_b = child - 2;
    const double wa = 0.9 + 0.3 * rng.uniform();
    const double wb = 0.6 + 0.3 * rng.uniform();
    for (size_t s = 0; s < config.samples; ++s) {
      out.data.x.at(s, child) = wa * out.data.x.at(s, parent_a) +
                                wb * out.data.x.at(s, parent_b) +
                                0.05 * config.noise * rng.normal();
    }
    out.true_edges.emplace_back(parent_a, child);
    out.true_edges.emplace_back(parent_b, child);
  }
  return out;
}

}  // namespace ff::irf
