#pragma once

#include "irf/tree.hpp"
#include "util/thread_pool.hpp"

namespace ff::irf {

struct ForestParams {
  size_t n_trees = 60;
  TreeParams tree;
  bool bootstrap = true;
};

/// Random-forest regressor with weighted feature sampling (the building
/// block of iRF). Deterministic in the seed — including across thread
/// counts: trees fit concurrently on the pool into per-tree buffers, and
/// importances/OOB votes are reduced in tree order afterwards, so the
/// result is bit-identical to a serial fit (each tree's RNG is an
/// independent fork of the seed, so execution order cannot matter).
class RandomForest {
 public:
  /// `feature_weights` biases split candidates in every tree (empty =
  /// uniform). Out-of-bag predictions are accumulated when bootstrapping.
  /// `pool` (optional) fits trees concurrently; null fits serially. If `x`
  /// carries no FeatureOrderCache one is built here and shared by all
  /// trees.
  void fit(const MatrixView& x, const std::vector<double>& y,
           const ForestParams& params, uint64_t seed,
           const std::vector<double>& feature_weights = {},
           ThreadPool* pool = nullptr);

  double predict(const double* row, size_t size) const;
  double predict(const std::vector<double>& row) const {
    return predict(row.data(), row.size());
  }
  /// Predict row `row` of a view without copying the row out.
  double predict_at(const MatrixView& x, size_t row) const;
  std::vector<double> predict_all(const MatrixView& x) const;

  /// MDI importance, normalized to sum to 1 (all-zero if no splits).
  const std::vector<double>& importance() const noexcept { return importance_; }

  /// Out-of-bag R² (NaN when bootstrap was off or coverage too thin).
  double oob_r2() const noexcept { return oob_r2_; }

  size_t tree_count() const noexcept { return trees_.size(); }
  bool fitted() const noexcept { return !trees_.empty(); }

 private:
  std::vector<RegressionTree> trees_;
  std::vector<double> importance_;
  double oob_r2_ = 0;
};

/// Iterative Random Forest: K rounds of forest fitting where round k+1's
/// feature-sampling weights are round k's importances ("iteratively
/// re-weighted random forests" — Basu et al., paper ref [25]). Returns the
/// final round's forest; `importance_history` records each round.
struct IrfParams {
  size_t iterations = 3;
  ForestParams forest;
  /// Weight floor so no feature's probability collapses to exactly zero
  /// before the final round.
  double weight_floor = 1e-4;
};

struct IrfResult {
  RandomForest final_forest;
  std::vector<std::vector<double>> importance_history;  // per iteration

  const std::vector<double>& importance() const {
    return final_forest.importance();
  }
};

/// If `x` carries no FeatureOrderCache, one is built once here and shared
/// by every iteration's forest. `pool` (optional) parallelizes each
/// forest's tree fits.
IrfResult fit_irf(const MatrixView& x, const std::vector<double>& y,
                  const IrfParams& params, uint64_t seed,
                  ThreadPool* pool = nullptr);

}  // namespace ff::irf
