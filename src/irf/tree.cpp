#include "irf/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ff::irf {

namespace {

/// Streaming best-split scan over one candidate column's samples, visited
/// in ascending (value, sample) order. Fed one (value, target) pair at a
/// time so neither scan path has to materialize the sorted column; split
/// positions are evaluated against node-level y totals with O(1) prefix
/// sums.
struct SplitScan {
  // Node-level constants.
  double node_sse = 0;
  double total_sum = 0;
  double total_sq = 0;
  size_t count = 0;
  size_t min_leaf = 1;

  // Running prefix state.
  double left_sum = 0;
  double left_sq = 0;
  size_t seen = 0;
  double prev_value = 0;

  // Best split for this candidate so far.
  double best_gain;
  double best_threshold = 0;
  bool found = false;

  explicit SplitScan(double gain_floor) : best_gain(gain_floor) {}

  void start_feature() {
    left_sum = 0;
    left_sq = 0;
    seen = 0;
    found = false;
  }

  void step(double value, double target) {
    // A split between the previous sample and this one is legal when the
    // feature value actually changes and both sides are big enough.
    if (seen > 0 && value != prev_value) {
      const size_t left_n = seen;
      const size_t right_n = count - left_n;
      if (left_n >= min_leaf && right_n >= min_leaf) {
        const double right_sum = total_sum - left_sum;
        const double right_sq = total_sq - left_sq;
        const double left_sse =
            left_sq - left_sum * left_sum / static_cast<double>(left_n);
        const double right_sse =
            right_sq - right_sum * right_sum / static_cast<double>(right_n);
        const double gain = node_sse - left_sse - right_sse;
        if (gain > best_gain) {
          best_gain = gain;
          best_threshold = (prev_value + value) / 2.0;
          found = true;
        }
      }
    }
    left_sum += target;
    left_sq += target * target;
    prev_value = value;
    ++seen;
  }
};

/// Sample `count` distinct feature indices weighted by `weights` (uniform
/// when weights is empty). Deterministic in rng. The uniform path is a
/// partial Fisher–Yates draw: `count` swaps instead of a full shuffle of
/// all `total` entries. The weighted path draws against `working` (a
/// caller-owned mutable copy of `weights`) with a running total, so each
/// pick is one prefix walk instead of three full passes; picked entries are
/// zeroed during the draw and restored from `weights` before returning.
std::vector<size_t> sample_features(size_t total, size_t count,
                                    const std::vector<double>& weights,
                                    std::vector<double>& working, Rng& rng) {
  count = std::min(count, total);
  if (weights.empty()) {
    std::vector<size_t> all(total);
    std::iota(all.begin(), all.end(), 0);
    for (size_t pick = 0; pick < count; ++pick) {
      const size_t j = pick + static_cast<size_t>(rng.below(total - pick));
      std::swap(all[pick], all[j]);
    }
    all.resize(count);
    return all;
  }
  std::vector<size_t> chosen;
  chosen.reserve(count);
  double remaining = 0.0;
  for (double w : working) {
    if (w > 0.0) remaining += w;
  }
  for (size_t pick = 0; pick < count && remaining > 0.0; ++pick) {
    const double target = rng.uniform() * remaining;
    double cumulative = 0.0;
    size_t index = 0;
    bool any_positive = false;
    for (size_t i = 0; i < working.size(); ++i) {
      const double w = working[i];
      if (w <= 0.0) continue;
      cumulative += w;
      index = i;  // last positive so far: guards the target==total FP edge
      any_positive = true;
      if (target < cumulative) break;
    }
    if (!any_positive) break;  // running total drifted past exhaustion
    chosen.push_back(index);
    remaining -= working[index];
    working[index] = 0.0;  // without replacement
  }
  for (const size_t index : chosen) working[index] = weights[index];
  return chosen;
}

size_t floor_log2(size_t n) {
  size_t log = 0;
  while (n > 1) {
    n >>= 1;
    ++log;
  }
  return log;
}

}  // namespace

/// Per-fit scratch shared across the whole recursion, so no node allocates.
struct RegressionTree::BuildContext {
  const MatrixView& x;
  const std::vector<double>& y;
  const std::vector<double>& feature_weights;
  const TreeParams& params;
  const FeatureOrderCache* orders;  // may be null: always local-sort

  /// Node sample multiplicities (bootstrap bags repeat samples), used by
  /// the presorted-filter scan. Sized rows, zeroed outside any node scan.
  std::vector<uint32_t> multiplicity;
  std::vector<std::pair<double, size_t>> sort_scratch;
  /// Mutable copy of feature_weights consumed (and restored) by each
  /// node's weighted feature draw.
  std::vector<double> weight_scratch;
};

void RegressionTree::fit(const MatrixView& x, const std::vector<double>& y,
                         const std::vector<size_t>& sample_indices,
                         const std::vector<double>& feature_weights,
                         const TreeParams& params, Rng& rng) {
  if (x.rows() != y.size()) throw Error("RegressionTree: x/y size mismatch");
  if (sample_indices.empty()) throw Error("RegressionTree: no samples");
  if (!feature_weights.empty() && feature_weights.size() != x.cols()) {
    throw Error("RegressionTree: feature_weights size mismatch");
  }
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  BuildContext ctx{x, y, feature_weights, params, x.orders(), {}, {}, feature_weights};
  if (ctx.orders) ctx.multiplicity.assign(x.rows(), 0);
  std::vector<size_t> indices = sample_indices;
  build(ctx, indices, 0, indices.size(), 0, rng);
}

int RegressionTree::build(BuildContext& ctx, std::vector<size_t>& indices,
                          size_t begin, size_t end, int depth, Rng& rng) {
  const MatrixView& x = ctx.x;
  const std::vector<double>& y = ctx.y;
  const size_t count = end - begin;

  // Node y totals in one pass; every candidate's scan reuses them.
  double total_sum = 0;
  double total_sq = 0;
  for (size_t i = begin; i < end; ++i) {
    const double yi = y[indices[i]];
    total_sum += yi;
    total_sq += yi * yi;
  }
  const double node_mean = total_sum / static_cast<double>(count);
  const double node_sse =
      total_sq - total_sum * total_sum / static_cast<double>(count);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_index)].value = node_mean;

  if (depth >= ctx.params.max_depth || count < 2 * ctx.params.min_samples_leaf ||
      node_sse <= 1e-12) {
    return node_index;  // leaf
  }

  const size_t mtry = ctx.params.mtry > 0
                          ? ctx.params.mtry
                          : static_cast<size_t>(
                                std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  const std::vector<size_t> candidates =
      sample_features(x.cols(), mtry, ctx.feature_weights, ctx.weight_scratch, rng);

  // Scan-path choice (identical output either way): the presorted filter
  // touches all m cached entries; the local sort costs ~c·log c with a
  // larger constant. Prefer the filter for the big shallow nodes where the
  // bulk of the work lives.
  const size_t total_rows = x.rows();
  const bool use_filter =
      ctx.orders != nullptr && total_rows <= 4 * count * (floor_log2(count) + 2);
  if (use_filter) {
    for (size_t i = begin; i < end; ++i) ++ctx.multiplicity[indices[i]];
  }

  int best_feature = -1;
  SplitScan scan(/*gain_floor=*/1e-12);
  scan.node_sse = node_sse;
  scan.total_sum = total_sum;
  scan.total_sq = total_sq;
  scan.count = count;
  scan.min_leaf = ctx.params.min_samples_leaf;

  for (const size_t feature : candidates) {
    scan.start_feature();
    if (use_filter) {
      // Stable filter of the presorted column order against the node's
      // sample multiset: visits the node's samples in ascending (value,
      // sample) order, duplicates (bootstrap) adjacent.
      const FeatureOrderCache::ColumnOrder& order =
          ctx.orders->column(x.storage_column(feature));
      const uint32_t* rows = order.rows.data();
      const double* col_values = order.values.data();
      const uint32_t* mult = ctx.multiplicity.data();
      for (size_t k = 0; k < total_rows; ++k) {
        const uint32_t row = rows[k];
        const uint32_t times = mult[row];
        if (times == 0) continue;
        const double value = col_values[k];
        const double target = y[row];
        for (uint32_t r = 0; r < times; ++r) scan.step(value, target);
      }
    } else {
      std::vector<std::pair<double, size_t>>& pairs = ctx.sort_scratch;
      pairs.clear();
      for (size_t i = begin; i < end; ++i) {
        pairs.emplace_back(x.at(indices[i], feature), indices[i]);
      }
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [value, index] : pairs) scan.step(value, y[index]);
    }
    // scan.best_gain is global across candidates, so found means this
    // feature holds the best split so far.
    if (scan.found) best_feature = static_cast<int>(feature);
  }

  if (use_filter) {
    for (size_t i = begin; i < end; ++i) ctx.multiplicity[indices[i]] = 0;
  }

  if (best_feature < 0) return node_index;  // no usable split: leaf
  const double best_threshold = scan.best_threshold;

  // Partition indices[begin, end) in place around the threshold.
  auto middle = std::partition(
      indices.begin() + static_cast<long>(begin), indices.begin() + static_cast<long>(end),
      [&](size_t sample) {
        return x.at(sample, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t split = static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  importance_[static_cast<size_t>(best_feature)] += scan.best_gain;
  const int left = build(ctx, indices, begin, split, depth + 1, rng);
  const int right = build(ctx, indices, split, end, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

double RegressionTree::predict(const double* row, size_t size) const {
  if (nodes_.empty()) throw Error("RegressionTree: not fitted");
  int index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.feature < 0) return node.value;
    if (static_cast<size_t>(node.feature) >= size) {
      throw Error("RegressionTree: row too short for feature " +
                  std::to_string(node.feature));
    }
    index = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                     : node.right;
  }
}

double RegressionTree::predict_at(const MatrixView& x, size_t row) const {
  if (nodes_.empty()) throw Error("RegressionTree: not fitted");
  int index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.feature < 0) return node.value;
    if (static_cast<size_t>(node.feature) >= x.cols()) {
      throw Error("RegressionTree: view too narrow for feature " +
                  std::to_string(node.feature));
    }
    index = x.at(row, static_cast<size_t>(node.feature)) <= node.threshold
                ? node.left
                : node.right;
  }
}

}  // namespace ff::irf
