#include "irf/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ff::irf {

namespace {

double mean_of(const std::vector<double>& y, const std::vector<size_t>& indices,
               size_t begin, size_t end) {
  double total = 0;
  for (size_t i = begin; i < end; ++i) total += y[indices[i]];
  return total / static_cast<double>(end - begin);
}

double sse_of(const std::vector<double>& y, const std::vector<size_t>& indices,
              size_t begin, size_t end, double mean) {
  double sse = 0;
  for (size_t i = begin; i < end; ++i) {
    const double d = y[indices[i]] - mean;
    sse += d * d;
  }
  return sse;
}

/// Sample `count` distinct feature indices weighted by `weights` (uniform
/// when weights is empty). Deterministic in rng.
std::vector<size_t> sample_features(size_t total, size_t count,
                                    const std::vector<double>& weights, Rng& rng) {
  count = std::min(count, total);
  std::vector<size_t> chosen;
  chosen.reserve(count);
  if (weights.empty()) {
    std::vector<size_t> all(total);
    std::iota(all.begin(), all.end(), 0);
    rng.shuffle(all);
    all.resize(count);
    return all;
  }
  std::vector<double> working = weights;
  for (size_t pick = 0; pick < count; ++pick) {
    bool any_positive = false;
    for (double w : working) {
      if (w > 0) {
        any_positive = true;
        break;
      }
    }
    if (!any_positive) break;
    const size_t index = rng.weighted_index(working);
    chosen.push_back(index);
    working[index] = 0;  // without replacement
  }
  return chosen;
}

}  // namespace

void RegressionTree::fit(const DenseMatrix& x, const std::vector<double>& y,
                         const std::vector<size_t>& sample_indices,
                         const std::vector<double>& feature_weights,
                         const TreeParams& params, Rng& rng) {
  if (x.rows() != y.size()) throw Error("RegressionTree: x/y size mismatch");
  if (sample_indices.empty()) throw Error("RegressionTree: no samples");
  if (!feature_weights.empty() && feature_weights.size() != x.cols()) {
    throw Error("RegressionTree: feature_weights size mismatch");
  }
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<size_t> indices = sample_indices;
  build(x, y, indices, 0, indices.size(), 0, feature_weights, params, rng);
}

int RegressionTree::build(const DenseMatrix& x, const std::vector<double>& y,
                          std::vector<size_t>& indices, size_t begin, size_t end,
                          int depth, const std::vector<double>& feature_weights,
                          const TreeParams& params, Rng& rng) {
  const size_t count = end - begin;
  const double node_mean = mean_of(y, indices, begin, end);
  const double node_sse = sse_of(y, indices, begin, end, node_mean);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_index)].value = node_mean;

  if (depth >= params.max_depth || count < 2 * params.min_samples_leaf ||
      node_sse <= 1e-12) {
    return node_index;  // leaf
  }

  const size_t mtry = params.mtry > 0
                          ? params.mtry
                          : static_cast<size_t>(
                                std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  const std::vector<size_t> candidates =
      sample_features(x.cols(), mtry, feature_weights, rng);

  int best_feature = -1;
  double best_threshold = 0;
  double best_gain = 1e-12;

  std::vector<std::pair<double, size_t>> sorted;
  sorted.reserve(count);
  for (const size_t feature : candidates) {
    sorted.clear();
    for (size_t i = begin; i < end; ++i) {
      sorted.emplace_back(x.at(indices[i], feature), indices[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    // Prefix sums over the sorted order let every split be evaluated in O(1).
    double left_sum = 0;
    double left_sq = 0;
    double total_sum = 0;
    double total_sq = 0;
    for (const auto& [value, index] : sorted) {
      total_sum += y[index];
      total_sq += y[index] * y[index];
      (void)value;
    }
    for (size_t i = 0; i + 1 < count; ++i) {
      const double yi = y[sorted[i].second];
      left_sum += yi;
      left_sq += yi * yi;
      // Cannot split between equal feature values.
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t left_n = i + 1;
      const size_t right_n = count - left_n;
      if (left_n < params.min_samples_leaf || right_n < params.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = (sorted[i].first + sorted[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_index;  // no usable split: leaf

  // Partition indices[begin, end) in place around the threshold.
  auto middle = std::partition(
      indices.begin() + static_cast<long>(begin), indices.begin() + static_cast<long>(end),
      [&](size_t sample) {
        return x.at(sample, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t split = static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  importance_[static_cast<size_t>(best_feature)] += best_gain;
  const int left = build(x, y, indices, begin, split, depth + 1, feature_weights,
                         params, rng);
  const int right =
      build(x, y, indices, split, end, depth + 1, feature_weights, params, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

double RegressionTree::predict(const std::vector<double>& row) const {
  if (nodes_.empty()) throw Error("RegressionTree: not fitted");
  int index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.feature < 0) return node.value;
    if (static_cast<size_t>(node.feature) >= row.size()) {
      throw Error("RegressionTree: row too short for feature " +
                  std::to_string(node.feature));
    }
    index = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                     : node.right;
  }
}

}  // namespace ff::irf
