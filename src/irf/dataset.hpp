#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace ff::irf {

/// Row-major dense matrix of doubles (samples × features).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const noexcept { return rows_; }
  size_t cols() const noexcept { return cols_; }

  double& at(size_t row, size_t col);
  double at(size_t row, size_t col) const;

  /// Raw row-major storage (rows() × cols() doubles).
  const double* data() const noexcept { return data_.data(); }

  /// Copy of one column.
  std::vector<double> column(size_t col) const;
  /// Copy of one row.
  std::vector<double> row(size_t row) const;

  /// New matrix without column `col` (materialized copy; the iRF-LOOP
  /// driver uses the zero-copy MatrixView::drop_column instead).
  DenseMatrix drop_column(size_t col) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

class FeatureOrderCache;

/// A lightweight column-remapping view over a DenseMatrix's row-major
/// storage: `at(r, c)` reads storage column `map[c]` of row `r` without
/// copying anything. This is what makes the iRF-LOOP leave-one-out driver
/// zero-copy — each target's predictor matrix is a view that skips one
/// column of the shared dataset. The view does not own the storage (or the
/// optional order cache); it must not outlive the DenseMatrix it was built
/// from.
class MatrixView {
 public:
  MatrixView() = default;
  /// Identity view over every column (intentionally implicit so existing
  /// DenseMatrix call sites convert transparently).
  MatrixView(const DenseMatrix& m);  // NOLINT(google-explicit-constructor)
  /// View over all columns of `m` except `col`.
  static MatrixView drop_column(const DenseMatrix& m, size_t col);

  size_t rows() const noexcept { return rows_; }
  size_t cols() const noexcept { return map_.size(); }
  /// Columns of the underlying storage (the stride between rows).
  size_t storage_cols() const noexcept { return stride_; }
  /// Storage column backing view column `col`.
  size_t storage_column(size_t col) const { return map_[col]; }

  /// Unchecked element access (hot path; callers validate shapes up front).
  double at(size_t row, size_t col) const {
    return data_[row * stride_ + map_[col]];
  }

  /// Copy of view column `col`.
  std::vector<double> column(size_t col) const;
  /// Copy of one row, gathered through the column map.
  std::vector<double> row(size_t row) const;

  /// Same view annotated with a presorted-column cache (indexed by storage
  /// column, so one cache built on the full matrix serves every
  /// drop_column view of it). Pass nullptr to detach.
  MatrixView with_orders(const FeatureOrderCache* orders) const;
  const FeatureOrderCache* orders() const noexcept { return orders_; }

 private:
  const double* data_ = nullptr;
  size_t rows_ = 0;
  size_t stride_ = 0;
  std::vector<uint32_t> map_;  // view column -> storage column
  const FeatureOrderCache* orders_ = nullptr;
};

/// Presorted per-column sample orderings: for each storage column, the
/// sample indices (and their values) sorted ascending by (value, index).
/// Computed once per matrix — O(p·m·log m) — and shared read-only by every
/// tree of every forest fit on that matrix, replacing the former per-node
/// per-candidate std::sort in the split search. Indexed by *storage*
/// column, so the cache built on a full dataset is valid for all of its
/// leave-one-out views.
class FeatureOrderCache {
 public:
  struct ColumnOrder {
    std::vector<uint32_t> rows;   // sample indices, ascending by (value, index)
    std::vector<double> values;   // matching values, ascending
  };

  FeatureOrderCache() = default;
  static FeatureOrderCache build(const MatrixView& x);

  bool empty() const noexcept { return columns_.empty(); }
  const ColumnOrder& column(size_t storage_col) const {
    return columns_[storage_col];
  }

 private:
  std::vector<ColumnOrder> columns_;  // indexed by storage column
};

/// A named feature matrix: the iRF-LOOP input ("a matrix with n features
/// and m samples").
struct Dataset {
  DenseMatrix x;  // samples × features
  std::vector<std::string> feature_names;

  size_t samples() const noexcept { return x.rows(); }
  size_t features() const noexcept { return x.cols(); }

  /// Leave-one-out view for target feature `target`: y = column(target),
  /// predictors = all other columns (a zero-copy view into this dataset's
  /// storage — keep the Dataset alive while using it), names adjusted.
  struct LooView {
    MatrixView predictors;
    std::vector<double> y;
    std::vector<std::string> predictor_names;
  };
  /// `orders` (optional) attaches a presorted-column cache built on the
  /// full matrix, shared across all targets by the iRF-LOOP driver.
  LooView leave_one_out(size_t target,
                        const FeatureOrderCache* orders = nullptr) const;

  static Dataset from_table(const Table& table);
  Table to_table() const;
};

/// Synthetic census-like dataset (the 2019 ACS substitute): `features`
/// variables over `samples` counties, organized into correlated blocks
/// (demographic / socioeconomic / housing style factors), plus planted
/// direct dependencies: each feature whose index is listed in
/// `planted_children` is a noisy linear function of its 2 preceding
/// features — these parent→child edges are what iRF-LOOP should recover.
struct CensusConfig {
  size_t samples = 400;
  size_t features = 24;
  size_t blocks = 4;           // latent factors
  double factor_strength = 0.4;
  double noise = 0.5;
  double planted_fraction = 0.25;  // fraction of features made dependent
};

struct CensusDataset {
  Dataset data;
  /// Planted ground-truth edges (parent index, child index).
  std::vector<std::pair<size_t, size_t>> true_edges;
};

CensusDataset make_census_dataset(const CensusConfig& config, uint64_t seed);

}  // namespace ff::irf
