#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace ff::irf {

/// Row-major dense matrix of doubles (samples × features).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const noexcept { return rows_; }
  size_t cols() const noexcept { return cols_; }

  double& at(size_t row, size_t col);
  double at(size_t row, size_t col) const;

  /// Copy of one column.
  std::vector<double> column(size_t col) const;
  /// Copy of one row.
  std::vector<double> row(size_t row) const;

  /// New matrix without column `col` (used by the leave-one-out driver).
  DenseMatrix drop_column(size_t col) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// A named feature matrix: the iRF-LOOP input ("a matrix with n features
/// and m samples").
struct Dataset {
  DenseMatrix x;  // samples × features
  std::vector<std::string> feature_names;

  size_t samples() const noexcept { return x.rows(); }
  size_t features() const noexcept { return x.cols(); }

  /// Leave-one-out view for target feature `target`: y = column(target),
  /// predictors = all other columns, names adjusted.
  struct LooView {
    DenseMatrix predictors;
    std::vector<double> y;
    std::vector<std::string> predictor_names;
  };
  LooView leave_one_out(size_t target) const;

  static Dataset from_table(const Table& table);
  Table to_table() const;
};

/// Synthetic census-like dataset (the 2019 ACS substitute): `features`
/// variables over `samples` counties, organized into correlated blocks
/// (demographic / socioeconomic / housing style factors), plus planted
/// direct dependencies: each feature whose index is listed in
/// `planted_children` is a noisy linear function of its 2 preceding
/// features — these parent→child edges are what iRF-LOOP should recover.
struct CensusConfig {
  size_t samples = 400;
  size_t features = 24;
  size_t blocks = 4;           // latent factors
  double factor_strength = 0.4;
  double noise = 0.5;
  double planted_fraction = 0.25;  // fraction of features made dependent
};

struct CensusDataset {
  Dataset data;
  /// Planted ground-truth edges (parent index, child index).
  std::vector<std::pair<size_t, size_t>> true_edges;
};

CensusDataset make_census_dataset(const CensusConfig& config, uint64_t seed);

}  // namespace ff::irf
