#pragma once

#include "irf/forest.hpp"
#include "util/thread_pool.hpp"

namespace ff::irf {

/// Result of an iRF-LOOP run: the n×n directional adjacency matrix whose
/// entry (i, j) is the importance of feature i for predicting feature j
/// (paper Section II-B: "the n importance vectors are normalized and
/// concatenated into an n×n directional adjacency matrix, with values that
/// can be viewed as edge weights between the features").
struct IrfLoopResult {
  DenseMatrix adjacency;  // features × features, diagonal 0
  std::vector<std::string> feature_names;
  std::vector<double> per_target_r2;  // OOB R² of each target's final forest

  struct Edge {
    size_t from = 0;
    size_t to = 0;
    double weight = 0;
  };
  /// The k strongest edges, descending by weight.
  std::vector<Edge> top_edges(size_t k) const;
};

struct IrfLoopParams {
  IrfParams irf;
  /// Normalization: "max" scales the whole matrix so the largest entry is
  /// 1; "row" normalizes each target's importance vector to sum to 1 (the
  /// per-model normalization the paper describes).
  enum class Normalize { Row, Max } normalize = Normalize::Row;
};

/// Run the full leave-one-out loop: one iRF model per feature. `pool` may
/// be null (serial). Deterministic in `seed` regardless of thread count
/// (each target owns an independent seed stream).
IrfLoopResult run_irf_loop(const Dataset& dataset, const IrfLoopParams& params,
                           uint64_t seed, ThreadPool* pool = nullptr);

/// Edge-recovery score against ground truth: fraction of `true_edges`
/// found within the top (2 × true edge count) predicted edges. Used to
/// validate the pipeline on planted-network census data.
double edge_recovery(const IrfLoopResult& result,
                     const std::vector<std::pair<size_t, size_t>>& true_edges);

/// Adjacency matrix as a named table (first column "feature", then one
/// column per target feature) — the artifact downstream network-analysis
/// tools consume.
Table adjacency_table(const IrfLoopResult& result);

/// Edge list with weight >= threshold as a 3-column table (from, to,
/// weight), sorted by descending weight.
Table edge_table(const IrfLoopResult& result, double threshold);

}  // namespace ff::irf
