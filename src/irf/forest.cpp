#include "irf/forest.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::irf {

void RandomForest::fit(const DenseMatrix& x, const std::vector<double>& y,
                       const ForestParams& params, uint64_t seed,
                       const std::vector<double>& feature_weights) {
  if (params.n_trees == 0) throw Error("RandomForest: n_trees must be > 0");
  if (x.rows() != y.size()) throw Error("RandomForest: x/y size mismatch");
  if (x.rows() == 0) throw Error("RandomForest: empty dataset");

  trees_.assign(params.n_trees, RegressionTree{});
  importance_.assign(x.cols(), 0.0);

  std::vector<double> oob_sum(x.rows(), 0.0);
  std::vector<int> oob_count(x.rows(), 0);

  Rng base(splitmix64(seed ^ 0xf03e57ULL));
  for (size_t t = 0; t < params.n_trees; ++t) {
    Rng rng = base.fork(t);
    std::vector<size_t> indices;
    std::vector<bool> in_bag(x.rows(), false);
    indices.reserve(x.rows());
    if (params.bootstrap) {
      for (size_t i = 0; i < x.rows(); ++i) {
        const size_t pick = static_cast<size_t>(rng.below(x.rows()));
        indices.push_back(pick);
        in_bag[pick] = true;
      }
    } else {
      indices.resize(x.rows());
      std::iota(indices.begin(), indices.end(), 0);
      in_bag.assign(x.rows(), true);
    }
    trees_[t].fit(x, y, indices, feature_weights, params.tree, rng);
    for (size_t f = 0; f < x.cols(); ++f) {
      importance_[f] += trees_[t].importance()[f];
    }
    if (params.bootstrap) {
      for (size_t i = 0; i < x.rows(); ++i) {
        if (in_bag[i]) continue;
        oob_sum[i] += trees_[t].predict(x.row(i));
        ++oob_count[i];
      }
    }
  }

  double total_importance = 0;
  for (double value : importance_) total_importance += value;
  if (total_importance > 0) {
    for (double& value : importance_) value /= total_importance;
  }

  // OOB R² over samples with at least one out-of-bag vote.
  std::vector<double> truth;
  std::vector<double> predicted;
  for (size_t i = 0; i < x.rows(); ++i) {
    if (oob_count[i] == 0) continue;
    truth.push_back(y[i]);
    predicted.push_back(oob_sum[i] / oob_count[i]);
  }
  if (truth.size() >= 2) {
    const double mean_y = mean(truth);
    double ss_res = 0;
    double ss_tot = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
      ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
      ss_tot += (truth[i] - mean_y) * (truth[i] - mean_y);
    }
    oob_r2_ = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  } else {
    oob_r2_ = std::nan("");
  }
}

double RandomForest::predict(const std::vector<double>& row) const {
  if (trees_.empty()) throw Error("RandomForest: not fitted");
  double total = 0;
  for (const RegressionTree& tree : trees_) total += tree.predict(row);
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_all(const DenseMatrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

IrfResult fit_irf(const DenseMatrix& x, const std::vector<double>& y,
                  const IrfParams& params, uint64_t seed) {
  if (params.iterations == 0) throw Error("fit_irf: iterations must be > 0");
  IrfResult result;
  std::vector<double> weights;  // uniform first round
  for (size_t iteration = 0; iteration < params.iterations; ++iteration) {
    RandomForest forest;
    forest.fit(x, y, params.forest, seed + iteration, weights);
    result.importance_history.push_back(forest.importance());
    // Re-weight: next round samples features proportionally to importance,
    // floored so nothing is irrecoverably dropped mid-way.
    weights = forest.importance();
    for (double& weight : weights) {
      weight = std::max(weight, params.weight_floor);
    }
    if (iteration + 1 == params.iterations) {
      result.final_forest = std::move(forest);
    }
  }
  return result;
}

}  // namespace ff::irf
