#include "irf/forest.hpp"

#include <cmath>
#include <cstdint>
#include <numeric>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::irf {

void RandomForest::fit(const MatrixView& x, const std::vector<double>& y,
                       const ForestParams& params, uint64_t seed,
                       const std::vector<double>& feature_weights,
                       ThreadPool* pool) {
  if (params.n_trees == 0) throw Error("RandomForest: n_trees must be > 0");
  if (x.rows() != y.size()) throw Error("RandomForest: x/y size mismatch");
  if (x.rows() == 0) throw Error("RandomForest: empty dataset");

  obs::Span fit_span("irf", "irf.forest.fit",
                     {{"trees", params.n_trees},
                      {"rows", x.rows()},
                      {"cols", x.cols()}});

  // Presort every column once; all trees share the cache read-only. The
  // iRF-LOOP driver passes a view that already carries the dataset-wide
  // cache, in which case this is free.
  FeatureOrderCache local_orders;
  MatrixView xv = x;
  if (!xv.orders()) {
    local_orders = FeatureOrderCache::build(xv);
    xv = xv.with_orders(&local_orders);
  }

  const size_t m = xv.rows();
  trees_.assign(params.n_trees, RegressionTree{});

  // Per-tree OOB buffers: each tree records its own out-of-bag votes so
  // trees can fit concurrently; the reduction below walks trees in order,
  // keeping the result bit-identical to a serial fit.
  struct TreeOob {
    std::vector<uint8_t> in_bag;
    std::vector<double> prediction;  // valid where !in_bag
  };
  std::vector<TreeOob> oob(params.bootstrap ? params.n_trees : 0);

  const Rng base(splitmix64(seed ^ 0xf03e57ULL));
  auto fit_tree = [&](size_t t) {
    obs::Span tree_span("irf", "irf.tree.fit", {{"tree", t}});
    Rng rng = base.fork(t);
    std::vector<size_t> indices;
    indices.reserve(m);
    std::vector<uint8_t> in_bag(m, 0);
    if (params.bootstrap) {
      for (size_t i = 0; i < m; ++i) {
        const size_t pick = static_cast<size_t>(rng.below(m));
        indices.push_back(pick);
        in_bag[pick] = 1;
      }
    } else {
      indices.resize(m);
      std::iota(indices.begin(), indices.end(), 0);
      in_bag.assign(m, 1);
    }
    trees_[t].fit(xv, y, indices, feature_weights, params.tree, rng);
    if (params.bootstrap) {
      TreeOob& mine = oob[t];
      mine.prediction.assign(m, 0.0);
      for (size_t i = 0; i < m; ++i) {
        if (!in_bag[i]) mine.prediction[i] = trees_[t].predict_at(xv, i);
      }
      mine.in_bag = std::move(in_bag);
    }
  };

  if (pool && params.n_trees > 1) {
    parallel_for(*pool, 0, params.n_trees, fit_tree);
  } else {
    for (size_t t = 0; t < params.n_trees; ++t) fit_tree(t);
  }

  // Deterministic reduction in tree order.
  importance_.assign(x.cols(), 0.0);
  std::vector<double> oob_sum(m, 0.0);
  std::vector<int> oob_count(m, 0);
  for (size_t t = 0; t < params.n_trees; ++t) {
    for (size_t f = 0; f < x.cols(); ++f) {
      importance_[f] += trees_[t].importance()[f];
    }
    if (params.bootstrap) {
      for (size_t i = 0; i < m; ++i) {
        if (oob[t].in_bag[i]) continue;
        oob_sum[i] += oob[t].prediction[i];
        ++oob_count[i];
      }
    }
  }

  double total_importance = 0;
  for (double value : importance_) total_importance += value;
  if (total_importance > 0) {
    for (double& value : importance_) value /= total_importance;
  }

  // OOB R² over samples with at least one out-of-bag vote.
  std::vector<double> truth;
  std::vector<double> predicted;
  for (size_t i = 0; i < m; ++i) {
    if (oob_count[i] == 0) continue;
    truth.push_back(y[i]);
    predicted.push_back(oob_sum[i] / oob_count[i]);
  }
  if (truth.size() >= 2) {
    const double mean_y = mean(truth);
    double ss_res = 0;
    double ss_tot = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
      ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
      ss_tot += (truth[i] - mean_y) * (truth[i] - mean_y);
    }
    oob_r2_ = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  } else {
    oob_r2_ = std::nan("");
  }
}

double RandomForest::predict(const double* row, size_t size) const {
  if (trees_.empty()) throw Error("RandomForest: not fitted");
  double total = 0;
  for (const RegressionTree& tree : trees_) total += tree.predict(row, size);
  return total / static_cast<double>(trees_.size());
}

double RandomForest::predict_at(const MatrixView& x, size_t row) const {
  if (trees_.empty()) throw Error("RandomForest: not fitted");
  double total = 0;
  for (const RegressionTree& tree : trees_) total += tree.predict_at(x, row);
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_all(const MatrixView& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out.push_back(predict_at(x, i));
  return out;
}

IrfResult fit_irf(const MatrixView& x, const std::vector<double>& y,
                  const IrfParams& params, uint64_t seed, ThreadPool* pool) {
  if (params.iterations == 0) throw Error("fit_irf: iterations must be > 0");
  // Build the presorted-column cache once; every iteration's forest (and
  // each of its trees) reuses it.
  FeatureOrderCache local_orders;
  MatrixView xv = x;
  if (!xv.orders()) {
    local_orders = FeatureOrderCache::build(xv);
    xv = xv.with_orders(&local_orders);
  }
  IrfResult result;
  std::vector<double> weights;  // uniform first round
  for (size_t iteration = 0; iteration < params.iterations; ++iteration) {
    obs::Span iteration_span("irf", "irf.iteration",
                             {{"iteration", iteration}});
    RandomForest forest;
    forest.fit(xv, y, params.forest, seed + iteration, weights, pool);
    result.importance_history.push_back(forest.importance());
    // Re-weight: next round samples features proportionally to importance,
    // floored so nothing is irrecoverably dropped mid-way.
    weights = forest.importance();
    for (double& weight : weights) {
      weight = std::max(weight, params.weight_floor);
    }
    if (iteration + 1 == params.iterations) {
      result.final_forest = std::move(forest);
    }
  }
  return result;
}

}  // namespace ff::irf
