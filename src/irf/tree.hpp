#pragma once

#include <cstdint>
#include <vector>

#include "irf/dataset.hpp"
#include "util/rng.hpp"

namespace ff::irf {

/// Hyper-parameters shared by trees and forests.
struct TreeParams {
  int max_depth = 8;
  size_t min_samples_leaf = 3;
  /// Features considered per split (mtry); 0 = ceil(sqrt(p)).
  size_t mtry = 0;
};

/// A CART-style regression tree with *weighted* feature sampling at each
/// split — the mechanism iterative random forests use to focus later
/// iterations on previously important features.
///
/// Split search is cache-aware: when the matrix view carries a
/// FeatureOrderCache (presorted per-column sample orderings, computed once
/// per dataset), a node's sorted scan of a candidate column is derived by a
/// stable filter of the presorted order against the node's sample
/// multiset — O(m) — instead of extracting and sorting the column slice at
/// every node — O(c·log c). Small deep nodes, where the filter's O(m) pass
/// would dominate, fall back to the local sort; both paths emit the exact
/// same (value, sample) sequence, so the fitted tree is bit-identical
/// either way.
class RegressionTree {
 public:
  /// Fit on rows `sample_indices` of `x` against `y`. `feature_weights`
  /// biases which features are candidates at each split (uniform when
  /// empty). Deterministic in `rng`.
  void fit(const MatrixView& x, const std::vector<double>& y,
           const std::vector<size_t>& sample_indices,
           const std::vector<double>& feature_weights, const TreeParams& params,
           Rng& rng);

  /// Predict from a contiguous row of `size` feature values.
  double predict(const double* row, size_t size) const;
  double predict(const std::vector<double>& row) const {
    return predict(row.data(), row.size());
  }
  /// Predict row `row` of a (possibly column-remapped) view without copying
  /// the row out — the OOB pass and predict_all use this.
  double predict_at(const MatrixView& x, size_t row) const;

  /// Total SSE reduction credited to each feature (MDI importance).
  const std::vector<double>& importance() const noexcept { return importance_; }

  size_t node_count() const noexcept { return nodes_.size(); }
  bool fitted() const noexcept { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;       // -1: leaf
    double threshold = 0;
    double value = 0;       // leaf prediction (mean)
    int left = -1;
    int right = -1;
  };

  struct BuildContext;  // per-fit scratch buffers (tree.cpp)

  int build(BuildContext& ctx, std::vector<size_t>& indices, size_t begin,
            size_t end, int depth, Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace ff::irf
