#include "irf/irf_loop.hpp"

#include <algorithm>
#include <set>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::irf {

IrfLoopResult run_irf_loop(const Dataset& dataset, const IrfLoopParams& params,
                           uint64_t seed, ThreadPool* pool) {
  const size_t n = dataset.features();
  if (n < 2) throw Error("run_irf_loop: need at least two features");

  IrfLoopResult result;
  result.adjacency = DenseMatrix(n, n, 0.0);
  result.feature_names = dataset.feature_names;
  result.per_target_r2.assign(n, 0.0);

  // One presort of every column serves all n leave-one-out fits (the cache
  // is indexed by storage column, which drop-column views preserve).
  const FeatureOrderCache orders = FeatureOrderCache::build(MatrixView(dataset.x));

  auto fit_target = [&](size_t target) {
    obs::Span target_span("irf", "irf.loop.target", {{"target", target}});
    // Zero-copy leave-one-out: predictors are a column-remapping view over
    // the shared dataset storage, not a copy.
    const Dataset::LooView view = dataset.leave_one_out(target, &orders);
    const IrfResult fit = fit_irf(view.predictors, view.y, params.irf,
                                  splitmix64(seed) + target * 1009, pool);
    std::vector<double> row = fit.importance();
    if (params.normalize == IrfLoopParams::Normalize::Row) {
      double total = 0;
      for (double value : row) total += value;
      if (total > 0) {
        for (double& value : row) value /= total;
      }
    }
    // Re-insert the skipped diagonal position.
    size_t source = 0;
    for (size_t predictor = 0; predictor < n; ++predictor) {
      if (predictor == target) continue;
      result.adjacency.at(predictor, target) = row[source++];
    }
    result.per_target_r2[target] = fit.final_forest.oob_r2();
  };

  if (pool) {
    parallel_for(*pool, 0, n, fit_target);
  } else {
    for (size_t target = 0; target < n; ++target) fit_target(target);
  }

  if (params.normalize == IrfLoopParams::Normalize::Max) {
    double peak = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) peak = std::max(peak, result.adjacency.at(i, j));
    }
    if (peak > 0) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) result.adjacency.at(i, j) /= peak;
      }
    }
  }
  return result;
}

std::vector<IrfLoopResult::Edge> IrfLoopResult::top_edges(size_t k) const {
  std::vector<Edge> edges;
  const size_t n = adjacency.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double weight = adjacency.at(i, j);
      if (weight > 0) edges.push_back(Edge{i, j, weight});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
  if (edges.size() > k) edges.resize(k);
  return edges;
}

Table adjacency_table(const IrfLoopResult& result) {
  std::vector<std::string> columns = {"feature"};
  for (const std::string& name : result.feature_names) columns.push_back(name);
  Table table(columns);
  for (size_t row = 0; row < result.adjacency.rows(); ++row) {
    std::vector<std::string> cells = {result.feature_names[row]};
    for (size_t col = 0; col < result.adjacency.cols(); ++col) {
      cells.push_back(format_double(result.adjacency.at(row, col)));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

Table edge_table(const IrfLoopResult& result, double threshold) {
  Table table({"from", "to", "weight"});
  for (const auto& edge : result.top_edges(result.adjacency.rows() *
                                           result.adjacency.cols())) {
    if (edge.weight < threshold) break;  // top_edges is sorted descending
    table.add_row({result.feature_names[edge.from], result.feature_names[edge.to],
                   format_double(edge.weight)});
  }
  return table;
}

double edge_recovery(const IrfLoopResult& result,
                     const std::vector<std::pair<size_t, size_t>>& true_edges) {
  if (true_edges.empty()) return 1.0;
  const auto predicted = result.top_edges(2 * true_edges.size());
  std::set<std::pair<size_t, size_t>> predicted_set;
  for (const auto& edge : predicted) predicted_set.emplace(edge.from, edge.to);
  size_t hits = 0;
  for (const auto& edge : true_edges) {
    if (predicted_set.count(edge)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(true_edges.size());
}

}  // namespace ff::irf
