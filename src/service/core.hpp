#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cheetah/endpoint.hpp"
#include "cluster/workload.hpp"
#include "lint/workspace.hpp"
#include "savanna/campaign_runner.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace ff::service {

/// A session exceeded its campaign quota (ServiceCore::Options::
/// max_campaigns_per_session). Mapped to the `quota-exceeded` wire error.
struct QuotaError : Error {
  using Error::Error;
};

/// Everything one "submit" carries: the manifest plus the knobs the batch
/// path used to hard-code. campaign_config_from_request() parses the wire
/// shape; in-process clients (the batch example, tests) fill it directly.
struct CampaignConfig {
  Json manifest;
  /// Which sweep group to execute; "" = the manifest's first group.
  std::string group;
  /// Virtual run times are sampled per task id from this model with
  /// `duration_seed` — same seed + same manifest ⇒ same durations, which is
  /// what makes a service execution byte-identical to the batch path.
  sim::DurationModel durations;
  uint64_t duration_seed = 5;
  /// nodes/walltime default to the chosen group's footprint; a request's
  /// "execution" object may pin them instead.
  std::optional<int64_t> nodes;
  std::optional<double> walltime_s;
  savanna::RetryPolicy retry;
  savanna::JournalPolicy journal;
  savanna::Backend backend = savanna::Backend::Pilot;
};

/// Parse the wire "submit" fields (manifest/group/duration/execution/
/// retry/journal) into a config. Throws ValidationError on bad values.
CampaignConfig campaign_config_from_request(const Json& request);

/// A point-in-time campaign summary, as `status`/`list` report it.
struct CampaignInfo {
  std::string name;
  std::string state;  // queued | running | done | cancelled | failed
  std::string directory;
  std::string owner;  // session id that submitted it
  size_t run_count = 0;
  size_t allocations = 0;
  savanna::RunTracker::Counts counts;
  std::string error;  // non-empty iff state == failed

  Json to_json() const;
};

/// The engine behind fairflowd — and, via drain(), behind the in-process
/// batch path: `CampaignEndpoint` submission, preflight lint, and a fair
/// round-robin scheduler multiplexing every accepted campaign onto one
/// shared simulated cluster.
///
/// Sharing model: the service owns the cluster's node-hours and grants them
/// as *allocation slices* — one allocation per grant, campaigns taken in
/// round-robin order, at most `workers` slices in flight and never two for
/// the same campaign. Each campaign's provenance clock stays campaign-local
/// (allocations accumulate virtual time exactly as in the batch runner), so
/// a campaign's journal and tracker are byte-identical to an uninterrupted
/// batch execution: slicing re-enters run_with_resubmission with
/// max_allocations = 1 against the campaign's persistent simulation,
/// tracker, and journal — the documented resume-path equivalence.
class ServiceCore {
 public:
  struct Options {
    /// Campaign endpoints are created under this directory.
    std::string root;
    /// Slice executor threads (concurrent allocation grants).
    size_t workers = 2;
    /// Quota stub: campaigns one session may own at once.
    size_t max_campaigns_per_session = 8;
    /// Bounded tail of service events kept for the `trace` command.
    size_t trace_tail = 256;
    /// Campaigns with more runs than this get a *sparse* endpoint (no
    /// per-run directories; see CampaignEndpoint::CreateOptions) and a
    /// digest-only journal header — the submit path for million-run
    /// manifests. Matches savanna::kInlineRunListMax by default so the
    /// endpoint goes sparse exactly when the journal stops inlining ids.
    size_t sparse_endpoint_runs = 4096;
  };

  explicit ServiceCore(Options options);
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// Lint (through the shared workspace analyzer — error findings throw
  /// ValidationError *before any directory exists*, and a resubmitted
  /// already-vetted manifest skips the rule run via the digest memo),
  /// materialize the endpoint, create the journal, and enqueue the
  /// campaign. Returns the campaign name. Throws QuotaError past the
  /// session quota, StateError on a duplicate name, ValidationError on a
  /// bad manifest.
  std::string submit(const CampaignConfig& config, const std::string& session);

  /// The `lint` command: whole-workspace analysis of a server-side
  /// directory, byte-identical findings to `fairflow-lint --workspace
  /// --format=jsonl` on the same tree. Returns the reply payload —
  /// "diagnostics" (sorted array of Diagnostic::to_json objects),
  /// severity counts, and cache statistics. Throws NotFoundError when
  /// `root` is not a directory.
  Json lint_workspace(const std::string& root, bool werror);

  /// The lint engine behind both the submit preflight and lint_workspace().
  /// fairflowd_main registers the built-in gwas-paste model here so daemon
  /// linting matches the fairflow-lint CLI rule-for-rule.
  lint::WorkspaceAnalyzer& analyzer() noexcept { return analyzer_; }

  CampaignInfo info(const std::string& name) const;
  std::vector<CampaignInfo> list() const;

  /// Stop scheduling `name` after its in-flight slice (if any) finishes.
  /// Returns false when the campaign is already terminal.
  bool cancel(const std::string& name);

  /// Re-enqueue a cancelled or failed campaign; its journal is replayed by
  /// the next slice, so execution continues where it stopped.
  void resume(const std::string& name);

  /// Block until every live campaign reaches a terminal state (done /
  /// cancelled / failed). This is the batch path: submit + drain ≡ the old
  /// inline run loop.
  void drain();

  /// Stop granting new slices, wait for in-flight slices to finish
  /// (journals flush at slice boundaries, so this is the SIGTERM drain:
  /// what was granted completes, the rest stays resumable), and park the
  /// scheduler. Idempotent.
  void stop();

  /// Most recent service events (oldest first), newest `count` of them.
  std::vector<Json> trace_tail(size_t count) const;

  /// Append one event to the bounded trace tail (the `trace` command's
  /// source). The dispatcher records request and session events here.
  void note_event(Json event);

  const Options& options() const noexcept { return options_; }

 private:
  struct CampaignState;

  void enqueue_locked(const std::string& name);
  void pump_locked();
  void run_slice(const std::string& name);
  void finalize_locked(CampaignState& campaign);
  void set_state_locked(CampaignState& campaign, const std::string& state);
  void note_locked(Json event);

  Options options_;
  lint::WorkspaceAnalyzer analyzer_;  // own lock, ordered after mutex_
                                      // (submit holds mutex_ while linting;
                                      // nothing takes them the other way)
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<std::string, std::unique_ptr<CampaignState>> campaigns_;
  std::deque<std::string> round_robin_;  // runnable, not in flight
  size_t slices_in_flight_ = 0;
  bool stopping_ = false;
  std::deque<Json> events_;  // bounded service-event tail
  ThreadPool pool_;          // slice executors (last member: dies first)
};

}  // namespace ff::service
