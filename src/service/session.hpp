#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "service/core.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"

namespace ff::service {

/// Per-client identity. A session opens when a client connects (or an
/// in-process client constructs a Dispatcher::Session) and closes when it
/// disconnects; its id ("s1", "s2", ...) tags campaign ownership and the
/// quota stub in ServiceCore. Emits `service.session.open` / `.close`.
class SessionRegistry {
 public:
  std::string open();
  void close(const std::string& id);
  size_t active() const;

 private:
  mutable std::mutex mutex_;
  std::set<std::string> active_ids_;
  uint64_t next_ = 0;
};

/// Request → reply mapping, shared by the socket server and in-process
/// clients (the batch path, the quickstart tour): shape-check against the
/// command registry, dispatch to ServiceCore, translate exceptions into
/// registered error replies. handle() never throws.
class Dispatcher {
 public:
  explicit Dispatcher(ServiceCore& core) : core_(core) {}

  /// Handle one request frame on behalf of `session`. Always returns a
  /// well-formed reply (ok or error) echoing the request id. Emits
  /// `service.request`.
  ///
  /// `subscribe` is the one command this path refuses (bad-request): pushed
  /// event frames need a socket to ride on, so the server intercepts it and
  /// calls handle_subscribe() instead.
  Json handle(const std::string& session, const Json& request);

  /// Validate a `subscribe` request for the socket server: shape-check,
  /// drain gate, campaign existence. Returns the reply (never throws); on
  /// an ok reply the server attaches the connection to the campaign's
  /// event stream (service/stream.hpp) before any further frame is sent.
  Json handle_subscribe(const std::string& session, const Json& request);

  /// RAII client identity for in-process use; the server opens/closes
  /// sessions around each connection the same way.
  class Session {
   public:
    explicit Session(Dispatcher& dispatcher)
        : dispatcher_(dispatcher), id_(dispatcher.sessions().open()) {}
    ~Session() { dispatcher_.sessions().close(id_); }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    const std::string& id() const noexcept { return id_; }
    Json handle(const Json& request) { return dispatcher_.handle(id_, request); }

   private:
    Dispatcher& dispatcher_;
    std::string id_;
  };

  SessionRegistry& sessions() noexcept { return sessions_; }
  ServiceCore& core() noexcept { return core_; }

  /// True once any session issued `shutdown`. The server's accept loop and
  /// fairflowd's main loop watch this.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  ServiceCore& core_;
  SessionRegistry sessions_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace ff::service
