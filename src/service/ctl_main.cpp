// fairflow-ctl: command-line client for fairflowd.
//
//   fairflow-ctl --socket /tmp/fairflowd.sock submit manifest.json
//   fairflow-ctl --port 7341 status irf_census
//
// Builds one request frame from argv, sends it, pretty-prints the reply.
// Exit status: 0 on an ok reply, 1 on an error reply or transport failure,
// 2 on usage errors.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/protocol.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fairflow-ctl (--socket <path> | --port <n>) <command> [args]\n"
    "\n"
    "commands:\n"
    "  ping\n"
    "  submit <manifest.json> [--group <name>]\n"
    "  status <campaign>\n"
    "  list\n"
    "  lint <dir> [--werror]  whole-workspace lint of a server-side\n"
    "                        directory; prints one JSON finding per line\n"
    "                        (byte-identical to `fairflow-lint --workspace\n"
    "                        --format=jsonl`), exit 1 on errors\n"
    "  trace [<count>]\n"
    "  watch <campaign>      subscribe and print event frames until the\n"
    "                        stream ends (Ctrl-C to stop)\n"
    "  cancel <campaign>\n"
    "  resume <campaign>\n"
    "  shutdown\n";

int usage_error(const std::string& message) {
  std::fprintf(stderr, "fairflow-ctl: %s\n%s", message.c_str(), kUsage);
  return 2;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string& line) {
  line.clear();
  char byte;
  for (;;) {
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (byte == '\n') return true;
    line.push_back(byte);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  uint16_t port = 0;
  bool tcp = false;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= argc) return usage_error("--socket needs a path");
      unix_path = argv[++i];
    } else if (arg == "--port") {
      if (i + 1 >= argc) return usage_error("--port needs a number");
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
      tcp = true;
    } else {
      break;  // first non-option is the command
    }
  }
  if (unix_path.empty() && !tcp) {
    return usage_error("pick a transport: --socket <path> or --port <n>");
  }
  if (i >= argc) return usage_error("no command");
  const std::string command = argv[i++];

  ff::Json request = ff::Json::object();
  request["cmd"] = command;
  request["id"] = int64_t{1};
  if (command == "ping" || command == "list" || command == "shutdown") {
    // no arguments
  } else if (command == "submit") {
    if (i >= argc) return usage_error("submit needs a manifest file");
    const std::string manifest_path = argv[i++];
    try {
      request["manifest"] = ff::Json::parse_file(manifest_path);
    } catch (const ff::Error& error) {
      std::fprintf(stderr, "fairflow-ctl: %s\n", error.what());
      return 2;
    }
    while (i < argc) {
      const std::string arg = argv[i++];
      if (arg == "--group") {
        if (i >= argc) return usage_error("--group needs a name");
        request["group"] = std::string(argv[i++]);
      } else {
        return usage_error("unknown submit option '" + arg + "'");
      }
    }
  } else if (command == "status" || command == "cancel" ||
             command == "resume" || command == "watch") {
    if (i >= argc) return usage_error(command + " needs a campaign name");
    request["campaign"] = std::string(argv[i++]);
    if (command == "watch") request["cmd"] = std::string("subscribe");
  } else if (command == "lint") {
    if (i >= argc) return usage_error("lint needs a workspace directory");
    request["workspace"] = std::string(argv[i++]);
    while (i < argc) {
      const std::string arg = argv[i++];
      if (arg == "--werror") {
        request["werror"] = true;
      } else {
        return usage_error("unknown lint option '" + arg + "'");
      }
    }
  } else if (command == "trace") {
    if (i < argc) request["count"] = int64_t{std::atoll(argv[i++])};
  } else {
    return usage_error("unknown command '" + command + "'");
  }
  if (i < argc) {
    return usage_error("unexpected argument '" + std::string(argv[i]) + "'");
  }

  const int fd = tcp ? connect_tcp(port) : connect_unix(unix_path);
  if (fd < 0) {
    std::fprintf(stderr, "fairflow-ctl: cannot connect to %s\n",
                 tcp ? ("127.0.0.1:" + std::to_string(port)).c_str()
                     : unix_path.c_str());
    return 1;
  }

  int status = 1;
  std::string line;
  if (send_all(fd, ff::service::encode_frame(request)) &&
      recv_line(fd, line)) {
    try {
      const ff::Json reply = ff::Json::parse(line);
      if (command == "lint" && reply.get_or("ok", false)) {
        // One compact finding per line — the same bytes `fairflow-lint
        // --workspace --format=jsonl` writes for this tree.
        for (const ff::Json& diagnostic : reply["diagnostics"].as_array()) {
          std::printf("%s\n", diagnostic.dump().c_str());
        }
        status = reply.get_or("errors", int64_t{0}) > 0 ? 1 : 0;
      } else {
        std::printf("%s\n", reply.pretty().c_str());
        status = reply.get_or("ok", false) ? 0 : 1;
      }
    } catch (const ff::Error&) {
      std::fprintf(stderr, "fairflow-ctl: malformed reply: %s\n", line.c_str());
    }
  } else {
    std::fprintf(stderr, "fairflow-ctl: connection lost\n");
  }

  if (command == "watch" && status == 0) {
    // Tail the pushed event frames, one compact line each, until the
    // daemon ends the stream (shutdown, slow-consumer) or the socket dies.
    std::fflush(stdout);
    while (recv_line(fd, line)) {
      try {
        const ff::Json frame = ff::Json::parse(line);
        std::printf("%s\n", frame.dump().c_str());
        std::fflush(stdout);
        if (!frame.contains("stream")) break;  // an error frame ends the watch
      } catch (const ff::Error&) {
        std::fprintf(stderr, "fairflow-ctl: malformed frame: %s\n",
                     line.c_str());
        break;
      }
    }
  }
  ::close(fd);
  return status;
}
