#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "stream/channel.hpp"
#include "util/json.hpp"

namespace ff::service {

/// The push half of the `subscribe` command: a process-wide fan-out from
/// the obs trace layer to per-subscriber drop-oldest ring buffers
/// (stream::Channel, ChannelKind::Mpmc). Publishing never blocks — a slow
/// watcher loses its *own* oldest events (counted in dropped()) and stalls
/// nobody; the server turns a subscriber whose socket also backs up into a
/// `slow-consumer` disconnect.
///
/// Event attribution: `service.*` events carry an explicit `campaign` arg;
/// `savanna.*` events are attributed through the CampaignScope RAII the
/// scheduler wraps around each allocation slice. Events with no campaign
/// (session opens, pings) are not streamed — a subscription is per-campaign.
///
/// Sequencing: each campaign has one monotonic sequence counter, bumped per
/// published event whether or not anyone is subscribed. Every subscriber of
/// a campaign therefore sees strictly increasing `seq` values, and a
/// subscriber that saw no ring eviction sees them gap-free — the invariant
/// the watcher stress test asserts.
class TraceStreamer {
 public:
  static TraceStreamer& instance();

  TraceStreamer(const TraceStreamer&) = delete;
  TraceStreamer& operator=(const TraceStreamer&) = delete;

  /// Register a subscriber for `campaign` with a ring of `capacity` event
  /// frames. `wake` is invoked (possibly concurrently, from arbitrary
  /// emitting threads) after events are queued; it must be cheap and
  /// non-blocking — the server's wake coalesces into one self-pipe byte.
  /// Returns the subscription id (never 0). Installs the obs trace listener
  /// on the 0 -> 1 transition.
  uint64_t attach(const std::string& campaign, size_t capacity,
                  std::function<void()> wake);

  /// Drop a subscription; uninstalls the obs listener when none remain.
  /// Unknown ids are ignored (detach races close paths by design).
  void detach(uint64_t id);

  /// Append up to `max` pending event frames (each a complete
  /// newline-terminated wire frame) to `out`. Returns how many were taken.
  size_t drain(uint64_t id, std::vector<std::string>& out, size_t max);

  /// True when the subscription still has queued frames after a drain.
  bool has_pending(uint64_t id) const;

  /// Events this subscription lost to ring eviction (drop-oldest).
  uint64_t dropped(uint64_t id) const;

  size_t active() const;

  /// Queue one event for every subscriber of `campaign` and wake them.
  /// Called by the obs listener; tests publish directly.
  void publish(const std::string& campaign, const Json& event);

  /// The campaign sequence counter's next value (1 when never published).
  uint64_t next_seq(const std::string& campaign) const;

 private:
  struct Subscription {
    std::string campaign;
    std::unique_ptr<stream::Channel> ring;
    std::function<void()> wake;
  };

  TraceStreamer() = default;
  static void on_trace(void* self, const obs::TraceEvent& event);
  void update_listener();
  std::shared_ptr<Subscription> find(uint64_t id) const;

  mutable std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<Subscription>> subs_;
  std::map<std::string, uint64_t> seqs_;
  uint64_t next_id_ = 0;
  // Serializes listener install/uninstall against concurrent attach/detach
  // so the listener is set iff subscriptions exist (checked under mutex_).
  std::mutex install_mutex_;
};

/// RAII: attribute this thread's campaign-less trace events (the virtual-
/// clock `savanna.*` family) to one campaign for streaming. The scheduler
/// wraps each allocation slice in one of these; nesting restores the outer
/// scope on destruction.
class CampaignScope {
 public:
  explicit CampaignScope(std::string campaign);
  ~CampaignScope();

  CampaignScope(const CampaignScope&) = delete;
  CampaignScope& operator=(const CampaignScope&) = delete;

  /// The innermost active scope's campaign on this thread ("" when none).
  static const std::string& current();

 private:
  std::string previous_;
};

}  // namespace ff::service
