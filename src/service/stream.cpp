#include "service/stream.hpp"

#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "stream/data.hpp"

namespace ff::service {

namespace {

thread_local std::string t_campaign_scope;

/// One drained batch per loop turn; bounds how long a single busy
/// subscriber can hold the server's event-delivery step.
constexpr size_t kMaxArgsJson = obs::kMaxArgs;

Json event_to_json(const obs::TraceEvent& event) {
  Json out = Json::object();
  out["event"] = std::string(event.name);
  for (size_t i = 0; i < event.arg_count && i < kMaxArgsJson; ++i) {
    const obs::Arg& arg = event.args[i];
    switch (arg.type) {
      case obs::Arg::Type::Int: out[arg.key] = arg.int_value; break;
      case obs::Arg::Type::Float: out[arg.key] = arg.float_value; break;
      case obs::Arg::Type::Str: out[arg.key] = arg.str_value; break;
    }
  }
  return out;
}

}  // namespace

TraceStreamer& TraceStreamer::instance() {
  static TraceStreamer streamer;
  return streamer;
}

uint64_t TraceStreamer::attach(const std::string& campaign, size_t capacity,
                               std::function<void()> wake) {
  auto sub = std::make_shared<Subscription>();
  sub->campaign = campaign;
  // Mpmc: publishers are arbitrary emitting threads, the consumer is the
  // server loop, and DropOldest eviction happens on the producer side.
  sub->ring = stream::make_channel(stream::ChannelKind::Mpmc,
                                   capacity > 0 ? capacity : 1);
  sub->wake = std::move(wake);
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = ++next_id_;
    subs_.emplace(id, std::move(sub));
  }
  update_listener();
  obs::trace_instant("service", "service.subscribe",
                     {{"campaign", campaign}, {"sub", static_cast<int64_t>(id)}});
  return id;
}

void TraceStreamer::detach(uint64_t id) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = subs_.find(id);
    if (it == subs_.end()) return;
    sub = std::move(it->second);
    subs_.erase(it);
  }
  sub->ring->close();
  update_listener();
}

void TraceStreamer::update_listener() {
  std::lock_guard<std::mutex> install(install_mutex_);
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active = subs_.size();
  }
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (active > 0) {
    recorder.set_listener(&TraceStreamer::on_trace, this);
  } else {
    recorder.set_listener(nullptr, nullptr);
  }
}

std::shared_ptr<TraceStreamer::Subscription> TraceStreamer::find(
    uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subs_.find(id);
  return it == subs_.end() ? nullptr : it->second;
}

size_t TraceStreamer::drain(uint64_t id, std::vector<std::string>& out,
                            size_t max) {
  std::shared_ptr<Subscription> sub = find(id);
  if (!sub) return 0;
  std::vector<stream::Record> records;
  const size_t taken = sub->ring->drain_into(records, max);
  for (stream::Record& record : records) {
    if (record.values.empty()) continue;
    if (auto* frame = std::get_if<std::string>(&record.values[0])) {
      out.push_back(std::move(*frame));
    }
  }
  return taken;
}

bool TraceStreamer::has_pending(uint64_t id) const {
  std::shared_ptr<Subscription> sub = find(id);
  return sub && sub->ring->size() > 0;
}

uint64_t TraceStreamer::dropped(uint64_t id) const {
  std::shared_ptr<Subscription> sub = find(id);
  return sub ? sub->ring->dropped() : 0;
}

size_t TraceStreamer::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subs_.size();
}

uint64_t TraceStreamer::next_seq(const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = seqs_.find(campaign);
  return (it == seqs_.end() ? 0 : it->second) + 1;
}

void TraceStreamer::publish(const std::string& campaign, const Json& event) {
  std::string frame;
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t seq = ++seqs_[campaign];
    for (const auto& [_, sub] : subs_) {
      if (sub->campaign == campaign) targets.push_back(sub);
    }
    if (targets.empty()) return;  // seq still advances: late joiners see gaps
    Json message = Json::object();
    message["stream"] = "trace";
    message["campaign"] = campaign;
    message["seq"] = static_cast<int64_t>(seq);
    message["event"] = event;
    frame = encode_frame(message);
    // Offers stay under the lock so ring order always matches seq order
    // (two racing publishers must not swap); only the wake callbacks —
    // which may take foreign locks — run outside it.
    stream::Record record;
    record.sequence = seq;
    record.values.emplace_back(frame);
    for (const auto& sub : targets) {
      sub->ring->offer(record, stream::Overflow::DropOldest);
    }
  }
  for (const auto& sub : targets) {
    if (sub->wake) sub->wake();
  }
}

void TraceStreamer::on_trace(void* self, const obs::TraceEvent& event) {
  if (event.kind != obs::EventKind::Instant) return;
  const bool service = std::strcmp(event.category, "service") == 0;
  if (!service && std::strcmp(event.category, "savanna") != 0) return;

  std::string campaign;
  for (size_t i = 0; i < event.arg_count; ++i) {
    const obs::Arg& arg = event.args[i];
    if (arg.type == obs::Arg::Type::Str &&
        std::strcmp(arg.key, "campaign") == 0) {
      campaign = arg.str_value;
      break;
    }
  }
  if (campaign.empty()) campaign = t_campaign_scope;
  if (campaign.empty()) return;  // unattributable: not streamed

  static_cast<TraceStreamer*>(self)->publish(campaign, event_to_json(event));
}

CampaignScope::CampaignScope(std::string campaign)
    : previous_(std::move(t_campaign_scope)) {
  t_campaign_scope = std::move(campaign);
}

CampaignScope::~CampaignScope() { t_campaign_scope = std::move(previous_); }

const std::string& CampaignScope::current() { return t_campaign_scope; }

}  // namespace ff::service
