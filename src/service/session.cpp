#include "service/session.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::service {

std::string SessionRegistry::open() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string id = "s" + std::to_string(++next_);
  active_ids_.insert(id);
  obs::trace_instant("service", "service.session.open", {{"session", id}});
  return id;
}

void SessionRegistry::close(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_ids_.erase(id) > 0) {
    obs::trace_instant("service", "service.session.close", {{"session", id}});
  }
}

size_t SessionRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ids_.size();
}

namespace {

Json dispatch(ServiceCore& core, std::atomic<bool>& shutdown,
              const std::string& session, const std::string& cmd,
              const Json& request, int64_t id) {
  if (cmd == "hello") {
    const int64_t wanted = request.get_or("protocol", kProtocolVersion);
    if (wanted != kProtocolVersion) {
      return error_reply(id, "bad-request",
                         "protocol " + std::to_string(wanted) +
                             " unsupported; server speaks " +
                             std::to_string(kProtocolVersion));
    }
    Json reply = ok_reply(id);
    reply["server"] = "fairflowd";
    reply["protocol"] = kProtocolVersion;
    reply["session"] = session;
    return reply;
  }
  if (cmd == "ping") {
    Json reply = ok_reply(id);
    reply["pong"] = true;
    return reply;
  }
  if (cmd == "submit") {
    const CampaignConfig config = campaign_config_from_request(request);
    const std::string name = core.submit(config, session);
    const CampaignInfo info = core.info(name);
    Json reply = ok_reply(id);
    reply["campaign"] = name;
    reply["runs"] = static_cast<int64_t>(info.run_count);
    reply["directory"] = info.directory;
    return reply;
  }
  if (cmd == "status") {
    Json reply = ok_reply(id);
    reply["campaign"] = core.info(request["campaign"].as_string()).to_json();
    return reply;
  }
  if (cmd == "list") {
    Json campaigns = Json::array();
    for (const CampaignInfo& info : core.list()) {
      campaigns.push_back(info.to_json());
    }
    Json reply = ok_reply(id);
    reply["campaigns"] = std::move(campaigns);
    return reply;
  }
  if (cmd == "lint") {
    const Json result = core.lint_workspace(request["workspace"].as_string(),
                                            request.get_or("werror", false));
    Json reply = ok_reply(id);
    for (const auto& [key, value] : result.as_object()) {
      reply[key] = value;
    }
    return reply;
  }
  if (cmd == "trace") {
    const int64_t count = request.get_or("count", int64_t{64});
    if (count < 0) return error_reply(id, "bad-request", "count must be >= 0");
    Json events = Json::array();
    for (Json& event : core.trace_tail(static_cast<size_t>(count))) {
      events.push_back(std::move(event));
    }
    Json reply = ok_reply(id);
    reply["events"] = std::move(events);
    return reply;
  }
  if (cmd == "cancel") {
    Json reply = ok_reply(id);
    reply["cancelled"] = core.cancel(request["campaign"].as_string());
    return reply;
  }
  if (cmd == "resume") {
    core.resume(request["campaign"].as_string());
    Json reply = ok_reply(id);
    reply["campaign"] = request["campaign"];
    return reply;
  }
  if (cmd == "subscribe") {
    // Valid shape, wrong transport: event frames are pushed onto the
    // connection that subscribed, which an in-process client doesn't have.
    return error_reply(id, "bad-request",
                       "subscribe is only available on a socket connection");
  }
  if (cmd == "shutdown") {
    shutdown.store(true, std::memory_order_release);
    Json reply = ok_reply(id);
    reply["draining"] = true;
    return reply;
  }
  // check_request() vets cmd against the registry, so a fall-through means
  // the registry and this dispatch switch drifted apart.
  return error_reply(id, "internal", "command '" + cmd + "' has no handler");
}

}  // namespace

Json Dispatcher::handle_subscribe(const std::string& session,
                                  const Json& request) {
  const int64_t id = request_id(request);
  Json reply;
  try {
    const std::string problem = check_request(request);
    if (!problem.empty()) {
      reply = error_reply(id, "bad-request", problem);
    } else if (shutdown_requested()) {
      reply = error_reply(id, "shutting-down",
                          "the daemon is draining; no new subscriptions");
    } else {
      const std::string campaign = request["campaign"].as_string();
      core_.info(campaign);  // NotFoundError when unknown
      reply = ok_reply(id);
      reply["campaign"] = campaign;
      reply["subscribed"] = true;
    }
  } catch (const NotFoundError& error) {
    reply = error_reply(id, "not-found", error.what());
  } catch (const std::exception& error) {
    reply = error_reply(id, "internal", error.what());
  }

  const bool ok = reply.get_or("ok", false);
  obs::trace_instant("service", "service.request",
                     {{"session", session}, {"cmd", "subscribe"}, {"ok", ok}});
  Json event = Json::object();
  event["event"] = "service.request";
  event["session"] = session;
  event["cmd"] = "subscribe";
  event["ok"] = ok;
  core_.note_event(std::move(event));
  return reply;
}

Json Dispatcher::handle(const std::string& session, const Json& request) {
  const int64_t id = request_id(request);
  Json reply;
  std::string cmd = "?";
  try {
    const std::string problem = check_request(request);
    if (!problem.empty()) {
      const bool unknown = problem.rfind("unknown command", 0) == 0;
      reply = error_reply(id, unknown ? "unknown-command" : "bad-request",
                          problem);
    } else {
      cmd = request["cmd"].as_string();
      if (shutdown_requested() && cmd != "ping" && cmd != "status" &&
          cmd != "list" && cmd != "trace") {
        reply = error_reply(id, "shutting-down",
                            "the daemon is draining; try another instance");
      } else {
        reply = dispatch(core_, shutdown_, session, cmd, request, id);
      }
    }
  } catch (const QuotaError& error) {
    reply = error_reply(id, "quota-exceeded", error.what());
  } catch (const NotFoundError& error) {
    reply = error_reply(id, "not-found", error.what());
  } catch (const StateError& error) {
    reply = error_reply(id, "conflict", error.what());
  } catch (const ValidationError& error) {
    // For submit, a ValidationError is the preflight lint (or an equally
    // fatal manifest defect) speaking: nothing was created.
    reply = error_reply(id, cmd == "submit" ? "lint-rejected" : "bad-request",
                        error.what());
  } catch (const std::exception& error) {
    reply = error_reply(id, "internal", error.what());
  }

  const bool ok = reply.get_or("ok", false);
  obs::trace_instant("service", "service.request",
                     {{"session", session}, {"cmd", cmd}, {"ok", ok}});
  Json event = Json::object();
  event["event"] = "service.request";
  event["session"] = session;
  event["cmd"] = cmd;
  event["ok"] = ok;
  core_.note_event(std::move(event));
  return reply;
}

}  // namespace ff::service
