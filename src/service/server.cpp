#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

#include "service/stream.hpp"
#include "util/error.hpp"

namespace ff::service {

namespace detail {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Readiness backend: level-triggered, one registration per fd. The server
/// never relies on edge semantics — every handler drains until EAGAIN, and
/// interest is recomputed from connection state after each step.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual void add(int fd, bool read, bool write) = 0;
  virtual void mod(int fd, bool read, bool write) = 0;
  virtual void del(int fd) = 0;
  /// Blocks up to timeout_ms (-1: forever); fills `out` with ready fds.
  virtual void wait(std::vector<PollEvent>& out, int timeout_ms) = 0;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) throw IoError(std::string("epoll_create1(): ") + std::strerror(errno));
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool read, bool write) override { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void mod(int fd, bool read, bool write) override { ctl(EPOLL_CTL_MOD, fd, read, write); }
  void del(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<PollEvent>& out, int timeout_ms) override {
    epoll_event events[256];
    int n = ::epoll_wait(epfd_, events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      throw IoError(std::string("epoll_wait(): ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
  }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      throw IoError(std::string("epoll_ctl(): ") + std::strerror(errno));
    }
  }

  int epfd_ = -1;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override { mod(fd, read, write); }
  void mod(int fd, bool read, bool write) override {
    short events = 0;
    if (read) events |= POLLIN;
    if (write) events |= POLLOUT;
    interest_[fd] = events;
  }
  void del(int fd) override { interest_.erase(fd); }

  void wait(std::vector<PollEvent>& out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, events] : interest_) {
      fds_.push_back(pollfd{fd, events, 0});
    }
    int n = ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      throw IoError(std::string("poll(): ") + std::strerror(errno));
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
    }
  }

 private:
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

}  // namespace detail

namespace {

std::string errno_string() { return std::strerror(errno); }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::unique_ptr<detail::Poller> make_poller(Server::Backend backend) {
#ifdef __linux__
  if (backend != Server::Backend::Poll) {
    return std::make_unique<detail::EpollPoller>();
  }
#else
  if (backend == Server::Backend::Epoll) {
    throw IoError("epoll backend is not available on this platform");
  }
  (void)backend;
#endif
  return std::make_unique<detail::PollPoller>();
}

/// Event frames delivered per subscribed connection per loop turn; bounds
/// how long one chatty campaign can monopolize the loop.
constexpr size_t kEventBatch = 128;

}  // namespace

/// See server.hpp: shared with subscription wake callbacks that may fire
/// from arbitrary emitting threads, including during server teardown.
struct Server::WakeHub {
  std::mutex mutex;
  std::vector<uint64_t> ready;  // conn ids with queued event frames
  std::atomic<bool> pending{false};
  int write_fd = -1;

  ~WakeHub() {
    if (write_fd >= 0) ::close(write_fd);
  }

  void notify() {
    if (!pending.exchange(true, std::memory_order_acq_rel)) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = ::write(write_fd, &byte, 1);
    }
  }

  void notify_conn(uint64_t conn_id) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ready.push_back(conn_id);
    }
    notify();
  }
};

Server::Server(Dispatcher& dispatcher, Options options)
    : dispatcher_(dispatcher),
      options_(std::move(options)),
      workers_(std::max<size_t>(1, options_.request_workers)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw StateError("server already started");

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw IoError("unix socket path too long: " + options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw IoError("socket(): " + errno_string());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = errno_string();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw IoError("bind(" + options_.unix_path + "): " + why);
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw IoError("socket(): " + errno_string());
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = errno_string();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw IoError("bind(127.0.0.1:" + std::to_string(options_.port) +
                    "): " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, 1024) != 0) {
    const std::string why = errno_string();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen(): " + why);
  }
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const std::string why = errno_string();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("pipe(): " + why);
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);
  wake_read_fd_ = pipe_fds[0];
  hub_ = std::make_shared<WakeHub>();
  hub_->write_fd = pipe_fds[1];

  poller_ = make_poller(options_.backend);
  poller_->add(listen_fd_, true, false);
  poller_->add(wake_read_fd_, true, false);

  stopping_.store(false, std::memory_order_release);
  started_ = true;
  loop_thread_ = std::thread([this] { run_loop(); });
}

void Server::stop() {
  if (!started_) return;
  started_ = false;

  stopping_.store(true, std::memory_order_release);
  hub_->notify();
  if (loop_thread_.joinable()) loop_thread_.join();

  // Let in-flight dispatches finish (their completions go nowhere — every
  // connection is already closed — but a half-applied submit must not be
  // abandoned mid-mutation).
  workers_.wait_idle();

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  poller_.reset();
  // hub_ stays alive: stale subscription wakes may still hold references.
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::run_loop() {
  std::vector<detail::PollEvent> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    events.clear();
    poller_->wait(events, next_timeout_ms(SteadyClock::now()));
    if (stopping_.load(std::memory_order_acquire)) break;

    bool woke = false;
    for (const detail::PollEvent& ev : events) {
      if (ev.fd == wake_read_fd_) woke = ev.readable || ev.error;
    }
    if (woke) {
      char sink[256];
      while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
      hub_->pending.store(false, std::memory_order_release);

      std::vector<uint64_t> ready;
      {
        std::lock_guard<std::mutex> lock(hub_->mutex);
        ready.swap(hub_->ready);
      }
      handle_completions();
      for (uint64_t id : ready) {
        Conn* conn = find(id);
        if (conn) deliver_events(*conn);
      }
    }

    // Connection fds next, accepts last: a close above may recycle an fd
    // number, and accepting last guarantees a recycled fd cannot receive a
    // stale event from this same batch.
    for (const detail::PollEvent& ev : events) {
      if (ev.fd == listen_fd_ || ev.fd == wake_read_fd_) continue;
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if (ev.error && !ev.readable) {
        close_conn(conn);
        continue;
      }
      if (ev.writable) {
        if (!flush(conn)) continue;
      }
      if (ev.readable) on_readable(conn);
    }

    for (const detail::PollEvent& ev : events) {
      if (ev.fd == listen_fd_ && ev.readable) accept_ready();
    }

    check_timeouts(SteadyClock::now());
  }
  shutdown_all();
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained (or listener dying; the loop will exit)
    }
    set_nonblocking(fd);
    served_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = ++next_conn_id_;
    conn->session = dispatcher_.sessions().open();
    conn->accepted = conn->last_frame = SteadyClock::now();
    by_id_[conn->id] = conn.get();
    poller_->add(fd, true, false);
    conns_.emplace(fd, std::move(conn));
    open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::on_readable(Conn& conn) {
  if (conn.fatal || conn.want_close || conn.reading_paused) return;
  char chunk[65536];
  bool peer_closed = false;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<size_t>(n));
      if (conn.in.size() > kMaxFrameBytes && conn.in.find('\n') == std::string::npos) {
        break;  // unbounded unterminated frame: stop reading, refuse below
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    peer_closed = true;  // orderly close or hard error: either way it's over
    break;
  }

  // Frame extraction: every complete line becomes a pending item, in order.
  size_t newline;
  while (!conn.fatal && (newline = conn.in.find('\n')) != std::string::npos) {
    std::string line = conn.in.substr(0, newline);
    conn.in.erase(0, newline + 1);
    conn.handshaken = true;
    conn.last_frame = SteadyClock::now();
    if (line.empty()) continue;
    if (line.size() > kMaxFrameBytes) {
      // A peer that ships an oversized frame is out of protocol; answer in
      // order, then hang up (anything after it is untrustworthy).
      conn.pending.push_back(PendingItem{
          Json(), encode_frame(error_reply(
                      0, "frame-too-large",
                      "request frame exceeds " +
                          std::to_string(kMaxFrameBytes) + " bytes"))});
      conn.fatal = true;
      break;
    }
    PendingItem item;
    try {
      item.request = decode_frame(line + "\n");
    } catch (const std::exception& error) {
      // Preformed reply, queued with the real ones: replies keep arrival
      // order even when a bad frame is sandwiched between good ones.
      item.preformed =
          encode_frame(error_reply(0, "bad-request", error.what()));
    }
    conn.pending.push_back(std::move(item));
  }

  if (!conn.fatal && conn.in.size() > kMaxFrameBytes) {
    conn.pending.push_back(PendingItem{
        Json(), encode_frame(error_reply(
                    0, "frame-too-large",
                    "unterminated frame exceeds " +
                        std::to_string(kMaxFrameBytes) + " bytes"))});
    conn.fatal = true;
    conn.in.clear();
  }

  if (conn.pending.size() > options_.max_pipelined) {
    conn.reading_paused = true;  // read backpressure; resumes on drain
  }

  dispatch_next(conn);
  if (!flush(conn)) return;

  if (peer_closed) {
    // Drop the connection once nothing is owed: a request already
    // dispatched still completes (its reply just goes nowhere).
    if (!conn.in_flight && conn.pending.empty()) {
      close_conn(conn);
    } else {
      conn.fatal = true;
      conn.want_close = true;
      update_interest(conn);
    }
  }
}

void Server::dispatch_next(Conn& conn) {
  // Nothing leaves the pending queue while a request is in flight — not
  // even preformed errors. A bad frame that arrived after request A must
  // reply after A's reply; arrival order is reply order.
  while (!conn.want_close && !conn.in_flight && !conn.pending.empty()) {
    PendingItem& front = conn.pending.front();
    if (!front.preformed.empty()) {
      std::string frame = std::move(front.preformed);
      conn.pending.pop_front();
      append_frame(conn, std::move(frame));
      continue;
    }
    Json request = std::move(front.request);
    conn.pending.pop_front();
    conn.in_flight = true;
    post_request(conn, std::move(request));
  }
  // A fatal connection (framing violation) hangs up once everything owed —
  // earlier replies, then the refusal frame — has left the pending queue;
  // fatal alone only stops reading, and without this it would linger open.
  if (conn.fatal && !conn.in_flight && conn.pending.empty()) {
    conn.want_close = true;
  }
}

void Server::post_request(Conn& conn, Json request) {
  const uint64_t conn_id = conn.id;
  const std::string session = conn.session;
  std::shared_ptr<WakeHub> hub = hub_;
  workers_.post([this, conn_id, session, hub,
                 request = std::move(request)]() mutable {
    const bool is_subscribe = request.is_object() &&
                              request.contains("cmd") &&
                              request["cmd"].is_string() &&
                              request["cmd"].as_string() == "subscribe";
    Json reply = is_subscribe ? dispatcher_.handle_subscribe(session, request)
                              : dispatcher_.handle(session, request);
    Completion done;
    done.conn = conn_id;
    if (is_subscribe && reply.get_or("ok", false)) {
      done.subscribe_campaign = reply["campaign"].as_string();
    }
    done.frame = encode_frame(reply);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_.push_back(std::move(done));
    }
    hub->notify();
  });
}

void Server::handle_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done.swap(done_);
  }
  for (Completion& completion : done) {
    Conn* conn = find(completion.conn);
    if (!conn) continue;  // connection died while its request ran
    conn->in_flight = false;
    append_frame(*conn, std::move(completion.frame));
    if (!completion.subscribe_campaign.empty() && !conn->want_close) {
      attach_subscription(*conn, completion.subscribe_campaign);
    }
    dispatch_next(*conn);
    maybe_resume_reading(*conn);
    flush(*conn);
  }
}

void Server::attach_subscription(Conn& conn, const std::string& campaign) {
  if (conn.sub != 0) {
    TraceStreamer::instance().detach(conn.sub);
    subscriptions_.fetch_sub(1, std::memory_order_relaxed);
  }
  const uint64_t conn_id = conn.id;
  std::shared_ptr<WakeHub> hub = hub_;
  conn.sub = TraceStreamer::instance().attach(
      campaign, options_.subscriber_buffer,
      [hub, conn_id] { hub->notify_conn(conn_id); });
  subscriptions_.fetch_add(1, std::memory_order_relaxed);
}

void Server::deliver_events(Conn& conn) {
  if (conn.sub == 0 || conn.want_close) return;
  std::vector<std::string> frames;
  TraceStreamer::instance().drain(conn.sub, frames, kEventBatch);
  for (std::string& frame : frames) {
    append_frame(conn, std::move(frame));
    if (conn.want_close) break;  // crossed the HWM mid-batch
  }
  if (conn.sub != 0 && !conn.want_close &&
      TraceStreamer::instance().has_pending(conn.sub)) {
    hub_->notify_conn(conn.id);  // keep draining next turn, fair to others
  }
  flush(conn);
}

void Server::append_frame(Conn& conn, std::string frame) {
  if (conn.want_close) return;  // condemned: replies go nowhere
  conn.out_bytes += frame.size();
  conn.out.push_back(std::move(frame));
  if (conn.out_bytes > options_.out_hwm_bytes) make_slow_consumer(conn);
}

void Server::make_slow_consumer(Conn& conn) {
  if (conn.want_close) return;
  slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
  if (conn.sub != 0) {
    TraceStreamer::instance().detach(conn.sub);
    conn.sub = 0;
    subscriptions_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Discard queued-but-unwritten frames; a partially-written front frame is
  // kept so the byte stream stays frame-aligned for the error that follows.
  if (conn.out_offset > 0 && !conn.out.empty()) {
    std::string front = std::move(conn.out.front());
    conn.out.clear();
    conn.out_bytes = front.size() - conn.out_offset;
    conn.out.push_back(std::move(front));
  } else {
    conn.out.clear();
    conn.out_offset = 0;
    conn.out_bytes = 0;
  }
  std::string frame = encode_frame(
      error_reply(0, "slow-consumer",
                  "outbound buffer exceeded " +
                      std::to_string(options_.out_hwm_bytes) +
                      " bytes; frames were discarded and this connection "
                      "is closing"));
  conn.out_bytes += frame.size();
  conn.out.push_back(std::move(frame));
  conn.pending.clear();
  conn.want_close = true;
  conn.fatal = true;
}

bool Server::flush(Conn& conn) {
  while (!conn.out.empty()) {
    const std::string& front = conn.out.front();
    const ssize_t n = ::send(conn.fd, front.data() + conn.out_offset,
                             front.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);  // peer gone mid-write
      return false;
    }
    conn.out_offset += static_cast<size_t>(n);
    conn.out_bytes -= static_cast<size_t>(n);
    if (conn.out_offset == front.size()) {
      conn.out.pop_front();
      conn.out_offset = 0;
    }
  }
  if (conn.out.empty() && conn.want_close && !conn.in_flight) {
    close_conn(conn);
    return false;
  }
  update_interest(conn);
  return true;
}

void Server::maybe_resume_reading(Conn& conn) {
  if (conn.reading_paused && !conn.fatal && !conn.want_close &&
      conn.pending.size() <= options_.max_pipelined / 2) {
    conn.reading_paused = false;
    update_interest(conn);
  }
}

void Server::update_interest(Conn& conn) {
  const bool want_read =
      !conn.reading_paused && !conn.fatal && !conn.want_close;
  const bool want_write = !conn.out.empty();
  conn.want_write = want_write;
  poller_->mod(conn.fd, want_read, want_write);
}

void Server::check_timeouts(SteadyClock::time_point now) {
  const bool handshake = options_.handshake_timeout_s > 0;
  const bool idle = options_.idle_timeout_s > 0;
  if (!handshake && !idle) return;

  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn->want_close) continue;
    const double since_accept =
        std::chrono::duration<double>(now - conn->accepted).count();
    const double since_frame =
        std::chrono::duration<double>(now - conn->last_frame).count();
    if (!conn->handshaken && handshake &&
        since_accept > options_.handshake_timeout_s) {
      expired.push_back(fd);
    } else if (conn->handshaken && idle && conn->sub == 0 &&
               conn->pending.empty() && !conn->in_flight &&
               since_frame > options_.idle_timeout_s) {
      expired.push_back(fd);
    }
  }
  for (int fd : expired) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    timeout_disconnects_.fetch_add(1, std::memory_order_relaxed);
    append_frame(conn, encode_frame(error_reply(
                           0, "idle-timeout",
                           conn.handshaken
                               ? "no frame for " +
                                     std::to_string(options_.idle_timeout_s) +
                                     "s; closing idle connection"
                               : "no complete frame within the handshake "
                                 "window; closing")));
    conn.pending.clear();
    conn.fatal = true;
    conn.want_close = true;
    flush(conn);
  }
}

int Server::next_timeout_ms(SteadyClock::time_point now) const {
  const bool handshake = options_.handshake_timeout_s > 0;
  const bool idle = options_.idle_timeout_s > 0;
  if (!handshake && !idle) return -1;

  double soonest = -1.0;
  for (const auto& [fd, conn] : conns_) {
    if (conn->want_close) continue;
    double remaining = -1.0;
    if (!conn->handshaken && handshake) {
      remaining = options_.handshake_timeout_s -
                  std::chrono::duration<double>(now - conn->accepted).count();
    } else if (conn->handshaken && idle && conn->sub == 0 &&
               conn->pending.empty() && !conn->in_flight) {
      remaining = options_.idle_timeout_s -
                  std::chrono::duration<double>(now - conn->last_frame).count();
    }
    if (remaining >= 0.0 && (soonest < 0.0 || remaining < soonest)) {
      soonest = remaining;
    }
  }
  if (soonest < 0.0) return -1;
  return std::clamp(static_cast<int>(std::ceil(soonest * 1000.0)), 10, 60000);
}

void Server::close_conn(Conn& conn) {
  if (conn.sub != 0) {
    TraceStreamer::instance().detach(conn.sub);
    conn.sub = 0;
    subscriptions_.fetch_sub(1, std::memory_order_relaxed);
  }
  poller_->del(conn.fd);
  ::close(conn.fd);
  dispatcher_.sessions().close(conn.session);
  open_.fetch_sub(1, std::memory_order_relaxed);
  by_id_.erase(conn.id);
  conns_.erase(conn.fd);  // destroys conn: the reference is dead now
}

void Server::shutdown_all() {
  // Subscribed watchers get a final shutting-down frame so a watcher can
  // tell "daemon drained" from "network cut"; then a bounded grace flush
  // pushes out whatever fits (including half-written replies) before the
  // sockets close.
  for (auto& [fd, conn] : conns_) {
    if (conn->sub != 0) {
      TraceStreamer::instance().detach(conn->sub);
      conn->sub = 0;
      subscriptions_.fetch_sub(1, std::memory_order_relaxed);
      std::string frame = encode_frame(
          error_reply(0, "shutting-down",
                      "the daemon is shutting down; event stream ends"));
      conn->out_bytes += frame.size();
      conn->out.push_back(std::move(frame));
    }
  }

  const auto deadline = SteadyClock::now() + std::chrono::milliseconds(500);
  bool blocked = true;
  while (blocked && SteadyClock::now() < deadline) {
    blocked = false;
    for (auto& [fd, conn] : conns_) {
      while (!conn->out.empty()) {
        const std::string& front = conn->out.front();
        const ssize_t n = ::send(fd, front.data() + conn->out_offset,
                                 front.size() - conn->out_offset, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            blocked = true;
          } else {
            conn->out.clear();  // peer gone; nothing more to deliver
            conn->out_offset = 0;
          }
          break;
        }
        conn->out_offset += static_cast<size_t>(n);
        if (conn->out_offset == front.size()) {
          conn->out.pop_front();
          conn->out_offset = 0;
        }
      }
    }
    if (blocked) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    dispatcher_.sessions().close(conn->session);
  }
  conns_.clear();
  by_id_.clear();
  open_.store(0, std::memory_order_relaxed);
}

Server::Conn* Server::find(uint64_t id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

}  // namespace ff::service
