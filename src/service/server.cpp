#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace ff::service {

namespace {

void send_all(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; the read loop will notice and close
    }
    sent += static_cast<size_t>(n);
  }
}

std::string errno_string() { return std::strerror(errno); }

}  // namespace

Server::Server(Dispatcher& dispatcher, Options options)
    : dispatcher_(dispatcher), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (listen_fd_ >= 0) throw StateError("server already started");

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw IoError("unix socket path too long: " + options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw IoError("socket(): " + errno_string());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = errno_string();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw IoError("bind(" + options_.unix_path + "): " + why);
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw IoError("socket(): " + errno_string());
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string why = errno_string();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw IoError("bind(127.0.0.1:" + std::to_string(options_.port) +
                    "): " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = errno_string();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen(): " + why);
  }

  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close() alone does not on
    // all kernels.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    fds.swap(client_fds_);
    threads.swap(client_threads_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }

  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop()) or fatal: either way, exit
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(clients_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] { serve_client(fd); });
  }
}

void Server::serve_client(int fd) {
  Dispatcher::Session session(dispatcher_);
  std::string buffer;
  char chunk[4096];

  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect or stop(): any partial frame is dropped
    buffer.append(chunk, static_cast<size_t>(n));

    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      if (line.size() > kMaxFrameBytes) {
        send_all(fd, encode_frame(error_reply(0, "frame-too-large",
                                              "request frame exceeds " +
                                                  std::to_string(
                                                      kMaxFrameBytes) +
                                                  " bytes")));
        continue;
      }
      Json request;
      try {
        request = decode_frame(line + "\n");
      } catch (const std::exception& error) {
        send_all(fd, encode_frame(error_reply(0, "bad-request", error.what())));
        continue;
      }
      send_all(fd, encode_frame(session.handle(request)));
    }

    // A frame this large with no newline yet is never going to be valid;
    // refuse it rather than buffering without bound.
    if (buffer.size() > kMaxFrameBytes) {
      send_all(fd, encode_frame(error_reply(
                       0, "frame-too-large",
                       "unterminated frame exceeds " +
                           std::to_string(kMaxFrameBytes) + " bytes")));
      break;
    }
  }
  ::close(fd);
}

}  // namespace ff::service
