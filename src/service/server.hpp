#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/session.hpp"

namespace ff::service {

/// fairflowd's transport: a Unix-domain (or loopback TCP) listener,
/// thread-per-client, newline-delimited JSON frames (see protocol.hpp).
/// Each connection is one session: opened on accept, closed on disconnect.
/// A request only exists once its terminating newline arrives — a client
/// that dies mid-frame has submitted nothing (no partial campaign state).
class Server {
 public:
  struct Options {
    /// Non-empty: listen on this Unix socket path (created, unlinked on
    /// stop). Empty: listen on loopback TCP instead.
    std::string unix_path;
    /// TCP port (loopback only); 0 picks an ephemeral port — read it back
    /// with port() after start().
    uint16_t port = 0;
  };

  Server(Dispatcher& dispatcher, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop. Throws IoError on bind
  /// failure (path too long, address in use, ...).
  void start();

  /// Stop accepting, shut down every live connection, join all threads.
  /// Idempotent. Does NOT drain the core — callers sequence
  /// server.stop() then core.stop()/drain() (the SIGTERM path).
  void stop();

  uint16_t port() const noexcept { return port_; }
  const std::string& unix_path() const noexcept { return options_.unix_path; }
  size_t connections_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  Dispatcher& dispatcher() noexcept { return dispatcher_; }

 private:
  void accept_loop();
  void serve_client(int fd);

  Dispatcher& dispatcher_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> served_{0};
};

}  // namespace ff::service
