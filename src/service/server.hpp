#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/session.hpp"
#include "util/thread_pool.hpp"

namespace ff::service {

namespace detail {
class Poller;
}

/// fairflowd's transport: a Unix-domain (or loopback TCP) listener driven
/// by one single-threaded readiness loop (epoll on Linux, poll fallback)
/// with a non-blocking framing state machine per fd — partial-read
/// reassembly and partial-write backpressure around the newline-JSON
/// protocol. A thousand idle watchers cost a thousand fds, not a thousand
/// threads: thread count is the loop plus a fixed request worker pool.
///
/// Each connection is one session: opened on accept, closed on disconnect.
/// A request only exists once its terminating newline arrives — a client
/// that dies mid-frame has submitted nothing (no partial campaign state).
/// Requests on one connection dispatch strictly in order (one in flight at
/// a time on the worker pool; replies in request order), while different
/// connections proceed concurrently.
///
/// Flow control, all knobs in Options:
///  - a connection whose outbound buffer crosses `out_hwm_bytes` is a slow
///    consumer: queued-but-unwritten frames are discarded, a
///    `slow-consumer` error frame is appended, and the connection closes
///    once it flushes (or the loop gives up on it);
///  - more than `max_pipelined` queued requests pauses reading from that
///    fd until the backlog drains (read backpressure, not disconnect);
///  - a connection that never completes a frame within
///    `handshake_timeout_s`, or completes none for `idle_timeout_s` while
///    holding no subscription, is dropped with `idle-timeout`. Subscribed
///    watchers are exempt from the idle timeout — idle watching is their
///    whole job.
class Server {
 public:
  enum class Backend : uint8_t {
    Auto,   ///< epoll where available, else poll
    Epoll,  ///< Linux epoll (throws IoError elsewhere)
    Poll,   ///< portable poll(2) backend
  };

  struct Options {
    /// Non-empty: listen on this Unix socket path (created, unlinked on
    /// stop). Empty: listen on loopback TCP instead.
    std::string unix_path;
    /// TCP port (loopback only); 0 picks an ephemeral port — read it back
    /// with port() after start().
    uint16_t port = 0;
    /// Readiness backend; Auto resolves to epoll on Linux.
    Backend backend = Backend::Auto;
    /// Request dispatch threads (per-connection order is preserved
    /// regardless; this bounds cross-connection concurrency).
    size_t request_workers = 2;
    /// Outbound high-water mark per connection; crossing it makes the
    /// connection a slow consumer (see class comment).
    size_t out_hwm_bytes = 8 * 1024 * 1024;
    /// Parsed-but-undispatched requests per connection before the loop
    /// stops reading that fd (resumes when the backlog drains).
    size_t max_pipelined = 64;
    /// Seconds from accept to the first complete frame (0 disables).
    double handshake_timeout_s = 30.0;
    /// Seconds without a complete frame before an unsubscribed connection
    /// is dropped (0 disables; the default).
    double idle_timeout_s = 0.0;
    /// Per-subscriber event ring capacity (frames), drop-oldest.
    size_t subscriber_buffer = 1024;
  };

  Server(Dispatcher& dispatcher, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the readiness loop. Throws IoError on bind
  /// failure (path too long, address in use, ...).
  void start();

  /// Stop accepting, push a `shutting-down` frame to subscribed watchers,
  /// shut down every live connection, join the loop and worker threads.
  /// Idempotent. Does NOT drain the core — callers sequence
  /// server.stop() then core.stop()/drain() (the SIGTERM path).
  void stop();

  uint16_t port() const noexcept { return port_; }
  const std::string& unix_path() const noexcept { return options_.unix_path; }
  size_t connections_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  Dispatcher& dispatcher() noexcept { return dispatcher_; }

  /// Introspection for tests and the bench: live fds, subscription count,
  /// and why connections were dropped.
  size_t open_connections() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }
  size_t active_subscriptions() const noexcept {
    return subscriptions_.load(std::memory_order_relaxed);
  }
  uint64_t slow_consumer_disconnects() const noexcept {
    return slow_disconnects_.load(std::memory_order_relaxed);
  }
  uint64_t timeout_disconnects() const noexcept {
    return timeout_disconnects_.load(std::memory_order_relaxed);
  }

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// One queued inbound item: either a decoded request awaiting dispatch or
  /// a preformed error frame (parse failure, oversized frame) that must go
  /// out in arrival order with the real replies.
  struct PendingItem {
    Json request;
    std::string preformed;  // non-empty: skip dispatch, emit verbatim
  };

  /// Per-fd framing state machine. Owned and touched by the loop thread
  /// only; workers communicate through the completion queue.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string session;
    std::string in;                   // partial-read reassembly
    std::deque<std::string> out;      // whole frames awaiting write
    size_t out_offset = 0;            // bytes of out.front() already sent
    size_t out_bytes = 0;             // total queued outbound bytes
    std::deque<PendingItem> pending;  // ordered inbound backlog
    bool in_flight = false;           // one request on the workers
    bool want_close = false;          // close once out drains
    bool fatal = false;               // framing violation: stop reading
    bool reading_paused = false;
    bool want_write = false;          // EPOLLOUT armed
    uint64_t sub = 0;                 // TraceStreamer subscription (0: none)
    SteadyClock::time_point accepted;
    SteadyClock::time_point last_frame;
    bool handshaken = false;
  };

  struct Completion {
    uint64_t conn = 0;
    std::string frame;
    std::string subscribe_campaign;  // non-empty: attach after the reply
  };

  struct WakeHub;

  void run_loop();
  void accept_ready();
  void on_readable(Conn& conn);
  /// Returns false when the connection was closed mid-flush.
  bool flush(Conn& conn);
  void append_frame(Conn& conn, std::string frame);
  void dispatch_next(Conn& conn);
  void post_request(Conn& conn, Json request);
  void handle_completions();
  void deliver_events(Conn& conn);
  void attach_subscription(Conn& conn, const std::string& campaign);
  void make_slow_consumer(Conn& conn);
  void check_timeouts(SteadyClock::time_point now);
  int next_timeout_ms(SteadyClock::time_point now) const;
  void maybe_resume_reading(Conn& conn);
  void close_conn(Conn& conn);
  void update_interest(Conn& conn);
  void shutdown_all();
  Conn* find(uint64_t id);

  Dispatcher& dispatcher_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> served_{0};
  std::atomic<size_t> open_{0};
  std::atomic<size_t> subscriptions_{0};
  std::atomic<uint64_t> slow_disconnects_{0};
  std::atomic<uint64_t> timeout_disconnects_{0};

  std::unique_ptr<detail::Poller> poller_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<uint64_t, Conn*> by_id_;                  // by conn id
  uint64_t next_conn_id_ = 0;

  // Self-pipe wake hub: workers and trace publishers nudge the loop through
  // it; an atomic flag coalesces any number of wakes into one unread byte.
  // It is shared_ptr-held because subscription wake callbacks (copied into
  // TraceStreamer) can fire from foreign threads during teardown — the hub
  // (and its pipe write end) must outlive every copy of those callbacks.
  std::shared_ptr<WakeHub> hub_;
  int wake_read_fd_ = -1;

  std::mutex done_mutex_;
  std::vector<Completion> done_;  // worker results awaiting the loop

  // Declared last: destroyed first, so in-flight worker jobs (which touch
  // done_ and the wake pipe above) finish before anything else dies.
  ThreadPool workers_;
};

}  // namespace ff::service
