#include "service/protocol.hpp"

#include "util/error.hpp"

namespace ff::service {

const std::vector<CommandInfo>& service_command_registry() {
  // Ordered by lifecycle: handshake, liveness, campaign verbs, inspection,
  // daemon control. docs/service_protocol.md documents exactly these
  // (tests/service/service_doc_test enforces both directions).
  static const std::vector<CommandInfo> kCommands = {
      {"hello",
       "handshake: negotiate protocol version, learn the session id",
       {{"client", "string", false}, {"protocol", "int", false}}},
      {"ping", "liveness probe; replies pong", {}},
      {"submit",
       "lint and register a campaign manifest, then schedule its runs",
       {{"manifest", "object", true},
        {"group", "string", false},
        {"duration", "object", false},
        {"execution", "object", false},
        {"retry", "object", false},
        {"journal", "object", false}}},
      {"status",
       "live state, allocation count, and run counts of one campaign",
       {{"campaign", "string", true}}},
      {"list", "summaries of every campaign the service knows", {}},
      {"lint",
       "whole-workspace lint of a server-side directory (the same engine "
       "as `fairflow-lint --workspace`, sharing the submit preflight cache)",
       {{"workspace", "string", true}, {"werror", "bool", false}}},
      {"trace",
       "tail of the service's trace-event log (most recent last)",
       {{"count", "int", false}}},
      {"subscribe",
       "stream one campaign's service.* and savanna.* trace events as "
       "pushed `event` frames on this connection",
       {{"campaign", "string", true}}},
      {"cancel",
       "stop scheduling a campaign after its in-flight allocation",
       {{"campaign", "string", true}}},
      {"resume",
       "re-enqueue a cancelled or failed campaign (journal replay)",
       {{"campaign", "string", true}}},
      {"shutdown",
       "drain in-flight allocations, then exit the daemon",
       {}},
  };
  return kCommands;
}

const CommandInfo* find_service_command(std::string_view cmd) {
  for (const CommandInfo& command : service_command_registry()) {
    if (command.cmd == cmd) return &command;
  }
  return nullptr;
}

const std::vector<ServiceErrorInfo>& service_error_registry() {
  static const std::vector<ServiceErrorInfo> kErrors = {
      {"bad-request", "the request violates a command's registered shape"},
      {"unknown-command", "the \"cmd\" value is not in the command registry"},
      {"frame-too-large", "a frame exceeded kMaxFrameBytes; connection dropped"},
      {"lint-rejected",
       "the manifest failed the preflight lint; nothing was created"},
      {"not-found", "no campaign with that name"},
      {"conflict", "the campaign exists or is in a state the verb forbids"},
      {"quota-exceeded", "the session reached its campaign quota"},
      {"shutting-down", "the daemon is draining and accepts no new work"},
      {"slow-consumer",
       "the connection's outbound buffer crossed the high-water mark; "
       "queued frames were discarded and the connection is dropped"},
      {"idle-timeout",
       "no complete frame arrived within the handshake/idle window; "
       "connection dropped"},
      {"internal", "an unexpected server-side failure; see message"},
  };
  return kErrors;
}

const ServiceErrorInfo* find_service_error(std::string_view code) {
  for (const ServiceErrorInfo& error : service_error_registry()) {
    if (error.code == code) return &error;
  }
  return nullptr;
}

bool json_matches_type(const Json& value, std::string_view type) {
  if (type == "string") return value.is_string();
  if (type == "int") return value.is_int();
  if (type == "number") return value.is_number();
  if (type == "bool") return value.is_bool();
  if (type == "object") return value.is_object();
  throw ValidationError("service: unknown field type '" + std::string(type) +
                        "' in the command registry");
}

std::string encode_frame(const Json& message) {
  return message.dump() + "\n";
}

Json decode_frame(std::string_view line) {
  Json message = Json::parse(line);
  if (!message.is_object()) {
    throw ValidationError("service: a frame must be a JSON object");
  }
  return message;
}

int64_t request_id(const Json& request) {
  if (!request.is_object() || !request.contains("id")) return 0;
  const Json& id = request["id"];
  return id.is_int() ? id.as_int() : 0;
}

Json ok_reply(int64_t id) {
  Json reply = Json::object();
  reply["id"] = id;
  reply["ok"] = true;
  return reply;
}

Json error_reply(int64_t id, std::string_view code, const std::string& message) {
  if (!find_service_error(code)) {
    throw ValidationError("service: error code '" + std::string(code) +
                          "' is not in the error registry");
  }
  Json reply = Json::object();
  reply["id"] = id;
  reply["ok"] = false;
  Json error = Json::object();
  error["code"] = std::string(code);
  error["message"] = message;
  reply["error"] = std::move(error);
  return reply;
}

std::string check_request(const Json& request) {
  if (!request.is_object()) return "request frame is not a JSON object";
  if (!request.contains("cmd")) return "request has no \"cmd\" field";
  if (!request["cmd"].is_string()) return "\"cmd\" must be a string";
  const std::string cmd = request["cmd"].as_string();
  const CommandInfo* command = find_service_command(cmd);
  if (!command) return "unknown command '" + cmd + "'";
  for (const FieldInfo& field : command->fields) {
    const std::string name(field.name);
    if (!request.contains(name)) {
      if (field.required) {
        return "command '" + cmd + "' requires field \"" + name + "\"";
      }
      continue;
    }
    if (!json_matches_type(request[name], field.type)) {
      return "field \"" + name + "\" of command '" + cmd + "' must be " +
             std::string(field.type);
    }
  }
  return "";
}

}  // namespace ff::service
