// fairflowd: the multi-tenant campaign daemon.
//
//   fairflowd --socket /tmp/fairflowd.sock --root /data/campaigns
//   fairflowd --port 7341 --root ./campaigns --workers 4
//
// Clients speak newline-delimited JSON (docs/service_protocol.md); the
// bundled `fairflow-ctl` is the reference client. SIGTERM/SIGINT drain:
// in-flight allocation slices finish (journals commit at slice
// boundaries), queued campaigns stay resumable on disk, then exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "gwas/workflow.hpp"
#include "service/core.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fairflowd [options]\n"
    "\n"
    "Serve campaign submissions over a Unix or loopback TCP socket.\n"
    "\n"
    "options:\n"
    "  --socket <path>   listen on a Unix socket at <path>\n"
    "  --port <n>        listen on 127.0.0.1:<n> instead (0 = ephemeral)\n"
    "  --root <dir>      directory for campaign endpoints (default .)\n"
    "  --workers <n>     concurrent allocation slices (default 2)\n"
    "  --quota <n>       max campaigns per session (default 8)\n"
    "  --out-hwm <bytes>        per-connection outbound high-water mark\n"
    "                           (default 8388608); crossing it drops the\n"
    "                           connection as a slow consumer\n"
    "  --handshake-timeout <s>  seconds from accept to the first complete\n"
    "                           frame (default 30, 0 disables)\n"
    "  --idle-timeout <s>       drop unsubscribed connections idle this\n"
    "                           long (default 0 = disabled)\n"
    "  --help            this message\n";

int usage_error(const std::string& message) {
  std::fprintf(stderr, "fairflowd: %s\n%s", message.c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ff::service::ServiceCore::Options core_options;
  core_options.root = ".";
  ff::service::Server::Options server_options;
  bool tcp = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--socket") {
      const char* value = next_value();
      if (!value) return usage_error("--socket needs a path");
      server_options.unix_path = value;
    } else if (arg == "--port") {
      const char* value = next_value();
      if (!value) return usage_error("--port needs a number");
      server_options.port = static_cast<uint16_t>(std::atoi(value));
      tcp = true;
    } else if (arg == "--root") {
      const char* value = next_value();
      if (!value) return usage_error("--root needs a directory");
      core_options.root = value;
    } else if (arg == "--workers") {
      const char* value = next_value();
      if (!value) return usage_error("--workers needs a number");
      const int workers = std::atoi(value);
      if (workers < 1) return usage_error("--workers must be >= 1");
      core_options.workers = static_cast<size_t>(workers);
    } else if (arg == "--quota") {
      const char* value = next_value();
      if (!value) return usage_error("--quota needs a number");
      const int quota = std::atoi(value);
      if (quota < 1) return usage_error("--quota must be >= 1");
      core_options.max_campaigns_per_session = static_cast<size_t>(quota);
    } else if (arg == "--out-hwm") {
      const char* value = next_value();
      if (!value) return usage_error("--out-hwm needs a byte count");
      const long long hwm = std::atoll(value);
      if (hwm < 1024) return usage_error("--out-hwm must be >= 1024");
      server_options.out_hwm_bytes = static_cast<size_t>(hwm);
    } else if (arg == "--handshake-timeout") {
      const char* value = next_value();
      if (!value) return usage_error("--handshake-timeout needs seconds");
      const double seconds = std::atof(value);
      if (seconds < 0) return usage_error("--handshake-timeout must be >= 0");
      server_options.handshake_timeout_s = seconds;
    } else if (arg == "--idle-timeout") {
      const char* value = next_value();
      if (!value) return usage_error("--idle-timeout needs seconds");
      const double seconds = std::atof(value);
      if (seconds < 0) return usage_error("--idle-timeout must be >= 0");
      server_options.idle_timeout_s = seconds;
    } else {
      return usage_error("unknown option '" + arg + "'");
    }
  }
  if (server_options.unix_path.empty() && !tcp) {
    return usage_error("pick a transport: --socket <path> or --port <n>");
  }
  if (!server_options.unix_path.empty() && tcp) {
    return usage_error("--socket and --port are mutually exclusive");
  }

  // The drain signals are consumed synchronously in the wait loop below;
  // block them everywhere so worker threads never see them.
  sigset_t drain_set;
  sigemptyset(&drain_set);
  sigaddset(&drain_set, SIGTERM);
  sigaddset(&drain_set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_set, nullptr);

  try {
    ff::service::ServiceCore core(core_options);
    // Same built-in model the fairflow-lint CLI registers, so the `lint`
    // command and the submit preflight match it rule-for-rule.
    core.analyzer().engine.register_model({"gwas-paste",
                                           ff::gwas::paste_model_schema(),
                                           ff::gwas::make_paste_generator()});
    ff::service::Dispatcher dispatcher(core);
    ff::service::Server server(dispatcher, server_options);
    server.start();

    if (!server_options.unix_path.empty()) {
      std::printf("fairflowd: listening on %s (root %s, %zu workers)\n",
                  server_options.unix_path.c_str(), core_options.root.c_str(),
                  core_options.workers);
    } else {
      std::printf("fairflowd: listening on 127.0.0.1:%u (root %s, %zu workers)\n",
                  server.port(), core_options.root.c_str(),
                  core_options.workers);
    }
    std::fflush(stdout);

    // Wait for SIGTERM/SIGINT or a client-issued `shutdown`.
    const timespec tick{0, 200 * 1000 * 1000};
    for (;;) {
      if (dispatcher.shutdown_requested()) break;
      const int sig = sigtimedwait(&drain_set, nullptr, &tick);
      if (sig == SIGTERM || sig == SIGINT) break;
    }

    std::printf("fairflowd: draining (in-flight slices will finish)\n");
    std::fflush(stdout);
    server.stop();  // no new frames; existing journals stay consistent
    core.stop();    // wait for granted slices, park the scheduler
    std::printf("fairflowd: drained, exiting\n");
    return 0;
  } catch (const ff::Error& error) {
    std::fprintf(stderr, "fairflowd: %s\n", error.what());
    return 1;
  }
}
