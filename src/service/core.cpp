#include "service/core.hpp"

#include <algorithm>
#include <utility>

#include "cheetah/campaign.hpp"
#include "obs/trace.hpp"
#include "savanna/journal.hpp"
#include "service/stream.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace ff::service {

namespace {

void apply_duration(CampaignConfig& config, const Json& duration) {
  sim::DurationModel& model = config.durations;
  model.median_s = duration.get_or("median_s", model.median_s);
  model.sigma = duration.get_or("sigma", model.sigma);
  model.straggler_fraction =
      duration.get_or("straggler_fraction", model.straggler_fraction);
  model.straggler_scale =
      duration.get_or("straggler_scale", model.straggler_scale);
  model.straggler_alpha =
      duration.get_or("straggler_alpha", model.straggler_alpha);
  config.duration_seed = static_cast<uint64_t>(
      duration.get_or("seed", static_cast<int64_t>(config.duration_seed)));
  if (model.median_s <= 0) {
    throw ValidationError("submit: duration.median_s must be positive");
  }
}

void apply_execution(CampaignConfig& config, const Json& execution) {
  if (execution.contains("nodes")) {
    const int64_t nodes = execution["nodes"].as_int();
    if (nodes <= 0) throw ValidationError("submit: execution.nodes must be positive");
    config.nodes = nodes;
  }
  if (execution.contains("walltime_s")) {
    const double walltime_s = execution["walltime_s"].as_double();
    if (walltime_s <= 0) {
      throw ValidationError("submit: execution.walltime_s must be positive");
    }
    config.walltime_s = walltime_s;
  }
}

void apply_retry(CampaignConfig& config, const Json& retry) {
  savanna::RetryPolicy& policy = config.retry;
  policy.max_attempts = static_cast<size_t>(
      retry.get_or("max_attempts", static_cast<int64_t>(policy.max_attempts)));
  policy.base_backoff_s = retry.get_or("base_backoff_s", policy.base_backoff_s);
  policy.growth = retry.get_or("growth", policy.growth);
  policy.max_backoff_s = retry.get_or("max_backoff_s", policy.max_backoff_s);
}

void apply_journal(CampaignConfig& config, const Json& journal) {
  savanna::JournalPolicy& policy = config.journal;
  policy.checkpoint_every = static_cast<size_t>(journal.get_or(
      "checkpoint_every", static_cast<int64_t>(policy.checkpoint_every)));
  policy.compact_after_checkpoint = journal.get_or(
      "compact_after_checkpoint", policy.compact_after_checkpoint);
  const int64_t group_commit = journal.get_or(
      "group_commit", static_cast<int64_t>(policy.group_commit));
  if (group_commit < 1) {
    throw ValidationError("submit: journal.group_commit must be >= 1");
  }
  policy.group_commit = static_cast<size_t>(group_commit);
}

/// The knobs submit() accepted, persisted to .campaign/service.json so a
/// restarted daemon can resume the campaign with the *same* task durations
/// and policies (the journal records what ran; this records how to rebuild
/// the task list that byte-matches it).
Json config_sidecar(const CampaignConfig& config) {
  Json out = Json::object();
  out["group"] = config.group;
  Json duration = Json::object();
  duration["median_s"] = config.durations.median_s;
  duration["sigma"] = config.durations.sigma;
  duration["straggler_fraction"] = config.durations.straggler_fraction;
  duration["straggler_scale"] = config.durations.straggler_scale;
  duration["straggler_alpha"] = config.durations.straggler_alpha;
  duration["seed"] = static_cast<int64_t>(config.duration_seed);
  out["duration"] = std::move(duration);
  Json execution = Json::object();
  if (config.nodes) execution["nodes"] = *config.nodes;
  if (config.walltime_s) execution["walltime_s"] = *config.walltime_s;
  out["execution"] = std::move(execution);
  Json retry = Json::object();
  retry["max_attempts"] = static_cast<int64_t>(config.retry.max_attempts);
  retry["base_backoff_s"] = config.retry.base_backoff_s;
  retry["growth"] = config.retry.growth;
  retry["max_backoff_s"] = config.retry.max_backoff_s;
  out["retry"] = std::move(retry);
  Json journal = Json::object();
  journal["checkpoint_every"] =
      static_cast<int64_t>(config.journal.checkpoint_every);
  journal["compact_after_checkpoint"] = config.journal.compact_after_checkpoint;
  journal["group_commit"] = static_cast<int64_t>(config.journal.group_commit);
  out["journal"] = std::move(journal);
  return out;
}

}  // namespace

CampaignConfig campaign_config_from_request(const Json& request) {
  CampaignConfig config;
  if (!request.contains("manifest") || !request["manifest"].is_object()) {
    throw ValidationError("submit: \"manifest\" object is required");
  }
  config.manifest = request["manifest"];
  config.group = request.get_or("group", "");
  if (request.contains("duration")) apply_duration(config, request["duration"]);
  if (request.contains("execution")) apply_execution(config, request["execution"]);
  if (request.contains("retry")) apply_retry(config, request["retry"]);
  if (request.contains("journal")) apply_journal(config, request["journal"]);
  return config;
}

Json CampaignInfo::to_json() const {
  Json out = Json::object();
  out["campaign"] = name;
  out["state"] = state;
  out["directory"] = directory;
  out["owner"] = owner;
  out["runs"] = static_cast<int64_t>(run_count);
  out["allocations"] = static_cast<int64_t>(allocations);
  Json count_json = Json::object();
  count_json["total"] = static_cast<int64_t>(counts.total);
  count_json["done"] = static_cast<int64_t>(counts.done);
  count_json["failed"] = static_cast<int64_t>(counts.failed);
  count_json["killed"] = static_cast<int64_t>(counts.killed);
  count_json["exhausted"] = static_cast<int64_t>(counts.exhausted);
  count_json["never_started"] = static_cast<int64_t>(counts.never_started);
  out["counts"] = std::move(count_json);
  if (!error.empty()) out["error"] = error;
  return out;
}

/// One multiplexed campaign: endpoint + deterministic task list + the
/// persistent execution state its slices accumulate into. In-memory
/// campaigns keep a live simulation/tracker/journal across slices; a
/// campaign adopted from disk (daemon restart, reopened journal) instead
/// replays its journal each slice via resume_campaign — both paths produce
/// byte-identical journals (the runner's resume equivalence).
struct ServiceCore::CampaignState {
  std::string name;
  std::string group;
  std::string owner;
  std::optional<cheetah::CampaignEndpoint> endpoint;
  std::vector<sim::TaskSpec> tasks;
  savanna::CampaignRunOptions options;
  std::unique_ptr<sim::Simulation> sim = std::make_unique<sim::Simulation>();
  std::unique_ptr<savanna::RunTracker> tracker =
      std::make_unique<savanna::RunTracker>();
  savanna::CampaignJournal journal;
  bool use_disk_resume = false;
  std::string state = "queued";
  size_t allocations = 0;
  std::string error;
  bool in_flight = false;
  bool cancel_requested = false;
  size_t last_terminal_runs = 0;  // done+exhausted after the previous slice
  size_t last_attempts = 0;       // total attempts after the previous slice
  // Counts as of the moment the current slice was granted. While in_flight,
  // the slice thread owns sim/tracker/journal off-lock (the disk-resume path
  // even reassigns the tracker pointer), so status/list must read this
  // snapshot instead of touching the live tracker.
  savanna::RunTracker::Counts counts_snapshot;

  CampaignInfo to_info() const {
    CampaignInfo info;
    info.name = name;
    info.state = state;
    info.directory = endpoint ? endpoint->directory() : "";
    info.owner = owner;
    info.run_count = tasks.size();
    info.allocations = allocations;
    info.counts = in_flight ? counts_snapshot : tracker->counts();
    info.error = error;
    return info;
  }
};

ServiceCore::ServiceCore(Options options)
    : options_(std::move(options)),
      pool_(options_.workers > 0 ? options_.workers : 1) {
  if (options_.root.empty()) {
    throw ValidationError("service: a campaign root directory is required");
  }
  if (options_.workers == 0) options_.workers = 1;
}

ServiceCore::~ServiceCore() { stop(); }

std::string ServiceCore::submit(const CampaignConfig& config,
                                const std::string& session) {
  cheetah::Campaign campaign = cheetah::Campaign::from_json(config.manifest);
  const std::string name = campaign.name();
  if (name.empty()) throw ValidationError("submit: manifest has no name");
  if (campaign.groups().empty()) {
    throw ValidationError("submit: manifest has no sweep groups");
  }
  const std::string group_name =
      config.group.empty() ? campaign.groups().front().name() : config.group;
  const cheetah::SweepGroup& group = campaign.group(group_name);  // NotFound

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw StateError("service: shutting down");
  if (campaigns_.count(name)) {
    throw StateError("service: campaign '" + name + "' already exists");
  }
  size_t owned = 0;
  for (const auto& [_, existing] : campaigns_) {
    if (existing->owner == session) ++owned;
  }
  if (owned >= options_.max_campaigns_per_session) {
    throw QuotaError("service: session '" + session + "' reached its quota of " +
                     std::to_string(options_.max_campaigns_per_session) +
                     " campaigns");
  }

  auto state = std::make_unique<CampaignState>();
  state->name = name;
  state->group = group_name;
  state->owner = session;
  // Lint-then-create: error findings throw before any directory exists, so
  // a rejected submission leaves no trace on disk. The rule run goes
  // through the shared workspace analyzer — resubmitting an already-vetted
  // manifest is a digest hit, and `fairflow-ctl lint` sees the same cache.
  const std::string manifest_file =
      options_.root + "/" + name + "/.campaign/manifest.json";
  const lint::LintReport preflight =
      analyzer_.lint_manifest_cached(campaign.to_json(), manifest_file);
  if (preflight.has_errors()) {
    throw ValidationError("campaign '" + name +
                          "' failed its preflight lint — nothing was "
                          "created:\n" +
                          preflight.render_text());
  }
  cheetah::CampaignEndpoint::CreateOptions create_options;
  create_options.lint = false;  // the analyzer just did it
  create_options.sparse_above_runs = options_.sparse_endpoint_runs;
  state->endpoint.emplace(
      cheetah::CampaignEndpoint::create(campaign, options_.root, create_options));

  // The batch idiom, verbatim: task per run, durations sampled with the
  // campaign's seed — determinism is what makes service and batch
  // executions byte-identical. The sweep is walked with the lazy iterator:
  // a RunSpec exists only for the loop turn that converts it to a TaskSpec,
  // so a 10^6-run manifest never materializes its RunSpec vector here. The
  // id list is kept only while the journal would inline it; above that the
  // header carries count + streaming digest, and both paths write the same
  // header bytes (ids are never inlined past kInlineRunListMax).
  const size_t total_runs = group.run_count();
  const bool keep_ids = total_runs <= savanna::kInlineRunListMax;
  savanna::RunSetDigest digest;
  std::vector<std::string> run_ids;
  if (keep_ids) run_ids.reserve(total_runs);
  state->tasks.reserve(total_runs);
  group.for_each_run([&](const cheetah::RunSpec& run) {
    digest.add(run.id);
    if (keep_ids) run_ids.push_back(run.id);
    sim::TaskSpec task;
    task.id = run.id;
    state->tasks.push_back(std::move(task));
  });
  {
    Rng rng(config.duration_seed);
    for (sim::TaskSpec& task : state->tasks) {
      task.duration_s = config.durations.sample(rng);
    }
  }

  state->options.backend = config.backend;
  state->options.retry = config.retry;
  state->options.journal = config.journal;
  state->options.execution.nodes =
      config.nodes ? static_cast<int>(*config.nodes) : group.nodes();
  state->options.execution.walltime_s =
      config.walltime_s ? *config.walltime_s : group.walltime_s();

  if (keep_ids) {
    state->journal = savanna::CampaignJournal::create(
        state->endpoint->journal_path(), name, run_ids);
  } else {
    savanna::CampaignJournal::RunSetSummary run_set;
    run_set.count = digest.count();
    run_set.digest = digest.hex();
    state->journal = savanna::CampaignJournal::create(
        state->endpoint->journal_path(), name, run_set);
  }
  write_file_atomic(state->endpoint->directory() + "/.campaign/service.json",
                    config_sidecar(config).pretty() + "\n");

  const size_t runs = state->tasks.size();
  campaigns_.emplace(name, std::move(state));
  obs::trace_instant("service", "service.campaign.submit",
                     {{"campaign", name},
                      {"runs", static_cast<int64_t>(runs)},
                      {"session", session}});
  Json event = Json::object();
  event["event"] = "service.campaign.submit";
  event["campaign"] = name;
  event["runs"] = static_cast<int64_t>(runs);
  event["session"] = session;
  note_locked(std::move(event));
  enqueue_locked(name);
  pump_locked();
  return name;
}

CampaignInfo ServiceCore::info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = campaigns_.find(name);
  if (it == campaigns_.end()) {
    throw NotFoundError("service: no campaign '" + name + "'");
  }
  return it->second->to_info();
}

std::vector<CampaignInfo> ServiceCore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CampaignInfo> infos;
  infos.reserve(campaigns_.size());
  for (const auto& [_, campaign] : campaigns_) {
    infos.push_back(campaign->to_info());
  }
  return infos;  // map order: sorted by campaign name
}

bool ServiceCore::cancel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = campaigns_.find(name);
  if (it == campaigns_.end()) {
    throw NotFoundError("service: no campaign '" + name + "'");
  }
  CampaignState& campaign = *it->second;
  if (campaign.state == "done" || campaign.state == "cancelled" ||
      campaign.state == "failed") {
    return false;
  }
  if (campaign.in_flight) {
    // The in-flight slice finishes its allocation (the journal commit
    // point), then parks the campaign instead of re-queueing it.
    campaign.cancel_requested = true;
    return true;
  }
  for (auto queued = round_robin_.begin(); queued != round_robin_.end();) {
    queued = *queued == name ? round_robin_.erase(queued) : queued + 1;
  }
  set_state_locked(campaign, "cancelled");
  idle_cv_.notify_all();
  return true;
}

void ServiceCore::resume(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw StateError("service: shutting down");
  auto it = campaigns_.find(name);
  if (it != campaigns_.end()) {
    CampaignState& campaign = *it->second;
    if (campaign.state == "queued" || campaign.state == "running") {
      throw StateError("service: campaign '" + name + "' is already scheduled");
    }
    if (campaign.state == "done") {
      throw StateError("service: campaign '" + name + "' already finished");
    }
    campaign.error.clear();
    if (!campaign.journal.is_open()) campaign.use_disk_resume = true;
    set_state_locked(campaign, "queued");
    enqueue_locked(name);
    pump_locked();
    return;
  }

  // Adopt a campaign this process never saw: endpoint + the service.json
  // sidecar rebuild the deterministic task list, and every slice replays
  // the on-disk journal (resume_campaign), continuing exactly where the
  // previous daemon stopped.
  cheetah::CampaignEndpoint endpoint =
      cheetah::CampaignEndpoint::open(options_.root, name);
  const Json sidecar =
      Json::parse_file(endpoint.directory() + "/.campaign/service.json");
  CampaignConfig config;
  config.manifest = endpoint.campaign().to_json();
  config.group = sidecar.get_or("group", "");
  if (sidecar.contains("duration")) apply_duration(config, sidecar["duration"]);
  if (sidecar.contains("execution")) apply_execution(config, sidecar["execution"]);
  if (sidecar.contains("retry")) apply_retry(config, sidecar["retry"]);
  if (sidecar.contains("journal")) apply_journal(config, sidecar["journal"]);

  cheetah::Campaign campaign = cheetah::Campaign::from_json(config.manifest);
  const std::string group_name =
      config.group.empty() ? campaign.groups().front().name() : config.group;
  const cheetah::SweepGroup& group = campaign.group(group_name);

  auto state = std::make_unique<CampaignState>();
  state->name = name;
  state->group = group_name;
  state->owner = "";  // recovered; no live session owns it
  state->endpoint.emplace(std::move(endpoint));
  state->tasks.reserve(group.run_count());
  group.for_each_run([&](const cheetah::RunSpec& run) {
    sim::TaskSpec task;
    task.id = run.id;
    state->tasks.push_back(std::move(task));
  });
  {
    Rng rng(config.duration_seed);
    for (sim::TaskSpec& task : state->tasks) {
      task.duration_s = config.durations.sample(rng);
    }
  }
  state->options.backend = config.backend;
  state->options.retry = config.retry;
  state->options.journal = config.journal;
  state->options.execution.nodes =
      config.nodes ? static_cast<int>(*config.nodes) : group.nodes();
  state->options.execution.walltime_s =
      config.walltime_s ? *config.walltime_s : group.walltime_s();
  state->use_disk_resume = true;
  campaigns_.emplace(name, std::move(state));
  enqueue_locked(name);
  pump_locked();
}

void ServiceCore::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return stopping_ || (slices_in_flight_ == 0 && round_robin_.empty());
  });
}

void ServiceCore::stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_ = true;
  idle_cv_.notify_all();
  idle_cv_.wait(lock, [this] { return slices_in_flight_ == 0; });
}

Json ServiceCore::lint_workspace(const std::string& root, bool werror) {
  std::error_code probe;
  if (!std::filesystem::is_directory(root, probe)) {
    throw NotFoundError("service: no workspace directory '" + root + "'");
  }
  // Same cache file (and tolerant I/O) as the CLI, so daemon and CLI runs
  // warm each other's digest cache.
  const std::string cache_file =
      (std::filesystem::path(root) / ".fairflow-lint-cache.json").string();
  analyzer_.load_cache(cache_file);
  lint::WorkspaceStats stats;
  lint::LintReport report = analyzer_.analyze(root, &stats);
  try {
    analyzer_.save_cache(cache_file);
  } catch (const IoError&) {
    // read-only workspace: findings still flow, just uncached next time
  }
  if (werror) report.promote_warnings();
  report.sort();

  Json diagnostics = Json::array();
  for (const lint::Diagnostic& diagnostic : report.diagnostics()) {
    diagnostics.push_back(diagnostic.to_json());
  }
  Json out = Json::object();
  out["workspace"] = root;
  out["diagnostics"] = std::move(diagnostics);
  out["errors"] =
      static_cast<int64_t>(report.count(lint::Severity::Error));
  out["warnings"] =
      static_cast<int64_t>(report.count(lint::Severity::Warning));
  out["notes"] = static_cast<int64_t>(report.count(lint::Severity::Note));
  out["artifacts"] = static_cast<int64_t>(stats.artifacts);
  out["reparsed"] = static_cast<int64_t>(stats.reparsed);
  out["cached"] = static_cast<int64_t>(stats.cached);
  return out;
}

std::vector<Json> ServiceCore::trace_tail(size_t count) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = std::min(count, events_.size());
  return std::vector<Json>(events_.end() - static_cast<ptrdiff_t>(n),
                           events_.end());
}

void ServiceCore::enqueue_locked(const std::string& name) {
  round_robin_.push_back(name);
}

void ServiceCore::pump_locked() {
  while (!stopping_ && slices_in_flight_ < options_.workers &&
         !round_robin_.empty()) {
    const std::string name = round_robin_.front();
    round_robin_.pop_front();
    auto it = campaigns_.find(name);
    if (it == campaigns_.end() || it->second->in_flight) continue;
    it->second->counts_snapshot = it->second->tracker->counts();
    it->second->in_flight = true;
    ++slices_in_flight_;
    pool_.post([this, name] { run_slice(name); });
  }
}

void ServiceCore::run_slice(const std::string& name) {
  CampaignState* campaign = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    campaign = campaigns_.at(name).get();
    if (campaign->state != "running") set_state_locked(*campaign, "running");
  }

  // One allocation grant. Outside the lock: the slice touches only this
  // campaign's state, and in_flight guarantees exclusivity.
  savanna::CampaignRunOptions slice_options = campaign->options;
  slice_options.max_allocations = 1;
  savanna::CampaignRunResult result;
  std::string failure;
  // Attribute this thread's savanna.* trace events (which carry no campaign
  // arg of their own) to this campaign for subscribe streaming.
  CampaignScope stream_scope(name);
  try {
    if (campaign->use_disk_resume) {
      // Fresh simulation + tracker; replay rebuilds both from the journal
      // (O(live tail) with checkpoints), then one more allocation runs.
      campaign->sim = std::make_unique<sim::Simulation>();
      campaign->tracker = std::make_unique<savanna::RunTracker>();
      savanna::ResumeReport report = savanna::resume_campaign(
          *campaign->sim, campaign->tasks, slice_options, *campaign->tracker,
          campaign->endpoint->journal_path(), name);
      result = std::move(report.result);
    } else {
      result = savanna::run_with_resubmission(*campaign->sim, campaign->tasks,
                                              slice_options, campaign->tracker.get(),
                                              &campaign->journal);
    }
  } catch (const std::exception& error) {
    failure = error.what();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  --slices_in_flight_;
  campaign->in_flight = false;
  if (!failure.empty()) {
    campaign->error = failure;
    set_state_locked(*campaign, "failed");
  } else {
    campaign->allocations += result.allocations_used;
    obs::trace_instant(
        "service", "service.slice",
        {{"campaign", name},
         {"alloc", static_cast<int64_t>(campaign->allocations)}});
    Json event = Json::object();
    event["event"] = "service.slice";
    event["campaign"] = name;
    event["alloc"] = static_cast<int64_t>(campaign->allocations);
    note_locked(std::move(event));

    const auto counts = campaign->tracker->counts();
    const size_t terminal = counts.done + counts.exhausted;
    size_t attempts = 0;
    for (const sim::TaskSpec& task : campaign->tasks) {
      if (campaign->tracker->has_run(task.id)) {
        attempts += campaign->tracker->attempts(task.id);
      }
    }
    const bool terminal_progress = terminal != campaign->last_terminal_runs;
    const bool attempted = attempts != campaign->last_attempts;
    campaign->last_terminal_runs = terminal;
    campaign->last_attempts = attempts;

    if (result.remaining_runs == 0) {
      finalize_locked(*campaign);
    } else if (campaign->cancel_requested) {
      campaign->cancel_requested = false;
      set_state_locked(*campaign, "cancelled");
    } else if (!terminal_progress &&
               (!attempted || campaign->options.retry.max_attempts == 0)) {
      // The batch runner's zero-progress breaks, mirrored across slices:
      // an allocation where nothing ran, or where attempts were made but
      // nothing completed or exhausted with no retry budget to consume,
      // ends the campaign exactly where batch would end it (runs that
      // cannot fit the walltime stay Killed/Pending). Byte-parity with
      // batch depends on stopping after the *same* allocation — and
      // without this an impossible run would be re-granted forever.
      finalize_locked(*campaign);
    } else {
      enqueue_locked(name);
    }
  }
  pump_locked();
  idle_cv_.notify_all();
}

void ServiceCore::finalize_locked(CampaignState& campaign) {
  // Write execution results back into the endpoint — the batch epilogue.
  for (const sim::TaskSpec& task : campaign.tasks) {
    if (!campaign.tracker->has_run(task.id)) continue;  // stays Pending
    const std::string state = campaign.tracker->status(task.id).state;
    cheetah::RunState mark = cheetah::RunState::Killed;
    if (state == "done") {
      mark = cheetah::RunState::Done;
    } else if (state == "failed" || state == "exhausted") {
      mark = cheetah::RunState::Failed;
    }
    campaign.endpoint->mark(task.id, mark);
  }
  campaign.endpoint->save();
  if (campaign.journal.is_open()) {
    try {
      campaign.journal.close();  // the last durability point — may throw
    } catch (const std::exception& error) {
      campaign.error = std::string("journal close failed: ") + error.what();
      set_state_locked(campaign, "failed");
      return;
    }
  }
  set_state_locked(campaign, "done");
}

void ServiceCore::set_state_locked(CampaignState& campaign,
                                   const std::string& state) {
  campaign.state = state;
  obs::trace_instant("service", "service.campaign.state",
                     {{"campaign", campaign.name}, {"state", state}});
  Json event = Json::object();
  event["event"] = "service.campaign.state";
  event["campaign"] = campaign.name;
  event["state"] = state;
  note_locked(std::move(event));
}

void ServiceCore::note_event(Json event) {
  std::lock_guard<std::mutex> lock(mutex_);
  note_locked(std::move(event));
}

void ServiceCore::note_locked(Json event) {
  events_.push_back(std::move(event));
  while (events_.size() > options_.trace_tail) events_.pop_front();
}

}  // namespace ff::service
