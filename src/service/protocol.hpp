#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ff::service {

/// Wire protocol version carried in "hello" replies. Bump when a command's
/// shape changes incompatibly; clients refuse a mismatched server.
inline constexpr int64_t kProtocolVersion = 1;

/// Upper bound on one newline-delimited frame (request or reply). A client
/// streaming an endless line would otherwise grow the server's read buffer
/// without bound; past this the server replies `frame-too-large` and drops
/// the connection.
inline constexpr size_t kMaxFrameBytes = 8 * 1024 * 1024;

/// fairflowd speaks newline-delimited JSON over a Unix or TCP socket: one
/// request object per line, one reply object per line, in order. Requests
/// are {"id": <int>, "cmd": "<name>", ...fields}; replies echo the id and
/// carry {"ok": true, ...} or {"ok": false, "error": {"code", "message"}}.
/// The normative spec lives in docs/service_protocol.md, kept in sync with
/// service_command_registry() by tests/service/service_doc_test — the same
/// doc-sync discipline as the journal format and the lint catalog.

/// One field a command recognizes. `type` is a small vocabulary understood
/// by json_matches_type(): "string", "int", "number", "bool", "object".
struct FieldInfo {
  std::string_view name;
  std::string_view type;
  bool required = false;
};

/// One entry of the command registry: the single source of truth for which
/// "cmd" values exist on the wire. The FF5xx lint rules validate request
/// documents against exactly this table.
struct CommandInfo {
  std::string_view cmd;
  std::string_view summary;
  std::vector<FieldInfo> fields;  // recognized fields besides "id" and "cmd"
};

const std::vector<CommandInfo>& service_command_registry();
const CommandInfo* find_service_command(std::string_view cmd);

/// Error codes a reply's error.code may carry (documented alongside the
/// commands; doc-synced the same way).
struct ServiceErrorInfo {
  std::string_view code;
  std::string_view summary;
};
const std::vector<ServiceErrorInfo>& service_error_registry();
const ServiceErrorInfo* find_service_error(std::string_view code);

/// Does `value` satisfy the registry's type vocabulary? "number" accepts
/// ints and doubles; "int" only ints.
bool json_matches_type(const Json& value, std::string_view type);

// ---------------------------------------------------------------------- //
// Framing
// ---------------------------------------------------------------------- //

/// Serialize one message as a frame: compact JSON plus the terminating
/// newline (the frame delimiter — dump() never emits raw newlines).
std::string encode_frame(const Json& message);

/// Parse one frame (a single line, delimiter excluded). Throws ParseError
/// on malformed JSON and ValidationError when the frame is not an object.
Json decode_frame(std::string_view line);

/// The request's "id" (0 when absent or not an integer) — echoed into every
/// reply so clients can pipeline requests.
int64_t request_id(const Json& request);

// ---------------------------------------------------------------------- //
// Replies
// ---------------------------------------------------------------------- //

/// {"id": id, "ok": true} — callers add result fields to the returned object.
Json ok_reply(int64_t id);

/// {"id": id, "ok": false, "error": {"code": code, "message": message}}.
/// `code` must be registered in service_error_registry().
Json error_reply(int64_t id, std::string_view code, const std::string& message);

/// Shape-check a request against the registry: object, known "cmd",
/// required fields present, recognized fields well-typed. Returns an empty
/// string when well-formed, else a human-readable problem (the server wraps
/// it in a bad-request / unknown-command reply). Unrecognized extra fields
/// are tolerated here — fairflow-lint flags them as FF505 — so the wire
/// stays forward-compatible.
std::string check_request(const Json& request);

}  // namespace ff::service
