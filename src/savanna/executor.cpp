#include "savanna/executor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::savanna {

namespace {

void validate(const ExecutionOptions& options) {
  if (options.nodes <= 0) throw Error("executor: nodes must be positive");
  if (options.walltime_s <= 0) throw Error("executor: walltime must be positive");
  if (options.startup_cost_s < 0) throw Error("executor: negative startup cost");
  if (options.set_size < 0) throw Error("executor: negative set size");
}

/// Shared bookkeeping for both runners.
struct Recorder {
  explicit Recorder(const ExecutionOptions& options) : options(options) {
    report.node_timeline.resize(static_cast<size_t>(options.nodes));
  }

  /// Record a run occupying `node` over [start, end_nominal), clipped at
  /// walltime. Returns true if the run finished before the walltime.
  bool record(int node, double start, double end_nominal, const std::string& id) {
    const double end = std::min(end_nominal, options.walltime_s);
    report.node_timeline[static_cast<size_t>(node)].push_back(
        Interval{start, end, id});
    report.busy_node_seconds += end - start;
    report.makespan_s = std::max(report.makespan_s, end);
    return end_nominal <= options.walltime_s;
  }

  void finalize() {
    const double horizon = std::isfinite(options.walltime_s)
                               ? std::min(report.makespan_s, options.walltime_s)
                               : report.makespan_s;
    report.allocation_node_seconds = horizon * options.nodes;
  }

  const ExecutionOptions& options;
  ExecutionReport report;
};

}  // namespace

ExecutionReport run_set_synchronized(sim::Simulation& sim,
                                     const std::vector<sim::TaskSpec>& tasks,
                                     const ExecutionOptions& options) {
  validate(options);
  const int set_size =
      options.set_size > 0 ? std::min(options.set_size, options.nodes)
                           : options.nodes;
  Recorder recorder(options);

  const double t0 = sim.now();
  double set_start = t0;
  size_t next = 0;
  while (next < tasks.size()) {
    if (set_start - t0 >= options.walltime_s) break;  // allocation exhausted
    const size_t set_end_index = std::min(next + static_cast<size_t>(set_size),
                                          tasks.size());
    double barrier = set_start;
    for (size_t i = next; i < set_end_index; ++i) {
      const sim::TaskSpec& task = tasks[i];
      const int node = static_cast<int>(i - next);
      const double start = set_start;
      const double end = start + options.startup_cost_s + task.duration_s;
      const bool fits =
          recorder.record(node, start - t0, end - t0, task.id);
      const bool failed = options.fails && options.fails(task, node);
      if (!fits) {
        recorder.report.killed.push_back(task.id);
      } else if (failed) {
        recorder.report.failed.push_back(task.id);
      } else {
        recorder.report.completed.push_back(task.id);
      }
      barrier = std::max(barrier, std::min(end, t0 + options.walltime_s));
    }
    // The explicit end-of-set synchronization: the whole set waits for its
    // slowest member before the next set is launched.
    next = set_end_index;
    set_start = barrier;
  }
  for (size_t i = next; i < tasks.size(); ++i) {
    recorder.report.not_started.push_back(tasks[i].id);
  }
  // Advance virtual time to the end of the allocation's activity.
  sim.run_until(t0 + recorder.report.makespan_s);
  recorder.finalize();
  return recorder.report;
}

ExecutionReport run_pilot(sim::Simulation& sim,
                          const std::vector<sim::TaskSpec>& tasks,
                          const ExecutionOptions& options) {
  validate(options);
  Recorder recorder(options);
  const double t0 = sim.now();

  // Event-driven greedy list scheduling: every node pulls the next pending
  // task the moment it frees.
  size_t next = 0;
  size_t in_flight = 0;

  std::function<void(int)> assign = [&](int node) {
    if (next >= tasks.size()) return;
    if (sim.now() - t0 >= options.walltime_s) return;  // cannot launch anymore
    const sim::TaskSpec& task = tasks[next++];
    ++in_flight;
    const double start = sim.now();
    const double end = start + options.startup_cost_s + task.duration_s;
    const bool fits = recorder.record(node, start - t0, end - t0, task.id);
    const bool failed = options.fails && options.fails(task, node);
    if (!fits) {
      recorder.report.killed.push_back(task.id);
      // Node is lost to the walltime; no completion event needed.
      --in_flight;
      return;
    }
    sim.schedule_at(end, [&, node, failed, id = task.id] {
      if (failed) {
        recorder.report.failed.push_back(id);
      } else {
        recorder.report.completed.push_back(id);
      }
      --in_flight;
      assign(node);
    });
  };

  for (int node = 0; node < options.nodes && next < tasks.size(); ++node) {
    assign(node);
  }
  sim.run();
  (void)in_flight;

  for (size_t i = next; i < tasks.size(); ++i) {
    recorder.report.not_started.push_back(tasks[i].id);
  }
  recorder.finalize();
  return recorder.report;
}

std::string ExecutionReport::render_timeline(size_t columns) const {
  if (columns == 0 || makespan_s <= 0) return "";
  std::string out;
  const double bucket = makespan_s / static_cast<double>(columns);
  for (size_t node = 0; node < node_timeline.size(); ++node) {
    out += "node " + pad_left(std::to_string(node), 3) + " |";
    std::string row(columns, '.');
    for (const Interval& interval : node_timeline[node]) {
      const auto first = static_cast<size_t>(interval.start / bucket);
      auto last = static_cast<size_t>(std::ceil(interval.end / bucket));
      last = std::min(last, columns);
      for (size_t c = first; c < last; ++c) row[c] = '#';
    }
    out += row + "|\n";
  }
  return out;
}

}  // namespace ff::savanna
