#include "savanna/executor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::savanna {

namespace {

void validate(const ExecutionOptions& options) {
  if (options.nodes <= 0) throw Error("executor: nodes must be positive");
  if (options.walltime_s <= 0) throw Error("executor: walltime must be positive");
  if (options.startup_cost_s < 0) throw Error("executor: negative startup cost");
  if (options.set_size < 0) throw Error("executor: negative set size");
}

/// Shared bookkeeping for both runners. Times passed to record() are
/// *absolute* virtual times (so emitted trace events order correctly across
/// re-submitted allocations); intervals are stored relative to t0 as before.
struct Recorder {
  Recorder(const ExecutionOptions& options, double t0, const char* backend)
      : options(options), t0(t0), backend(backend) {
    report.node_timeline.resize(static_cast<size_t>(options.nodes));
    obs::trace_instant_at(t0, "savanna", "savanna.allocation.begin",
                          {{"backend", backend}, {"nodes", options.nodes}});
  }

  /// Record a run occupying `node` over absolute [start, end_nominal),
  /// clipped at walltime, emitting savanna.job.start/end trace events.
  /// Returns true if the run finished before the walltime.
  bool record(int node, double start, double end_nominal,
              const std::string& id, bool failed) {
    const double end = std::min(end_nominal, t0 + options.walltime_s);
    report.node_timeline[static_cast<size_t>(node)].push_back(
        Interval{start - t0, end - t0, id});
    report.busy_node_seconds += end - start;
    report.makespan_s = std::max(report.makespan_s, end - t0);
    const bool fits = end_nominal <= t0 + options.walltime_s;
    if (obs::tracing_enabled()) {
      obs::trace_instant_at(start, "savanna", "savanna.job.start",
                            {{"run", id}, {"node", node}});
      obs::trace_instant_at(
          end, "savanna", "savanna.job.end",
          {{"run", id},
           {"node", node},
           {"outcome", !fits ? "killed" : (failed ? "failed" : "done")}});
    }
    return fits;
  }

  void finalize() {
    const double horizon = std::isfinite(options.walltime_s)
                               ? std::min(report.makespan_s, options.walltime_s)
                               : report.makespan_s;
    report.allocation_node_seconds = horizon * options.nodes;
    if (obs::tracing_enabled()) {
      obs::trace_instant_at(t0 + report.makespan_s, "savanna",
                            "savanna.allocation.end",
                            {{"backend", backend},
                             {"completed", report.completed.size()},
                             {"failed", report.failed.size()},
                             {"killed", report.killed.size()}});
    }
  }

  const ExecutionOptions& options;
  const double t0;
  const char* backend;
  ExecutionReport report;
};

}  // namespace

ExecutionReport run_set_synchronized(sim::Simulation& sim,
                                     const std::vector<sim::TaskSpec>& tasks,
                                     const ExecutionOptions& options) {
  validate(options);
  const int set_size =
      options.set_size > 0 ? std::min(options.set_size, options.nodes)
                           : options.nodes;
  const double t0 = sim.now();
  Recorder recorder(options, t0, "set");
  double set_start = t0;
  size_t next = 0;
  while (next < tasks.size()) {
    if (set_start - t0 >= options.walltime_s) break;  // allocation exhausted
    const size_t set_end_index = std::min(next + static_cast<size_t>(set_size),
                                          tasks.size());
    double barrier = set_start;
    for (size_t i = next; i < set_end_index; ++i) {
      const sim::TaskSpec& task = tasks[i];
      const int node = static_cast<int>(i - next);
      const double start = set_start;
      const double end = start + options.startup_cost_s + task.duration_s;
      const bool failed = options.fails && options.fails(task, node);
      const bool fits = recorder.record(node, start, end, task.id, failed);
      if (!fits) {
        recorder.report.killed.push_back(task.id);
      } else if (failed) {
        recorder.report.failed.push_back(task.id);
      } else {
        recorder.report.completed.push_back(task.id);
      }
      barrier = std::max(barrier, std::min(end, t0 + options.walltime_s));
    }
    // The explicit end-of-set synchronization: the whole set waits for its
    // slowest member before the next set is launched.
    next = set_end_index;
    set_start = barrier;
  }
  for (size_t i = next; i < tasks.size(); ++i) {
    recorder.report.not_started.push_back(tasks[i].id);
  }
  // Advance virtual time to the end of the allocation's activity.
  sim.run_until(t0 + recorder.report.makespan_s);
  recorder.finalize();
  return recorder.report;
}

ExecutionReport run_pilot(sim::Simulation& sim,
                          const std::vector<sim::TaskSpec>& tasks,
                          const ExecutionOptions& options) {
  validate(options);
  const double t0 = sim.now();
  Recorder recorder(options, t0, "pilot");

  // Event-driven greedy list scheduling: every node pulls the next pending
  // task the moment it frees.
  size_t next = 0;
  size_t in_flight = 0;

  std::function<void(int)> assign = [&](int node) {
    if (next >= tasks.size()) return;
    if (sim.now() - t0 >= options.walltime_s) return;  // cannot launch anymore
    const sim::TaskSpec& task = tasks[next++];
    ++in_flight;
    const double start = sim.now();
    const double end = start + options.startup_cost_s + task.duration_s;
    const bool failed = options.fails && options.fails(task, node);
    const bool fits = recorder.record(node, start, end, task.id, failed);
    if (!fits) {
      recorder.report.killed.push_back(task.id);
      // Node is lost to the walltime; no completion event needed.
      --in_flight;
      return;
    }
    sim.schedule_at(end, [&, node, failed, id = task.id] {
      if (failed) {
        recorder.report.failed.push_back(id);
      } else {
        recorder.report.completed.push_back(id);
      }
      --in_flight;
      assign(node);
    });
  };

  for (int node = 0; node < options.nodes && next < tasks.size(); ++node) {
    assign(node);
  }
  sim.run();
  (void)in_flight;

  for (size_t i = next; i < tasks.size(); ++i) {
    recorder.report.not_started.push_back(tasks[i].id);
  }
  recorder.finalize();
  return recorder.report;
}

}  // namespace ff::savanna
