#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ff::savanna {

/// Structured per-run provenance: every state transition with its virtual
/// timestamp and attempt number. This is the ComponentRecords tier of the
/// Provenance gauge made concrete — and what frees researchers from
/// "manually curating a list of failed runs" (paper Section II-B).
class RunTracker {
 public:
  /// Register a run (attempt counter starts at 0).
  void add_run(const std::string& run_id);
  bool has_run(const std::string& run_id) const noexcept;

  void mark_started(const std::string& run_id, double time, int node);
  void mark_done(const std::string& run_id, double time);
  void mark_failed(const std::string& run_id, double time, const std::string& reason);
  void mark_killed(const std::string& run_id, double time);
  /// Terminal give-up: the run's retry budget is spent. Only legal from
  /// `failed` or `killed`; an exhausted run is never re-submitted.
  void mark_exhausted(const std::string& run_id, double time,
                      const std::string& reason);

  /// Runs whose latest attempt did not finish (never started, failed, or
  /// killed) — exactly the set a re-submission must execute. Excludes
  /// `done` and the terminal `exhausted` state.
  std::vector<std::string> needing_rerun() const;

  size_t attempts(const std::string& run_id) const;

  /// Snapshot of one run's current position in the lifecycle — what the
  /// retry/backoff scheduler needs to decide eligibility after a resume.
  struct RunStatus {
    std::string state;      // pending|running|done|failed|killed|exhausted
    size_t attempts = 0;
    double last_time = 0;   // time of the latest event (0 if none)
  };
  RunStatus status(const std::string& run_id) const;

  struct Counts {
    size_t total = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t killed = 0;
    size_t exhausted = 0;
    size_t never_started = 0;
  };
  Counts counts() const;

  /// Full provenance export (one record per run with its event list).
  Json to_json() const;
  static RunTracker from_json(const Json& json);

 private:
  struct EventRecord {
    std::string kind;  // "start", "done", "failed", "killed", "exhausted"
    double time = 0;
    int node = -1;
    std::string detail;
  };
  struct RunRecord {
    std::vector<EventRecord> events;
    // pending|running|done|failed|killed|exhausted
    std::string last_state = "pending";
    size_t attempts = 0;
  };

  RunRecord& require(const std::string& run_id);
  const RunRecord& require(const std::string& run_id) const;

  std::map<std::string, RunRecord> runs_;
};

}  // namespace ff::savanna
