#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ff::savanna {

/// Structured per-run provenance: every state transition with its virtual
/// timestamp and attempt number. This is the ComponentRecords tier of the
/// Provenance gauge made concrete — and what frees researchers from
/// "manually curating a list of failed runs" (paper Section II-B).
class RunTracker {
 public:
  /// Register a run (attempt counter starts at 0).
  void add_run(const std::string& run_id);
  bool has_run(const std::string& run_id) const noexcept;

  void mark_started(const std::string& run_id, double time, int node);
  void mark_done(const std::string& run_id, double time);
  void mark_failed(const std::string& run_id, double time, const std::string& reason);
  void mark_killed(const std::string& run_id, double time);

  /// Runs whose latest attempt did not finish (never started, failed, or
  /// killed) — exactly the set a re-submission must execute.
  std::vector<std::string> needing_rerun() const;

  size_t attempts(const std::string& run_id) const;

  struct Counts {
    size_t total = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t killed = 0;
    size_t never_started = 0;
  };
  Counts counts() const;

  /// Full provenance export (one record per run with its event list).
  Json to_json() const;
  static RunTracker from_json(const Json& json);

 private:
  struct EventRecord {
    std::string kind;  // "start", "done", "failed", "killed"
    double time = 0;
    int node = -1;
    std::string detail;
  };
  struct RunRecord {
    std::vector<EventRecord> events;
    std::string last_state = "pending";  // pending|running|done|failed|killed
    size_t attempts = 0;
  };

  RunRecord& require(const std::string& run_id);
  const RunRecord& require(const std::string& run_id) const;

  std::map<std::string, RunRecord> runs_;
};

}  // namespace ff::savanna
