#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"

namespace ff::savanna {

/// Structured per-run provenance: every state transition with its virtual
/// timestamp and attempt number. This is the ComponentRecords tier of the
/// Provenance gauge made concrete — and what frees researchers from
/// "manually curating a list of failed runs" (paper Section II-B).
///
/// State is sharded into a fixed array of hash buckets so the hot
/// operations stay flat as campaigns grow to 10^6 runs: a status update is
/// one hash-map touch, counts() reads incrementally maintained aggregates
/// in O(1), and the terminal-state sweep behind needing_rerun() skips every
/// shard whose live-run counter has reached zero instead of scanning all
/// history. Exported provenance (to_json) is sorted by run id, so it stays
/// byte-identical to the old ordered-map implementation.
class RunTracker {
 public:
  static constexpr size_t kDefaultShardCount = 64;

  explicit RunTracker(size_t shard_count = kDefaultShardCount);

  /// Register a run (attempt counter starts at 0).
  void add_run(const std::string& run_id);
  bool has_run(const std::string& run_id) const noexcept;

  void mark_started(const std::string& run_id, double time, int node);
  void mark_done(const std::string& run_id, double time);
  void mark_failed(const std::string& run_id, double time, const std::string& reason);
  void mark_killed(const std::string& run_id, double time);
  /// Terminal give-up: the run's retry budget is spent. Only legal from
  /// `failed` or `killed`; an exhausted run is never re-submitted.
  void mark_exhausted(const std::string& run_id, double time,
                      const std::string& reason);

  /// Runs whose latest attempt did not finish (never started, failed, or
  /// killed) — exactly the set a re-submission must execute. Excludes
  /// `done` and the terminal `exhausted` state. Sorted by run id.
  std::vector<std::string> needing_rerun() const;

  /// Runs not yet in a terminal state (`done`/`exhausted`) — O(1).
  size_t live_runs() const noexcept { return live_; }

  size_t attempts(const std::string& run_id) const;

  /// Snapshot of one run's current position in the lifecycle — what the
  /// retry/backoff scheduler needs to decide eligibility after a resume.
  struct RunStatus {
    std::string state;      // pending|running|done|failed|killed|exhausted
    size_t attempts = 0;
    double last_time = 0;   // time of the latest event (0 if none)
  };
  RunStatus status(const std::string& run_id) const;

  struct Counts {
    size_t total = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t killed = 0;
    size_t exhausted = 0;
    size_t never_started = 0;
  };
  /// O(1): aggregates are maintained incrementally by the mark_* calls.
  Counts counts() const { return counts_; }

  /// Full provenance export (one record per run with its event list),
  /// sorted by run id.
  Json to_json() const;
  /// Sparse export: only runs with at least one recorded event. This is the
  /// journal checkpoint payload — pending runs carry no state a resume
  /// could not recreate from the manifest, so a checkpoint's size tracks
  /// the started population, not the sweep size.
  Json to_json_started() const;
  /// Load records (the to_json/to_json_started shape) into this tracker.
  /// Throws ValidationError on a run id already present.
  void restore(const Json& records);
  static RunTracker from_json(const Json& json);

 private:
  struct EventRecord {
    std::string kind;  // "start", "done", "failed", "killed", "exhausted"
    double time = 0;
    int node = -1;
    std::string detail;
  };
  struct RunRecord {
    std::vector<EventRecord> events;
    // pending|running|done|failed|killed|exhausted
    std::string last_state = "pending";
    size_t attempts = 0;
  };
  struct Shard {
    std::unordered_map<std::string, RunRecord> runs;
    size_t live = 0;  // runs in this shard not yet done/exhausted
  };

  size_t shard_of(const std::string& run_id) const noexcept;
  RunRecord& require(const std::string& run_id);
  const RunRecord& require(const std::string& run_id) const;
  /// Counter bookkeeping shared by the terminal transitions.
  void on_terminal(const std::string& run_id);
  static Json record_to_json(const RunRecord& run);

  std::vector<Shard> shards_;
  Counts counts_;
  size_t live_ = 0;
};

}  // namespace ff::savanna
