#pragma once

#include <optional>

#include "savanna/executor.hpp"
#include "savanna/journal.hpp"
#include "savanna/tracker.hpp"

namespace ff::savanna {

/// Which executor backend drives the allocation. The paper's comparison in
/// Figs. 6–7 is exactly SetSynchronized (original workflow) vs Pilot
/// (Cheetah-Savanna).
enum class Backend { SetSynchronized, Pilot };

/// Per-run retry budget with exponential backoff — what replaces the old
/// retry-forever loop. A run that fails or is killed at walltime is retried
/// until `max_attempts`, then marked terminally `exhausted`; between
/// attempts it is held back for backoff(n) = min(max_backoff_s,
/// base_backoff_s * growth^(n-1)) virtual seconds after its n-th failure.
struct RetryPolicy {
  /// Attempts allowed per run; 0 = unlimited (the legacy behaviour).
  size_t max_attempts = 0;
  /// Backoff after the first failure; 0 disables backoff entirely.
  double base_backoff_s = 0;
  double growth = 2.0;
  double max_backoff_s = 3600;

  double backoff_after(size_t failures) const {
    if (base_backoff_s <= 0 || failures == 0) return 0;
    double delay = base_backoff_s;
    for (size_t i = 1; i < failures && delay < max_backoff_s; ++i) {
      delay *= growth;
    }
    return std::min(delay, max_backoff_s);
  }
};

/// Journal durability/scale policy (see docs/journal_format.md for the
/// on-disk format and docs/scaling.md for how to pick these at 10^5+ runs).
/// The defaults reproduce the conservative PR-3 behaviour: fsync every
/// record, never checkpoint, never compact.
struct JournalPolicy {
  /// Append a checkpoint record summarizing live-run state every N
  /// committed allocations; 0 disables checkpointing. With checkpoints,
  /// resume replays O(live tail) records instead of the whole history.
  size_t checkpoint_every = 0;
  /// Compact the journal right after every checkpoint (and once at resume
  /// open), folding the summarized alloc history into the checkpoint. Keeps
  /// the journal file O(live state) instead of O(campaign history).
  bool compact_after_checkpoint = false;
  /// Group commit: batch up to this many allocation records into one
  /// write+fsync. 1 (default) fsyncs every record; a crash can lose at most
  /// the unflushed batch, which resume then re-executes.
  size_t group_commit = 1;
};

struct CampaignRunOptions {
  ExecutionOptions execution;
  Backend backend = Backend::Pilot;
  /// Max allocations (re-submissions) to attempt; 0 = until done.
  size_t max_allocations = 0;
  RetryPolicy retry;
  JournalPolicy journal;
  /// resume_campaign() lints the journal before replaying it (schema
  /// drift, corrupt interior lines, a second header, ...) and throws
  /// ValidationError listing every finding instead of failing midway
  /// through replay on the first one. Torn tails stay notes — resume
  /// handles those. Set false to skip straight to replay.
  bool preflight_lint = true;
};

struct CampaignRunResult {
  size_t allocations_used = 0;
  size_t completed_runs = 0;
  size_t remaining_runs = 0;  // incomplete and still retryable
  /// Runs whose retry budget was spent — terminal, never re-submitted.
  std::vector<std::string> exhausted;
  double total_node_seconds = 0;  // across all allocations
  double total_busy_node_seconds = 0;
  std::vector<ExecutionReport> reports;  // one per allocation

  double utilization() const {
    return total_node_seconds > 0 ? total_busy_node_seconds / total_node_seconds
                                  : 0.0;
  }
};

/// Record one allocation's provenance in `tracker`: a start per recorded
/// interval, then the terminal mark for every completed/failed/killed run.
/// A run reported failed or killed *without* a recorded interval (so no
/// per-run end time exists) falls back to the allocation end time,
/// `allocation_start + report.makespan_s`, instead of crashing.
void apply_report_to_tracker(RunTracker& tracker, const ExecutionReport& report,
                             double allocation_start);

/// Execute a task ensemble with re-submission semantics: each allocation
/// runs whatever is still incomplete; "the SweepGroup is simply
/// re-submitted, and Savanna resumes execution of the experiments". The
/// optional tracker receives full provenance. Virtual time accumulates in
/// `sim` across allocations (queue wait is not modelled here; see
/// sim::BatchSystem for that).
///
/// With a journal, every allocation is committed (append + fsync) after it
/// is applied to the tracker, making the campaign crash-consistent: kill
/// the process at any instant and resume_campaign() continues from the
/// last committed allocation. Runs already tracked in `tracker` (the
/// resume path) keep their attempt counts and backoff eligibility.
CampaignRunResult run_with_resubmission(sim::Simulation& sim,
                                        const std::vector<sim::TaskSpec>& tasks,
                                        const CampaignRunOptions& options,
                                        RunTracker* tracker = nullptr,
                                        CampaignJournal* journal = nullptr);

/// What resume_campaign recovered before re-entering the runner.
struct ResumeReport {
  size_t allocations_replayed = 0;  // alloc records replayed (checkpoint tail)
  size_t checkpoint_runs = 0;       // runs restored from a checkpoint record
  bool torn_tail = false;          // a torn final journal line was dropped
  size_t incomplete = 0;           // runs handed back to the runner
  double resumed_at_s = 0;         // virtual clock restored to this time
  CampaignRunResult result;        // the re-entered runner's result
};

/// Crash-consistent campaign resumption: replay the journal at
/// `journal_path`, reconcile it against the campaign's task list (from the
/// manifest), rebuild `tracker`, restore the virtual clock, and re-enter
/// run_with_resubmission with only the incomplete runs. The combined
/// provenance in `tracker` is byte-identical to an uninterrupted run
/// (enforced by tests/savanna/crash_resume_test).
///
/// A missing or headerless journal means the campaign never started: the
/// journal is (re)created and every run executes. A journal referencing
/// runs absent from `manifest_tasks` throws ValidationError — the journal
/// and manifest belong to different campaigns.
ResumeReport resume_campaign(sim::Simulation& sim,
                             const std::vector<sim::TaskSpec>& manifest_tasks,
                             const CampaignRunOptions& options,
                             RunTracker& tracker,
                             const std::string& journal_path,
                             const std::string& campaign_name = "campaign");

}  // namespace ff::savanna
