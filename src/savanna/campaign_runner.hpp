#pragma once

#include <optional>

#include "savanna/executor.hpp"
#include "savanna/tracker.hpp"

namespace ff::savanna {

/// Which executor backend drives the allocation. The paper's comparison in
/// Figs. 6–7 is exactly SetSynchronized (original workflow) vs Pilot
/// (Cheetah-Savanna).
enum class Backend { SetSynchronized, Pilot };

struct CampaignRunOptions {
  ExecutionOptions execution;
  Backend backend = Backend::Pilot;
  /// Max allocations (re-submissions) to attempt; 0 = until done.
  size_t max_allocations = 0;
};

struct CampaignRunResult {
  size_t allocations_used = 0;
  size_t completed_runs = 0;
  size_t remaining_runs = 0;
  double total_node_seconds = 0;  // across all allocations
  double total_busy_node_seconds = 0;
  std::vector<ExecutionReport> reports;  // one per allocation

  double utilization() const {
    return total_node_seconds > 0 ? total_busy_node_seconds / total_node_seconds
                                  : 0.0;
  }
};

/// Execute a task ensemble with re-submission semantics: each allocation
/// runs whatever is still incomplete; "the SweepGroup is simply
/// re-submitted, and Savanna resumes execution of the experiments". The
/// optional tracker receives full provenance. Virtual time accumulates in
/// `sim` across allocations (queue wait is not modelled here; see
/// sim::BatchSystem for that).
CampaignRunResult run_with_resubmission(sim::Simulation& sim,
                                        const std::vector<sim::TaskSpec>& tasks,
                                        const CampaignRunOptions& options,
                                        RunTracker* tracker = nullptr);

}  // namespace ff::savanna
