#pragma once

#include "cluster/batch.hpp"
#include "savanna/campaign_runner.hpp"

namespace ff::savanna {

/// End-to-end execution through the batch system: each (re-)submission is
/// a real batch job that waits in the queue before its allocation starts.
/// This is the full user experience the paper's baseline suffers — queue
/// wait × number of submissions — and what Savanna amortizes by finishing
/// more work per allocation.
struct BatchCampaignReport {
  CampaignRunResult inner;        // per-allocation execution results
  double total_wall_s = 0;        // submit of first job -> last completion
  double total_queue_wait_s = 0;  // sum of per-job queue waits
  size_t jobs_submitted = 0;
};

/// Run `tasks` to completion (or until `options.max_allocations`) on
/// `batch`, re-submitting the remainder after each allocation ends.
/// The executor runs in an inner virtual clock whose elapsed time is
/// charged to the outer simulation, so queue waits and compute interleave
/// correctly on one timeline.
BatchCampaignReport run_campaign_through_batch(sim::Simulation& sim,
                                               sim::BatchSystem& batch,
                                               const std::vector<sim::TaskSpec>& tasks,
                                               const CampaignRunOptions& options,
                                               RunTracker* tracker = nullptr);

}  // namespace ff::savanna
