#include "savanna/provenance.hpp"

namespace ff::savanna {

ExportPolicy public_release_policy() {
  ExportPolicy policy;
  policy.include_timestamps = false;
  policy.include_nodes = false;
  policy.include_failure_details = false;
  policy.include_never_started = false;
  return policy;
}

ExportPolicy same_site_policy() {
  ExportPolicy policy;
  policy.include_timestamps = true;
  policy.include_nodes = true;
  policy.include_failure_details = true;
  policy.include_never_started = true;
  return policy;
}

Json export_provenance(const RunTracker& tracker, const ExportPolicy& policy) {
  const Json full = tracker.to_json();
  Json out = Json::object();
  for (const auto& [run_id, record] : full.as_object()) {
    const std::string state = record["state"].as_string();
    if (!policy.include_never_started && state == "pending") continue;
    Json exported = Json::object();
    exported["state"] = state;
    exported["attempts"] = record["attempts"];
    Json events = Json::array();
    for (const Json& event : record["events"].as_array()) {
      Json filtered = Json::object();
      filtered["kind"] = event["kind"];
      if (policy.include_timestamps) filtered["time"] = event["time"];
      if (policy.include_nodes && event.contains("node")) {
        filtered["node"] = event["node"];
      }
      if (policy.include_failure_details && event.contains("detail")) {
        filtered["detail"] = event["detail"];
      }
      events.push_back(std::move(filtered));
    }
    exported["events"] = std::move(events);
    out[run_id] = std::move(exported);
  }
  return out;
}

}  // namespace ff::savanna
