#include "savanna/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::savanna {

namespace {

const obs::Arg* find_arg(const obs::TraceEvent& event, const char* key) {
  for (size_t i = 0; i < event.arg_count; ++i) {
    if (std::strcmp(event.args[i].key, key) == 0) return &event.args[i];
  }
  return nullptr;
}

}  // namespace

TraceTimeline timeline_from_trace(const std::vector<obs::TraceEvent>& events,
                                  double origin_s) {
  TraceTimeline timeline;
  struct Open {
    double start = 0;
    int node = -1;
  };
  // A run id can recur across allocations (retries), but never overlaps
  // itself, so one open slot per id suffices.
  std::map<std::string, Open> open;

  for (const obs::TraceEvent& event : events) {
    if (std::strcmp(event.category, "savanna") != 0) continue;
    const bool is_start = std::strcmp(event.name, "savanna.job.start") == 0;
    const bool is_end = std::strcmp(event.name, "savanna.job.end") == 0;
    if (!is_start && !is_end) continue;
    const obs::Arg* run = find_arg(event, "run");
    const obs::Arg* node = find_arg(event, "node");
    if (!run || !node || run->type != obs::Arg::Type::Str ||
        node->type != obs::Arg::Type::Int) {
      throw ValidationError("timeline_from_trace: malformed savanna.job event");
    }
    if (is_start) {
      ++timeline.started;
      open[run->str_value] =
          Open{event.ts_s - origin_s, static_cast<int>(node->int_value)};
      continue;
    }
    auto it = open.find(run->str_value);
    if (it == open.end()) {
      throw ValidationError("timeline_from_trace: end without start for run '" +
                            run->str_value + "'");
    }
    const Open started = it->second;
    open.erase(it);
    const double end = event.ts_s - origin_s;
    const size_t node_index = static_cast<size_t>(started.node);
    if (timeline.node_timeline.size() <= node_index) {
      timeline.node_timeline.resize(node_index + 1);
    }
    timeline.node_timeline[node_index].push_back(
        Interval{started.start, end, run->str_value});
    timeline.busy_node_seconds += end - started.start;
    timeline.makespan_s = std::max(timeline.makespan_s, end);
    if (const obs::Arg* outcome = find_arg(event, "outcome")) {
      if (outcome->str_value == "done") ++timeline.done;
      else if (outcome->str_value == "failed") ++timeline.failed;
      else if (outcome->str_value == "killed") ++timeline.killed;
    }
  }
  if (!open.empty()) {
    throw ValidationError("timeline_from_trace: " +
                          std::to_string(open.size()) +
                          " job(s) started but never ended");
  }
  return timeline;
}

std::string render_timeline(
    const std::vector<std::vector<Interval>>& node_timeline, double makespan_s,
    size_t columns) {
  if (columns == 0 || makespan_s <= 0) return "";
  std::string out;
  const double bucket = makespan_s / static_cast<double>(columns);
  for (size_t node = 0; node < node_timeline.size(); ++node) {
    out += "node " + pad_left(std::to_string(node), 3) + " |";
    std::string row(columns, '.');
    for (const Interval& interval : node_timeline[node]) {
      const auto first = static_cast<size_t>(interval.start / bucket);
      auto last = static_cast<size_t>(std::ceil(interval.end / bucket));
      last = std::min(last, columns);
      for (size_t c = first; c < last; ++c) row[c] = '#';
    }
    out += row + "|\n";
  }
  return out;
}

}  // namespace ff::savanna
