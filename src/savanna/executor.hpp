#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "cluster/sim.hpp"
#include "cluster/workload.hpp"

namespace ff::savanna {

/// One busy interval on one node — the raw material of the Fig. 6
/// utilization timelines.
struct Interval {
  double start = 0;
  double end = 0;
  std::string run_id;
};

struct ExecutionOptions {
  int nodes = 1;
  /// Allocation walltime; tasks cannot start after it and running tasks are
  /// killed at it. Infinite by default (run to completion).
  double walltime_s = std::numeric_limits<double>::infinity();
  /// Set-synchronized runner only: runs per set (0 = one per node).
  int set_size = 0;
  /// Fixed launch overhead added to every run (jsrun/aprun startup).
  double startup_cost_s = 0;
  /// Optional failure injection: return true if this run fails on `node`.
  /// A failed run occupies its node for the full duration, then must be
  /// re-run (it is reported in `failed`, not `completed`).
  std::function<bool(const sim::TaskSpec&, int node)> fails;
};

/// What happened when an ensemble was executed inside one allocation.
struct ExecutionReport {
  double makespan_s = 0;  // last node-release time (<= walltime)
  std::vector<std::vector<Interval>> node_timeline;  // [node] -> intervals
  std::vector<std::string> completed;
  std::vector<std::string> failed;
  std::vector<std::string> killed;       // running at walltime
  std::vector<std::string> not_started;  // never launched in this allocation

  double busy_node_seconds = 0;
  double allocation_node_seconds = 0;  // nodes * min(makespan, walltime)

  double utilization() const {
    return allocation_node_seconds > 0 ? busy_node_seconds / allocation_node_seconds
                                       : 0.0;
  }

  // The ASCII Gantt rendering lives in savanna/timeline.hpp
  // (render_timeline), which also rebuilds timelines from the structured
  // trace stream — the executors emit savanna.job.* events for that.
};

/// The *original* iRF-LOOP workflow of Section V-D: runs are submitted in
/// static sets "with explicit synchronization at the end of a set", so
/// every set waits for its slowest member ("straggler processes can
/// severely limit the performance of the overall workflow").
ExecutionReport run_set_synchronized(sim::Simulation& sim,
                                     const std::vector<sim::TaskSpec>& tasks,
                                     const ExecutionOptions& options);

/// The Savanna pilot runner: a resource manager that "dynamically schedules
/// and tracks runs on the allocated nodes", assigning the next pending run
/// to whichever node frees first. No set barriers, no idle tails except the
/// final drain.
ExecutionReport run_pilot(sim::Simulation& sim,
                          const std::vector<sim::TaskSpec>& tasks,
                          const ExecutionOptions& options);

}  // namespace ff::savanna
