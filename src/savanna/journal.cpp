#include "savanna/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::savanna {

namespace {

CampaignJournal::WriteHook g_write_hook;

void run_hook(CampaignJournal::WritePhase phase, size_t write_index) {
  if (g_write_hook) g_write_hook(phase, write_index);
}

/// Append `line` (newline included) to `fd` and fsync. With a test hook
/// installed the line is committed in two halves with an fsync between, so
/// a hook that kills the process at MidWrite leaves a genuine torn write
/// on disk; without a hook it is a single write + fsync.
void durable_append(int fd, const std::string& line, const std::string& path,
                    size_t write_index) {
  run_hook(CampaignJournal::WritePhase::BeforeWrite, write_index);
  const size_t half = g_write_hook ? line.size() / 2 : line.size();
  auto write_range = [&](size_t begin, size_t end) {
    size_t at = begin;
    while (at < end) {
      const ssize_t n = ::write(fd, line.data() + at, end - at);
      if (n < 0) throw IoError("journal append failed: " + path);
      at += static_cast<size_t>(n);
    }
  };
  write_range(0, half);
  if (g_write_hook) {
    ::fsync(fd);
    run_hook(CampaignJournal::WritePhase::MidWrite, write_index);
    write_range(half, line.size());
  }
  if (::fsync(fd) != 0) throw IoError("journal fsync failed: " + path);
  run_hook(CampaignJournal::WritePhase::AfterSync, write_index);
}

}  // namespace

void CampaignJournal::set_test_write_hook(WriteHook hook) {
  g_write_hook = std::move(hook);
}

CampaignJournal::~CampaignJournal() { close(); }

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      next_index_(other.next_index_),
      write_index_(other.write_index_) {}

CampaignJournal& CampaignJournal::operator=(CampaignJournal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    next_index_ = other.next_index_;
    write_index_ = other.write_index_;
  }
  return *this;
}

void CampaignJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

CampaignJournal CampaignJournal::create(
    const std::string& path, const std::string& campaign_name,
    const std::vector<std::string>& run_ids) {
  Json header = Json::object();
  header["kind"] = "header";
  header["schema"] = kJournalSchemaVersion;
  header["campaign"] = campaign_name;
  Json runs = Json::array();
  for (const std::string& id : run_ids) runs.push_back(id);
  header["runs"] = std::move(runs);

  // The header is the file's birth certificate: tmp + rename makes its
  // creation atomic, so a journal on disk always has a complete header.
  // The hook phases mirror durable_append's so the fault harness can kill
  // journal creation too (MidWrite = tmp written, rename not reached).
  // MidWrite here means "tmp file partially written, rename not reached":
  // indistinguishable from BeforeWrite for readers, since they never look
  // at tmp files — exactly the point of the atomic create.
  run_hook(WritePhase::BeforeWrite, 0);
  run_hook(WritePhase::MidWrite, 0);
  write_file_atomic(path, header.dump() + "\n");
  run_hook(WritePhase::AfterSync, 0);

  CampaignJournal journal;
  journal.path_ = path;
  journal.next_index_ = 0;
  journal.write_index_ = 1;
  journal.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (journal.fd_ < 0) throw IoError("cannot open journal for append: " + path);
  obs::trace_instant("savanna", "savanna.journal.open",
                     {{"runs", run_ids.size()},
                      {"schema", kJournalSchemaVersion}});
  return journal;
}

CampaignJournal::Replay CampaignJournal::replay(const std::string& path) {
  Replay out;
  std::string text;
  try {
    text = read_file(path);
  } catch (const IoError&) {
    return out;  // no journal — campaign never started
  }

  size_t pos = 0;
  size_t line_number = 0;
  while (pos < text.size()) {
    const size_t newline = text.find('\n', pos);
    const bool unterminated = newline == std::string::npos;
    const std::string line =
        text.substr(pos, unterminated ? std::string::npos : newline - pos);
    const size_t line_end = unterminated ? text.size() : newline + 1;
    ++line_number;

    Json record;
    bool parsed = false;
    if (!line.empty()) {
      try {
        record = Json::parse(line);
        parsed = record.is_object();
      } catch (const std::exception&) {
        parsed = false;
      }
    }

    if (!parsed || unterminated) {
      // A bad *final* line is a torn write from a crash mid-append — drop
      // it. A bad line with committed records after it means the file was
      // corrupted some other way; refuse to guess.
      if (line_end >= text.size()) {
        out.torn_tail = true;
        break;
      }
      throw ValidationError("journal " + path + ": corrupt line " +
                            std::to_string(line_number));
    }

    const std::string kind = record.get_or("kind", "");
    if (line_number == 1) {
      if (kind != "header") {
        throw ValidationError("journal " + path + ": missing header record");
      }
      const int64_t schema = record.get_or("schema", int64_t{-1});
      if (schema != kJournalSchemaVersion) {
        throw ValidationError("journal " + path + ": unknown schema version " +
                              std::to_string(schema) + " (this build reads " +
                              std::to_string(kJournalSchemaVersion) + ")");
      }
      out.header = std::move(record);
    } else if (kind == "alloc") {
      out.allocations.push_back(std::move(record));
    }
    // Unknown record kinds after the header are skipped (forward compat
    // within one schema version).

    out.committed_bytes = line_end;
    pos = line_end;
  }

  if (obs::tracing_enabled()) {
    obs::trace_instant("savanna", "savanna.journal.replay",
                       {{"entries", out.allocations.size()},
                        {"torn", out.torn_tail}});
  }
  return out;
}

CampaignJournal CampaignJournal::open_for_append(const std::string& path,
                                                 const Replay& state) {
  if (!state.has_header()) {
    throw StateError("journal " + path + ": cannot append without a header");
  }
  if (state.torn_tail) {
    // Atomically rewrite the committed prefix so the torn bytes can never
    // be misread as the start of the next record.
    const std::string text = read_file(path);
    write_file_atomic(path, text.substr(0, state.committed_bytes));
  }
  CampaignJournal journal;
  journal.path_ = path;
  journal.next_index_ = state.allocations.size();
  journal.write_index_ = 1 + state.allocations.size();
  journal.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (journal.fd_ < 0) throw IoError("cannot open journal for append: " + path);
  return journal;
}

size_t CampaignJournal::append_allocation(Json record) {
  if (fd_ < 0) throw StateError("journal is not open for append");
  const size_t index = next_index_;
  record["kind"] = "alloc";
  record["index"] = index;
  const std::string line = record.dump() + "\n";
  durable_append(fd_, line, path_, write_index_);
  ++write_index_;
  ++next_index_;
  if (obs::tracing_enabled()) {
    const size_t done =
        record.contains("completed") ? record["completed"].size() : 0;
    obs::trace_instant(
        "savanna", "savanna.journal.commit",
        {{"alloc", index}, {"done", done}, {"bytes", line.size()}});
  }
  return index;
}

}  // namespace ff::savanna
