#include "savanna/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::savanna {

namespace {

CampaignJournal::WriteHook g_write_hook;

void run_hook(CampaignJournal::WriteKind kind, CampaignJournal::WritePhase phase,
              size_t write_index) {
  if (g_write_hook) g_write_hook(kind, phase, write_index);
}

/// Append `data` (newlines included) to `fd` and fsync. With a test hook
/// installed the data is committed in two halves with an fsync between, so
/// a hook that kills the process at MidWrite leaves a genuine torn write
/// on disk; without a hook it is a single write + fsync.
void durable_append(int fd, const std::string& data, const std::string& path,
                    CampaignJournal::WriteKind kind, size_t write_index) {
  run_hook(kind, CampaignJournal::WritePhase::BeforeWrite, write_index);
  const size_t half = g_write_hook ? data.size() / 2 : data.size();
  auto write_range = [&](size_t begin, size_t end) {
    size_t at = begin;
    while (at < end) {
      const ssize_t n = ::write(fd, data.data() + at, end - at);
      if (n < 0) throw IoError("journal append failed: " + path);
      at += static_cast<size_t>(n);
    }
  };
  write_range(0, half);
  if (g_write_hook) {
    ::fsync(fd);
    run_hook(kind, CampaignJournal::WritePhase::MidWrite, write_index);
    write_range(half, data.size());
  }
  if (::fsync(fd) != 0) throw IoError("journal fsync failed: " + path);
  run_hook(kind, CampaignJournal::WritePhase::AfterSync, write_index);
}

}  // namespace

const std::vector<JournalRecordInfo>& journal_record_registry() {
  static const std::vector<JournalRecordInfo> kRecords = {
      {"header", "header",
       "file birth certificate: schema version, campaign name, run-set "
       "count/digest (ids inlined when small); always line 1, written via "
       "atomic tmp+rename"},
      {"compact", "compaction marker",
       "records that alloc history before the following checkpoint was "
       "folded away by compaction; only ever line 2"},
      {"alloc", "allocation",
       "one completed batch-job allocation: index, virtual start/end, and "
       "the per-run outcomes resume replays through the tracker"},
      {"ckpt", "checkpoint",
       "summary of every allocation before it: next alloc index, virtual "
       "clock, and the started-run tracker snapshot; replay restores the "
       "newest one and only the alloc records after it"},
  };
  return kRecords;
}

const JournalRecordInfo* find_journal_record(std::string_view kind) {
  for (const JournalRecordInfo& info : journal_record_registry()) {
    if (info.kind == kind) return &info;
  }
  return nullptr;
}

void CampaignJournal::set_test_write_hook(WriteHook hook) {
  g_write_hook = std::move(hook);
}

CampaignJournal::~CampaignJournal() { close_noexcept(); }

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      next_index_(other.next_index_),
      write_index_(other.write_index_),
      group_commit_(other.group_commit_),
      buffered_(std::move(other.buffered_)),
      buffered_records_(std::exchange(other.buffered_records_, 0)),
      last_error_(std::move(other.last_error_)) {}

CampaignJournal& CampaignJournal::operator=(CampaignJournal&& other) noexcept {
  if (this != &other) {
    close_noexcept();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    next_index_ = other.next_index_;
    write_index_ = other.write_index_;
    group_commit_ = other.group_commit_;
    buffered_ = std::move(other.buffered_);
    buffered_records_ = std::exchange(other.buffered_records_, 0);
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

void CampaignJournal::close() {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (...) {
    // The handle is closed either way — a journal that failed its final
    // flush must not be appended to again — but the explicit close()
    // surfaces the failure to the caller, who can still react.
    ::close(fd_);
    fd_ = -1;
    record_close_error();
    throw;
  }
  ::close(fd_);
  fd_ = -1;
}

void CampaignJournal::close_noexcept() noexcept {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (...) {
    // Destructor/move path: a throw during unwind would be std::terminate,
    // so swallow and record — last_error() surfaces what was lost.
    record_close_error();
  }
  ::close(fd_);
  fd_ = -1;
}

void CampaignJournal::record_close_error() noexcept {
  try {
    try {
      throw;  // rethrow the in-flight exception to classify it
    } catch (const std::exception& error) {
      last_error_ = error.what();
    } catch (...) {
      last_error_ = "unknown error while flushing journal " + path_;
    }
  } catch (...) {
    // Even building the message can throw (bad_alloc); stay noexcept.
  }
}

CampaignJournal CampaignJournal::create_with_header(const std::string& path,
                                                    Json header,
                                                    size_t run_count) {
  // The header is the file's birth certificate: tmp + rename makes its
  // creation atomic, so a journal on disk always has a complete header.
  // The hook phases mirror durable_append's so the fault harness can kill
  // journal creation too (MidWrite = tmp written, rename not reached):
  // indistinguishable from BeforeWrite for readers, since they never look
  // at tmp files — exactly the point of the atomic create.
  run_hook(WriteKind::Header, WritePhase::BeforeWrite, 0);
  run_hook(WriteKind::Header, WritePhase::MidWrite, 0);
  write_file_atomic(path, header.dump() + "\n");
  run_hook(WriteKind::Header, WritePhase::AfterSync, 0);

  CampaignJournal journal;
  journal.path_ = path;
  journal.next_index_ = 0;
  journal.write_index_ = 1;
  journal.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (journal.fd_ < 0) throw IoError("cannot open journal for append: " + path);
  obs::trace_instant("savanna", "savanna.journal.open",
                     {{"runs", run_count}, {"schema", kJournalSchemaVersion}});
  return journal;
}

CampaignJournal CampaignJournal::create(
    const std::string& path, const std::string& campaign_name,
    const std::vector<std::string>& run_ids) {
  RunSetDigest digest;
  for (const std::string& id : run_ids) digest.add(id);

  Json header = Json::object();
  header["kind"] = "header";
  header["schema"] = kJournalSchemaVersion;
  header["campaign"] = campaign_name;
  header["run_count"] = static_cast<int64_t>(run_ids.size());
  header["runs_digest"] = digest.hex();
  if (run_ids.size() <= kInlineRunListMax) {
    Json runs = Json::array();
    for (const std::string& id : run_ids) runs.push_back(id);
    header["runs"] = std::move(runs);
  }
  return create_with_header(path, std::move(header), run_ids.size());
}

CampaignJournal CampaignJournal::create(const std::string& path,
                                        const std::string& campaign_name,
                                        const RunSetSummary& run_set) {
  Json header = Json::object();
  header["kind"] = "header";
  header["schema"] = kJournalSchemaVersion;
  header["campaign"] = campaign_name;
  header["run_count"] = static_cast<int64_t>(run_set.count);
  header["runs_digest"] = run_set.digest;
  return create_with_header(path, std::move(header), run_set.count);
}

CampaignJournal::Replay CampaignJournal::replay(const std::string& path) {
  Replay out;
  std::string text;
  try {
    text = read_file(path);
  } catch (const IoError&) {
    return out;  // no journal — campaign never started
  }

  size_t pos = 0;
  size_t line_number = 0;
  while (pos < text.size()) {
    const size_t newline = text.find('\n', pos);
    const bool unterminated = newline == std::string::npos;
    const std::string line =
        text.substr(pos, unterminated ? std::string::npos : newline - pos);
    const size_t line_end = unterminated ? text.size() : newline + 1;
    ++line_number;

    Json record;
    bool parsed = false;
    if (!line.empty()) {
      try {
        record = Json::parse(line);
        parsed = record.is_object();
      } catch (const std::exception&) {
        parsed = false;
      }
    }

    if (!parsed || unterminated) {
      // A bad *final* line is a torn write from a crash mid-append — drop
      // it. A bad line with committed records after it means the file was
      // corrupted some other way; refuse to guess.
      if (line_end >= text.size()) {
        out.torn_tail = true;
        break;
      }
      throw ValidationError("journal " + path + ": corrupt line " +
                            std::to_string(line_number));
    }

    const std::string kind = record.get_or("kind", "");
    if (line_number == 1) {
      if (kind != "header") {
        throw ValidationError("journal " + path + ": missing header record");
      }
      const int64_t schema = record.get_or("schema", int64_t{-1});
      if (schema != kJournalSchemaVersion) {
        throw ValidationError("journal " + path + ": unknown schema version " +
                              std::to_string(schema) + " (this build reads " +
                              std::to_string(kJournalSchemaVersion) + ")");
      }
      out.header = std::move(record);
    } else if (kind == "alloc") {
      out.next_index =
          static_cast<size_t>(record.get_or("index", int64_t{0})) + 1;
      out.allocations.push_back(std::move(record));
    } else if (kind == "ckpt") {
      // The checkpoint summarizes everything before it: replay keeps only
      // the newest one plus the alloc tail after it — O(live), not
      // O(history).
      out.next_index =
          static_cast<size_t>(record.get_or("next_index", int64_t{0}));
      out.allocations.clear();
      out.checkpoint = std::move(record);
    } else if (kind == "compact") {
      ++out.compactions;
    }
    // Unknown record kinds after the header are skipped (forward compat
    // within one schema version).

    ++out.records;
    out.committed_bytes = line_end;
    pos = line_end;
  }

  if (obs::tracing_enabled()) {
    obs::trace_instant("savanna", "savanna.journal.replay",
                       {{"entries", out.allocations.size()},
                        {"torn", out.torn_tail}});
  }
  return out;
}

CampaignJournal CampaignJournal::open_for_append(const std::string& path,
                                                 const Replay& state) {
  if (!state.has_header()) {
    throw StateError("journal " + path + ": cannot append without a header");
  }
  if (state.torn_tail) {
    // Atomically rewrite the committed prefix so the torn bytes can never
    // be misread as the start of the next record.
    const std::string text = read_file(path);
    write_file_atomic(path, text.substr(0, state.committed_bytes));
  }
  CampaignJournal journal;
  journal.path_ = path;
  journal.next_index_ = state.next_index;
  journal.write_index_ = state.records;
  journal.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (journal.fd_ < 0) throw IoError("cannot open journal for append: " + path);
  return journal;
}

void CampaignJournal::set_group_commit(size_t records) {
  if (records == 0) records = 1;
  if (records < group_commit_) flush();
  group_commit_ = records;
}

void CampaignJournal::flush() {
  if (buffered_.empty()) return;
  if (fd_ < 0) throw StateError("journal is not open for append");
  durable_append(fd_, buffered_, path_, WriteKind::Append, write_index_);
  ++write_index_;
  buffered_.clear();
  buffered_records_ = 0;
}

size_t CampaignJournal::append_allocation(Json record) {
  if (fd_ < 0) throw StateError("journal is not open for append");
  const size_t index = next_index_;
  record["kind"] = "alloc";
  record["index"] = index;
  const std::string line = record.dump() + "\n";
  if (group_commit_ > 1) {
    buffered_ += line;
    ++buffered_records_;
    if (buffered_records_ >= group_commit_) flush();
  } else {
    durable_append(fd_, line, path_, WriteKind::Append, write_index_);
    ++write_index_;
  }
  ++next_index_;
  if (obs::tracing_enabled()) {
    const size_t done =
        record.contains("completed") ? record["completed"].size() : 0;
    obs::trace_instant(
        "savanna", "savanna.journal.commit",
        {{"alloc", index}, {"done", done}, {"bytes", line.size()}});
  }
  return index;
}

void CampaignJournal::append_checkpoint(const Json& tracker_snapshot,
                                        double clock) {
  if (fd_ < 0) throw StateError("journal is not open for append");
  flush();  // a checkpoint must summarize a durable prefix
  Json record = Json::object();
  record["kind"] = "ckpt";
  record["next_index"] = static_cast<int64_t>(next_index_);
  record["clock"] = clock;
  record["tracker"] = tracker_snapshot;
  const std::string line = record.dump() + "\n";
  durable_append(fd_, line, path_, WriteKind::Checkpoint, write_index_);
  ++write_index_;
  if (obs::tracing_enabled()) {
    obs::trace_instant("savanna", "savanna.journal.checkpoint",
                       {{"alloc", next_index_},
                        {"runs", tracker_snapshot.size()},
                        {"bytes", line.size()}});
  }
}

void CampaignJournal::compact() {
  if (fd_ < 0) throw StateError("journal is not open for append");
  flush();
  const std::string text = read_file(path_);

  // Split into complete lines (the file always ends with '\n' here: every
  // append path writes whole lines and any torn tail was truncated at open).
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t newline = text.find('\n', pos);
    if (newline == std::string::npos) break;
    lines.push_back(text.substr(pos, newline - pos));
    pos = newline + 1;
  }
  if (lines.empty()) return;

  size_t last_ckpt = SIZE_MAX;
  for (size_t i = 0; i < lines.size(); ++i) {
    try {
      if (Json::parse(lines[i]).get_or("kind", "") == std::string("ckpt")) {
        last_ckpt = i;
      }
    } catch (const std::exception&) {
      // unreachable for a journal we hold open; be permissive anyway
    }
  }
  if (last_ckpt == SIZE_MAX) return;  // nothing a checkpoint summarizes

  const size_t dropped = last_ckpt - 1;  // records between header and ckpt
  std::string compacted = lines[0] + "\n" + R"({"kind":"compact"})" + "\n";
  for (size_t i = last_ckpt; i < lines.size(); ++i) {
    compacted += lines[i];
    compacted += '\n';
  }
  if (compacted == text) return;  // already compact — keep compact() idempotent

  // Same atomicity as the header: the old journal stays intact until the
  // rename, so a crash mid-compaction loses nothing.
  run_hook(WriteKind::Compact, WritePhase::BeforeWrite, write_index_);
  run_hook(WriteKind::Compact, WritePhase::MidWrite, write_index_);
  ::close(fd_);
  fd_ = -1;
  write_file_atomic(path_, compacted);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) throw IoError("cannot reopen journal after compaction: " + path_);
  run_hook(WriteKind::Compact, WritePhase::AfterSync, write_index_);
  ++write_index_;
  if (obs::tracing_enabled()) {
    obs::trace_instant("savanna", "savanna.journal.compact",
                       {{"dropped", dropped},
                        {"bytes_before", text.size()},
                        {"bytes_after", compacted.size()}});
  }
}

}  // namespace ff::savanna
