#include "savanna/batch_runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/error.hpp"

namespace ff::savanna {

namespace {

/// Mutable driver state shared by the event callbacks. Lives on the stack
/// of run_campaign_through_batch, which outlives sim.run().
struct Driver {
  sim::Simulation* sim = nullptr;
  sim::BatchSystem* batch = nullptr;
  const CampaignRunOptions* options = nullptr;
  RunTracker* tracker = nullptr;
  std::vector<sim::TaskSpec> remaining;
  BatchCampaignReport report;
  double first_submit_time = 0;
  double last_completion_time = 0;

  void submit_next() {
    if (remaining.empty()) return;
    if (options->max_allocations > 0 &&
        report.inner.allocations_used >= options->max_allocations) {
      return;
    }
    sim::BatchSystem::JobRequest request;
    request.name = "campaign-alloc-" + std::to_string(report.jobs_submitted);
    request.nodes = options->execution.nodes;
    request.walltime_s = options->execution.walltime_s;
    const double submitted_at = sim->now();
    request.on_start = [this, submitted_at](const sim::Allocation& allocation) {
      on_allocation(allocation, submitted_at);
    };
    ++report.jobs_submitted;
    batch->submit(std::move(request));
  }

  void on_allocation(const sim::Allocation& allocation, double submitted_at) {
    report.total_queue_wait_s += allocation.start_time - submitted_at;

    // Execute this allocation's share on a private clock; only its elapsed
    // time is charged to the outer simulation.
    sim::Simulation inner;
    ExecutionReport exec =
        options->backend == Backend::Pilot
            ? run_pilot(inner, remaining, options->execution)
            : run_set_synchronized(inner, remaining, options->execution);

    if (tracker) {
      apply_report_to_tracker(*tracker, exec, allocation.start_time);
    }

    const std::set<std::string> done(exec.completed.begin(), exec.completed.end());
    const bool progressed = !exec.completed.empty();
    std::vector<sim::TaskSpec> next;
    for (const sim::TaskSpec& task : remaining) {
      if (!done.count(task.id)) next.push_back(task);
    }

    ++report.inner.allocations_used;
    report.inner.completed_runs += exec.completed.size();
    report.inner.total_node_seconds += exec.allocation_node_seconds;
    report.inner.total_busy_node_seconds += exec.busy_node_seconds;
    const double used = std::min(exec.makespan_s, options->execution.walltime_s);
    report.inner.reports.push_back(std::move(exec));
    remaining = std::move(next);

    sim->schedule_after(used, [this, allocation, progressed] {
      last_completion_time = sim->now();
      batch->complete(allocation);
      // No-progress guard: a remainder that cannot fit any allocation
      // (e.g. one task longer than the walltime) must not loop forever.
      if (progressed) submit_next();
    });
  }
};

}  // namespace

BatchCampaignReport run_campaign_through_batch(sim::Simulation& sim,
                                               sim::BatchSystem& batch,
                                               const std::vector<sim::TaskSpec>& tasks,
                                               const CampaignRunOptions& options,
                                               RunTracker* tracker) {
  if (!std::isfinite(options.execution.walltime_s)) {
    throw Error("run_campaign_through_batch: walltime must be finite");
  }
  Driver driver;
  driver.sim = &sim;
  driver.batch = &batch;
  driver.options = &options;
  driver.tracker = tracker;
  driver.remaining = tasks;
  driver.first_submit_time = sim.now();
  if (tracker) {
    for (const sim::TaskSpec& task : tasks) tracker->add_run(task.id);
  }
  driver.submit_next();
  sim.run();
  driver.report.inner.remaining_runs = driver.remaining.size();
  driver.report.total_wall_s =
      driver.last_completion_time - driver.first_submit_time;
  return driver.report;
}

}  // namespace ff::savanna
