#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "savanna/executor.hpp"

namespace ff::savanna {

/// Node-occupancy reconstruction from the structured trace stream — the
/// Fig. 6 timelines built from `savanna.job.start` / `savanna.job.end`
/// events instead of executor-private bookkeeping. Any trace consumer
/// (benches, external tools reading the JSONL export) can recover exactly
/// what the executor saw, which is the point of the machine-actionable
/// provenance layer.
struct TraceTimeline {
  std::vector<std::vector<Interval>> node_timeline;  // [node] -> intervals
  double makespan_s = 0;           // latest job end observed
  double busy_node_seconds = 0;    // sum of interval lengths
  size_t started = 0;
  size_t done = 0;
  size_t failed = 0;
  size_t killed = 0;

  /// Utilization against `nodes * makespan` (the Fig. 6 denominator for an
  /// allocation that runs to completion).
  double utilization() const {
    const double total = makespan_s * static_cast<double>(node_timeline.size());
    return total > 0 ? busy_node_seconds / total : 0.0;
  }
};

/// Pair up savanna.job.start/end events (matching on run id) into per-node
/// busy intervals. Events from other categories/names are ignored, so a
/// flush() of a whole mixed-subsystem trace works as input. Timestamps are
/// kept as emitted (absolute virtual time); pass the allocation's t0 as
/// `origin_s` to rebase (the executors start fresh Simulations at 0 in the
/// benches, so the default is usually right).
TraceTimeline timeline_from_trace(const std::vector<obs::TraceEvent>& events,
                                  double origin_s = 0);

/// ASCII Gantt chart: one row per node, '#' busy, '.' idle, `columns`
/// buckets across the makespan. The visual analogue of Fig. 6; shared by
/// the trace-driven bench and the ExecutionReport-based tests.
std::string render_timeline(
    const std::vector<std::vector<Interval>>& node_timeline, double makespan_s,
    size_t columns = 72);

}  // namespace ff::savanna
