#pragma once

#include <functional>
#include <string>
#include <vector>

namespace ff::savanna {

/// A real (non-simulated) task: Savanna's "simple pilot runner to run
/// experiments on available resources", specialized to in-process work.
/// Used by the examples and the GWAS paste workflow to actually execute
/// generated plans on the host machine.
struct LocalTask {
  std::string id;
  std::function<void()> work;
};

struct LocalReport {
  std::vector<std::string> completed;
  /// (run id, exception message) for tasks that threw.
  std::vector<std::pair<std::string, std::string>> failed;
  double wall_seconds = 0;
};

/// Run all tasks on a worker pool of the given size, collecting failures
/// instead of propagating (a failed run must not sink the campaign —
/// Savanna tracks it for re-submission instead).
LocalReport run_local(const std::vector<LocalTask>& tasks, size_t workers);

}  // namespace ff::savanna
