#include "savanna/local_executor.hpp"

#include <chrono>
#include <mutex>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace ff::savanna {

LocalReport run_local(const std::vector<LocalTask>& tasks, size_t workers) {
  LocalReport report;
  std::mutex mutex;
  obs::Span batch("savanna", "savanna.local.batch",
                  {{"tasks", tasks.size()}, {"workers", workers}});
  const auto start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(workers);
    for (const LocalTask& task : tasks) {
      pool.submit([&task, &report, &mutex] {
        obs::Span span("savanna", "savanna.local.task", {{"run", task.id}});
        try {
          task.work();
          std::lock_guard lock(mutex);
          report.completed.push_back(task.id);
        } catch (const std::exception& e) {
          obs::trace_instant("savanna", "savanna.local.task.fail",
                             {{"run", task.id}, {"error", e.what()}});
          std::lock_guard lock(mutex);
          report.failed.emplace_back(task.id, e.what());
        } catch (...) {
          obs::trace_instant("savanna", "savanna.local.task.fail",
                             {{"run", task.id}, {"error", "unknown error"}});
          std::lock_guard lock(mutex);
          report.failed.emplace_back(task.id, "unknown error");
        }
      });
    }
    pool.wait_idle();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace ff::savanna
