#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ff::savanna {

/// On-disk journal schema version. Bump when the record shapes change;
/// replay() refuses journals written by a newer (unknown) schema rather
/// than silently misreading them.
inline constexpr int64_t kJournalSchemaVersion = 1;

/// Crash-consistent, append-only JSONL journal of campaign execution state
/// — the durable half of "partially completed SweepGroups are re-submitted,
/// and Savanna resumes execution of the experiments" (paper Section IV).
///
/// File layout (one JSON object per line):
///
///   {"kind":"header","schema":1,"campaign":"...","runs":["id",...]}
///   {"kind":"alloc","index":0,"start":0.0,"end":40.0,...}   one per
///   {"kind":"alloc","index":1,...}                           allocation
///
/// Consistency contract (what resume_campaign relies on):
///
/// * The header is written via atomic tmp-file + rename + fsync, so the
///   journal either exists with a complete header or not at all.
/// * Each allocation record is appended with a single write and fsync'd
///   before append() returns — an allocation record on disk means that
///   allocation's provenance is durable. The fsync is the *commit point*:
///   a campaign killed before it simply re-executes that allocation on
///   resume (nothing outside the journal was made durable either).
/// * A crash mid-append leaves at most one torn (partial) final line.
///   replay() detects and drops it; open() truncates it away via an
///   atomic rewrite before appending resumes.
///
/// The journal stores exactly what apply_report_to_tracker() consumes, so
/// replaying it rebuilds a RunTracker byte-identical to the tracker of an
/// uninterrupted run (enforced by tests/savanna/crash_resume_test).
class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal();

  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&& other) noexcept;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Create a fresh journal at `path` (overwriting any existing file) with
  /// a schema-versioned header registering `run_ids`, and open it for
  /// appending. Emits `savanna.journal.open`.
  static CampaignJournal create(const std::string& path,
                                const std::string& campaign_name,
                                const std::vector<std::string>& run_ids);

  /// What replay() recovered from a journal file.
  struct Replay {
    Json header;                    // null when the file is missing/empty
    std::vector<Json> allocations;  // committed "alloc" records, in order
    bool torn_tail = false;         // a partial final line was dropped
    size_t committed_bytes = 0;     // file offset after the last good line
    bool has_header() const { return header.is_object(); }
  };

  /// Parse a journal file, tolerating a torn final line (dropped, flagged).
  /// A missing or empty file yields an empty Replay with no header — the
  /// caller treats that as "campaign never started". Throws ValidationError
  /// on an unknown schema version or a corrupt non-final line.
  static Replay replay(const std::string& path);

  /// Open an existing journal for appending. If `state.torn_tail`, the
  /// torn bytes are first truncated away (atomic rewrite of the committed
  /// prefix). `state` must come from replay() of the same path.
  static CampaignJournal open_for_append(const std::string& path,
                                         const Replay& state);

  /// Append one allocation record (adds "kind" and "index") and fsync it.
  /// Returns the record's allocation index.
  size_t append_allocation(Json record);

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  /// Index the next appended allocation record will get (== header + alloc
  /// records ever committed to this journal).
  size_t next_allocation_index() const noexcept { return next_index_; }

  void close();

  /// Test-only fault hook, called at phases of every durable write (the
  /// header counts as write #0, each append as the next). The crash/resume
  /// harness uses it to SIGKILL the process at fuzzer-chosen points,
  /// including mid-line to manufacture genuine torn writes.
  enum class WritePhase {
    BeforeWrite,  // nothing of this record on disk yet
    MidWrite,     // a partial line is on disk (fsync'd) — a torn write
    AfterSync,    // the record is fully committed
  };
  using WriteHook = std::function<void(WritePhase, size_t write_index)>;
  static void set_test_write_hook(WriteHook hook);

 private:
  void append_line(const std::string& line);

  int fd_ = -1;
  std::string path_;
  size_t next_index_ = 0;   // next allocation record index
  size_t write_index_ = 0;  // durable writes issued through this handle
};

}  // namespace ff::savanna
