#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ff::savanna {

/// On-disk journal schema version. Bump when the record shapes change;
/// replay() refuses journals written by a different schema rather than
/// silently misreading them. The normative byte-level format lives in
/// docs/journal_format.md, kept in sync with journal_record_registry() by
/// tests/savanna/journal_format_doc_test.
inline constexpr int64_t kJournalSchemaVersion = 2;

/// Run sets up to this size are inlined into the header as a "runs" array
/// (exact ids, grep-able). Larger campaigns carry only the count + digest —
/// a million-run header would otherwise dwarf the journal it heads.
inline constexpr size_t kInlineRunListMax = 4096;

/// Streaming FNV-1a/64 over the run-id sequence (each id framed with a
/// trailing '\n' so {"ab","c"} and {"a","bc"} differ). Both the journal
/// header and the manifest side of the lint drift check use this, so a
/// million-run set is compared in O(1) space without materializing ids.
class RunSetDigest {
 public:
  void add(std::string_view run_id) {
    for (const char c : run_id) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kPrime;
    }
    hash_ ^= static_cast<unsigned char>('\n');
    hash_ *= kPrime;
    ++count_;
  }
  size_t count() const noexcept { return count_; }
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return std::string(buf);
  }

 private:
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
  size_t count_ = 0;
};

/// One entry of the journal's record-type registry: the single source of
/// truth for which "kind" values exist on disk. docs/journal_format.md must
/// document exactly these (enforced both directions by ctest).
struct JournalRecordInfo {
  std::string_view kind;     // the "kind" field value, e.g. "ckpt"
  std::string_view name;     // human name, e.g. "checkpoint"
  std::string_view summary;  // one-line description
};
const std::vector<JournalRecordInfo>& journal_record_registry();
const JournalRecordInfo* find_journal_record(std::string_view kind);

/// Crash-consistent, append-only JSONL journal of campaign execution state
/// — the durable half of "partially completed SweepGroups are re-submitted,
/// and Savanna resumes execution of the experiments" (paper Section IV).
///
/// File layout (one JSON object per line; see docs/journal_format.md for
/// the normative spec):
///
///   {"kind":"header","schema":2,"campaign":"...","run_count":6, ...}
///   {"kind":"alloc","index":0,"start":0.0,"end":40.0,...}   one per
///   {"kind":"alloc","index":1,...}                           allocation
///   {"kind":"ckpt","next_index":2,"clock":80.0,"tracker":{...}}
///
/// plus, in a compacted journal, a {"kind":"compact"} marker right after
/// the header recording that alloc records before the checkpoint were
/// folded into it.
///
/// Consistency contract (what resume_campaign relies on):
///
/// * The header is written via atomic tmp-file + rename + fsync, so the
///   journal either exists with a complete header or not at all.
/// * Each allocation record is appended with a single write and fsync'd
///   before append() returns — an allocation record on disk means that
///   allocation's provenance is durable. The fsync is the *commit point*:
///   a campaign killed before it simply re-executes that allocation on
///   resume (nothing outside the journal was made durable either).
///   With group commit (set_group_commit > 1) the commit point moves to
///   the batch flush: one write + fsync covers the whole batch, and a
///   crash loses at most the unflushed batch — which is then re-executed.
/// * A crash mid-append leaves at most one torn (partial) final line.
///   replay() detects and drops it; open() truncates it away via an
///   atomic rewrite before appending resumes.
/// * A checkpoint record summarizes every allocation before it; replay
///   restores the newest checkpoint and only the alloc records after it,
///   making resume O(live tail), not O(campaign history).
/// * Compaction rewrites the file as header + compact marker + newest
///   checkpoint + tail, via the same tmp + rename as the header — a crash
///   mid-compaction leaves the previous journal intact.
///
/// The journal stores exactly what apply_report_to_tracker() consumes, so
/// replaying it rebuilds a RunTracker byte-identical to the tracker of an
/// uninterrupted run (enforced by tests/savanna/crash_resume_test).
class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal();

  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&& other) noexcept;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// The run set as the header stores it at scale: size + streaming digest.
  struct RunSetSummary {
    size_t count = 0;
    std::string digest;  // RunSetDigest::hex() over the ids in order
  };

  /// Create a fresh journal at `path` (overwriting any existing file) with
  /// a schema-versioned header registering `run_ids` (inlined when small
  /// enough, always digested), and open it for appending. Emits
  /// `savanna.journal.open`.
  static CampaignJournal create(const std::string& path,
                                const std::string& campaign_name,
                                const std::vector<std::string>& run_ids);

  /// Same, but from a pre-computed summary — the million-run path, where
  /// the id list is streamed through RunSetDigest and never materialized.
  static CampaignJournal create(const std::string& path,
                                const std::string& campaign_name,
                                const RunSetSummary& run_set);

  /// What replay() recovered from a journal file.
  struct Replay {
    Json header;                    // null when the file is missing/empty
    Json checkpoint;                // newest "ckpt" record (null if none)
    std::vector<Json> allocations;  // committed "alloc" records *after* the
                                    // newest checkpoint, in order
    size_t next_index = 0;          // next allocation index to assign
    size_t records = 0;             // committed lines (header included)
    size_t compactions = 0;         // "compact" markers seen
    bool torn_tail = false;         // a partial final line was dropped
    size_t committed_bytes = 0;     // file offset after the last good line
    bool has_header() const { return header.is_object(); }
    bool has_checkpoint() const { return checkpoint.is_object(); }
  };

  /// Parse a journal file, tolerating a torn final line (dropped, flagged).
  /// A missing or empty file yields an empty Replay with no header — the
  /// caller treats that as "campaign never started". Throws ValidationError
  /// on an unknown schema version or a corrupt non-final line.
  static Replay replay(const std::string& path);

  /// Open an existing journal for appending. If `state.torn_tail`, the
  /// torn bytes are first truncated away (atomic rewrite of the committed
  /// prefix). `state` must come from replay() of the same path.
  static CampaignJournal open_for_append(const std::string& path,
                                         const Replay& state);

  /// Append one allocation record (adds "kind" and "index"). With group
  /// commit disabled (the default) the record is fsync'd before returning;
  /// otherwise it is buffered until the batch flushes. Returns the
  /// record's allocation index.
  size_t append_allocation(Json record);

  /// Append a checkpoint record carrying the tracker snapshot (the
  /// to_json_started() shape) and the virtual clock. Flushes any buffered
  /// batch first, so the checkpoint always summarizes a durable prefix.
  /// Emits `savanna.journal.checkpoint`.
  void append_checkpoint(const Json& tracker_snapshot, double clock);

  /// Rewrite the journal as header + compact marker + newest checkpoint +
  /// subsequent records, dropping the alloc history the checkpoint already
  /// summarizes. Atomic (tmp + rename); a no-op when there is no
  /// checkpoint or nothing precedes it. Emits `savanna.journal.compact`.
  void compact();

  /// Batch size for group commit: 1 (default) fsyncs every record;
  /// n > 1 buffers up to n records and commits them with one write+fsync.
  void set_group_commit(size_t records);
  /// Durably commit any buffered records now.
  void flush();

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  /// Index the next appended allocation record will get (== alloc records
  /// ever committed to this journal, across checkpoints and compactions).
  size_t next_allocation_index() const noexcept { return next_index_; }

  /// Flush any buffered records and close the handle. Throws (IoError) when
  /// the final flush cannot be made durable — an explicit close is the last
  /// chance to report that records were lost. The destructor and move
  /// assignment close quietly instead: a throw during unwind would be
  /// std::terminate, so they swallow the failure and record it in
  /// last_error().
  void close();

  /// The failure message swallowed by the most recent destructor/move-path
  /// close (or recorded by a throwing explicit close()); empty when every
  /// close completed cleanly.
  const std::string& last_error() const noexcept { return last_error_; }

  /// Test-only fault hook, called at phases of every durable write (the
  /// header counts as write #0, each append/checkpoint/compaction as the
  /// next). The crash/resume harness uses it to SIGKILL the process at
  /// fuzzer-chosen points, including mid-line to manufacture genuine torn
  /// writes.
  enum class WriteKind {
    Header,      // atomic header create
    Append,      // alloc record (or a group-commit batch of them)
    Checkpoint,  // ckpt record
    Compact,     // atomic whole-file compaction rewrite
  };
  enum class WritePhase {
    BeforeWrite,  // nothing of this record on disk yet
    MidWrite,     // a partial line is on disk (fsync'd) — a torn write
    AfterSync,    // the record is fully committed
  };
  using WriteHook =
      std::function<void(WriteKind kind, WritePhase phase, size_t write_index)>;
  static void set_test_write_hook(WriteHook hook);

 private:
  static CampaignJournal create_with_header(const std::string& path, Json header,
                                            size_t run_count);
  /// close() without the throw: swallow flush failures into last_error_.
  void close_noexcept() noexcept;
  /// Record the in-flight exception's message into last_error_.
  void record_close_error() noexcept;

  int fd_ = -1;
  std::string path_;
  size_t next_index_ = 0;   // next allocation record index
  size_t write_index_ = 0;  // durable writes issued through this handle
  size_t group_commit_ = 1;
  std::string buffered_;    // group-commit batch not yet durable
  size_t buffered_records_ = 0;
  std::string last_error_;  // failure swallowed by a quiet close
};

}  // namespace ff::savanna
