#include "savanna/failure_injection.hpp"

#include <cmath>

namespace ff::savanna {

std::function<bool(const sim::TaskSpec&, int)> make_failure_injector(
    const sim::MachineSpec& machine, uint64_t seed) {
  const double mttf_s = machine.node_mttf_hours * 3600.0;
  return [mttf_s, seed](const sim::TaskSpec& task, int node) {
    (void)node;
    if (mttf_s <= 0) return false;
    const double probability = 1.0 - std::exp(-task.duration_s / mttf_s);
    // Hash the run id with the seed into a uniform deviate.
    uint64_t h = ff::splitmix64(seed);
    for (char c : task.id) {
      h = ff::splitmix64(h ^ static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < probability;
  };
}

}  // namespace ff::savanna
