#include "savanna/tracker.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::savanna {

namespace {

/// The tracker is the ComponentRecords tier made concrete, so its state
/// transitions are themselves trace events: one savanna.run.state per
/// mark_* call, at the transition's virtual time.
void trace_state(const std::string& run_id, const char* state, double time,
                 int node, size_t attempt) {
  if (!obs::tracing_enabled()) return;
  obs::trace_instant_at(time, "savanna", "savanna.run.state",
                        {{"run", run_id},
                         {"state", state},
                         {"node", node},
                         {"attempt", attempt}});
}

}  // namespace

void RunTracker::add_run(const std::string& run_id) {
  if (!runs_.emplace(run_id, RunRecord{}).second) {
    throw ValidationError("RunTracker: duplicate run '" + run_id + "'");
  }
}

bool RunTracker::has_run(const std::string& run_id) const noexcept {
  return runs_.count(run_id) > 0;
}

RunTracker::RunRecord& RunTracker::require(const std::string& run_id) {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) throw NotFoundError("RunTracker: unknown run '" + run_id + "'");
  return it->second;
}

const RunTracker::RunRecord& RunTracker::require(const std::string& run_id) const {
  auto it = runs_.find(run_id);
  if (it == runs_.end()) throw NotFoundError("RunTracker: unknown run '" + run_id + "'");
  return it->second;
}

void RunTracker::mark_started(const std::string& run_id, double time, int node) {
  RunRecord& run = require(run_id);
  if (run.last_state == "running") {
    throw StateError("RunTracker: run '" + run_id + "' already running");
  }
  run.events.push_back(EventRecord{"start", time, node, ""});
  run.last_state = "running";
  ++run.attempts;
  trace_state(run_id, "start", time, node, run.attempts - 1);
}

void RunTracker::mark_done(const std::string& run_id, double time) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"done", time, -1, ""});
  run.last_state = "done";
  trace_state(run_id, "done", time, -1, run.attempts - 1);
}

void RunTracker::mark_failed(const std::string& run_id, double time,
                             const std::string& reason) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"failed", time, -1, reason});
  run.last_state = "failed";
  trace_state(run_id, "failed", time, -1, run.attempts - 1);
}

void RunTracker::mark_killed(const std::string& run_id, double time) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"killed", time, -1, "walltime"});
  run.last_state = "killed";
  trace_state(run_id, "killed", time, -1, run.attempts - 1);
}

void RunTracker::mark_exhausted(const std::string& run_id, double time,
                                const std::string& reason) {
  RunRecord& run = require(run_id);
  if (run.last_state != "failed" && run.last_state != "killed") {
    throw StateError("RunTracker: run '" + run_id +
                     "' cannot be exhausted from state '" + run.last_state + "'");
  }
  run.events.push_back(EventRecord{"exhausted", time, -1, reason});
  run.last_state = "exhausted";
  trace_state(run_id, "exhausted", time, -1, run.attempts - 1);
}

std::vector<std::string> RunTracker::needing_rerun() const {
  std::vector<std::string> out;
  for (const auto& [run_id, run] : runs_) {
    if (run.last_state != "done" && run.last_state != "exhausted") {
      out.push_back(run_id);
    }
  }
  return out;
}

size_t RunTracker::attempts(const std::string& run_id) const {
  return require(run_id).attempts;
}

RunTracker::RunStatus RunTracker::status(const std::string& run_id) const {
  const RunRecord& run = require(run_id);
  RunStatus status;
  status.state = run.last_state;
  status.attempts = run.attempts;
  status.last_time = run.events.empty() ? 0 : run.events.back().time;
  return status;
}

RunTracker::Counts RunTracker::counts() const {
  Counts counts;
  counts.total = runs_.size();
  for (const auto& [_, run] : runs_) {
    if (run.last_state == "done") ++counts.done;
    else if (run.last_state == "failed") ++counts.failed;
    else if (run.last_state == "killed") ++counts.killed;
    else if (run.last_state == "exhausted") ++counts.exhausted;
    else if (run.last_state == "pending") ++counts.never_started;
  }
  return counts;
}

Json RunTracker::to_json() const {
  Json out = Json::object();
  for (const auto& [run_id, run] : runs_) {
    Json record = Json::object();
    record["state"] = run.last_state;
    record["attempts"] = static_cast<int64_t>(run.attempts);
    Json events = Json::array();
    for (const EventRecord& event : run.events) {
      Json entry = Json::object();
      entry["kind"] = event.kind;
      entry["time"] = event.time;
      if (event.node >= 0) entry["node"] = static_cast<int64_t>(event.node);
      if (!event.detail.empty()) entry["detail"] = event.detail;
      events.push_back(std::move(entry));
    }
    record["events"] = std::move(events);
    out[run_id] = std::move(record);
  }
  return out;
}

RunTracker RunTracker::from_json(const Json& json) {
  RunTracker tracker;
  for (const auto& [run_id, record] : json.as_object()) {
    RunRecord run;
    run.last_state = record["state"].as_string();
    run.attempts = static_cast<size_t>(record.get_or("attempts", int64_t{0}));
    for (const Json& entry : record["events"].as_array()) {
      EventRecord event;
      event.kind = entry["kind"].as_string();
      event.time = entry["time"].as_double();
      event.node = static_cast<int>(entry.get_or("node", int64_t{-1}));
      event.detail = entry.get_or("detail", "");
      run.events.push_back(std::move(event));
    }
    tracker.runs_[run_id] = std::move(run);
  }
  return tracker;
}

}  // namespace ff::savanna
