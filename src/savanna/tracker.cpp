#include "savanna/tracker.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::savanna {

namespace {

/// The tracker is the ComponentRecords tier made concrete, so its state
/// transitions are themselves trace events: one savanna.run.state per
/// mark_* call, at the transition's virtual time.
void trace_state(const std::string& run_id, const char* state, double time,
                 int node, size_t attempt) {
  if (!obs::tracing_enabled()) return;
  obs::trace_instant_at(time, "savanna", "savanna.run.state",
                        {{"run", run_id},
                         {"state", state},
                         {"node", node},
                         {"attempt", attempt}});
}

}  // namespace

RunTracker::RunTracker(size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

size_t RunTracker::shard_of(const std::string& run_id) const noexcept {
  return std::hash<std::string>{}(run_id) % shards_.size();
}

void RunTracker::add_run(const std::string& run_id) {
  Shard& shard = shards_[shard_of(run_id)];
  if (!shard.runs.emplace(run_id, RunRecord{}).second) {
    throw ValidationError("RunTracker: duplicate run '" + run_id + "'");
  }
  ++shard.live;
  ++live_;
  ++counts_.total;
  ++counts_.never_started;
}

bool RunTracker::has_run(const std::string& run_id) const noexcept {
  return shards_[shard_of(run_id)].runs.count(run_id) > 0;
}

RunTracker::RunRecord& RunTracker::require(const std::string& run_id) {
  Shard& shard = shards_[shard_of(run_id)];
  auto it = shard.runs.find(run_id);
  if (it == shard.runs.end()) {
    throw NotFoundError("RunTracker: unknown run '" + run_id + "'");
  }
  return it->second;
}

const RunTracker::RunRecord& RunTracker::require(const std::string& run_id) const {
  const Shard& shard = shards_[shard_of(run_id)];
  auto it = shard.runs.find(run_id);
  if (it == shard.runs.end()) {
    throw NotFoundError("RunTracker: unknown run '" + run_id + "'");
  }
  return it->second;
}

void RunTracker::on_terminal(const std::string& run_id) {
  --shards_[shard_of(run_id)].live;
  --live_;
}

void RunTracker::mark_started(const std::string& run_id, double time, int node) {
  RunRecord& run = require(run_id);
  if (run.last_state == "running") {
    throw StateError("RunTracker: run '" + run_id + "' already running");
  }
  // Counter bookkeeping: the run leaves whichever non-running bucket it was in.
  if (run.last_state == "pending") --counts_.never_started;
  else if (run.last_state == "failed") --counts_.failed;
  else if (run.last_state == "killed") --counts_.killed;
  else if (run.last_state == "done") --counts_.done;
  else if (run.last_state == "exhausted") --counts_.exhausted;
  if (run.last_state == "done" || run.last_state == "exhausted") {
    // Restarting a terminal run (legal, if unusual) makes it live again.
    ++shards_[shard_of(run_id)].live;
    ++live_;
  }
  run.events.push_back(EventRecord{"start", time, node, ""});
  run.last_state = "running";
  ++run.attempts;
  trace_state(run_id, "start", time, node, run.attempts - 1);
}

void RunTracker::mark_done(const std::string& run_id, double time) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"done", time, -1, ""});
  run.last_state = "done";
  ++counts_.done;
  on_terminal(run_id);
  trace_state(run_id, "done", time, -1, run.attempts - 1);
}

void RunTracker::mark_failed(const std::string& run_id, double time,
                             const std::string& reason) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"failed", time, -1, reason});
  run.last_state = "failed";
  ++counts_.failed;
  trace_state(run_id, "failed", time, -1, run.attempts - 1);
}

void RunTracker::mark_killed(const std::string& run_id, double time) {
  RunRecord& run = require(run_id);
  if (run.last_state != "running") {
    throw StateError("RunTracker: run '" + run_id + "' is not running");
  }
  run.events.push_back(EventRecord{"killed", time, -1, "walltime"});
  run.last_state = "killed";
  ++counts_.killed;
  trace_state(run_id, "killed", time, -1, run.attempts - 1);
}

void RunTracker::mark_exhausted(const std::string& run_id, double time,
                                const std::string& reason) {
  RunRecord& run = require(run_id);
  if (run.last_state != "failed" && run.last_state != "killed") {
    throw StateError("RunTracker: run '" + run_id +
                     "' cannot be exhausted from state '" + run.last_state + "'");
  }
  if (run.last_state == "failed") --counts_.failed;
  else --counts_.killed;
  run.events.push_back(EventRecord{"exhausted", time, -1, reason});
  run.last_state = "exhausted";
  ++counts_.exhausted;
  on_terminal(run_id);
  trace_state(run_id, "exhausted", time, -1, run.attempts - 1);
}

std::vector<std::string> RunTracker::needing_rerun() const {
  std::vector<std::string> out;
  for (const Shard& shard : shards_) {
    if (shard.live == 0) continue;  // every run here is done/exhausted
    for (const auto& [run_id, run] : shard.runs) {
      if (run.last_state != "done" && run.last_state != "exhausted") {
        out.push_back(run_id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t RunTracker::attempts(const std::string& run_id) const {
  return require(run_id).attempts;
}

RunTracker::RunStatus RunTracker::status(const std::string& run_id) const {
  const RunRecord& run = require(run_id);
  RunStatus status;
  status.state = run.last_state;
  status.attempts = run.attempts;
  status.last_time = run.events.empty() ? 0 : run.events.back().time;
  return status;
}

Json RunTracker::record_to_json(const RunRecord& run) {
  Json record = Json::object();
  record["state"] = run.last_state;
  record["attempts"] = static_cast<int64_t>(run.attempts);
  Json events = Json::array();
  for (const EventRecord& event : run.events) {
    Json entry = Json::object();
    entry["kind"] = event.kind;
    entry["time"] = event.time;
    if (event.node >= 0) entry["node"] = static_cast<int64_t>(event.node);
    if (!event.detail.empty()) entry["detail"] = event.detail;
    events.push_back(std::move(entry));
  }
  record["events"] = std::move(events);
  return record;
}

Json RunTracker::to_json() const {
  // Json objects are sorted maps, so insertion order does not matter: the
  // export is deterministic (and byte-identical to the pre-sharding layout).
  Json out = Json::object();
  for (const Shard& shard : shards_) {
    for (const auto& [run_id, run] : shard.runs) {
      out[run_id] = record_to_json(run);
    }
  }
  return out;
}

Json RunTracker::to_json_started() const {
  Json out = Json::object();
  for (const Shard& shard : shards_) {
    for (const auto& [run_id, run] : shard.runs) {
      if (!run.events.empty()) out[run_id] = record_to_json(run);
    }
  }
  return out;
}

void RunTracker::restore(const Json& records) {
  for (const auto& [run_id, record] : records.as_object()) {
    RunRecord run;
    run.last_state = record["state"].as_string();
    run.attempts = static_cast<size_t>(record.get_or("attempts", int64_t{0}));
    for (const Json& entry : record["events"].as_array()) {
      EventRecord event;
      event.kind = entry["kind"].as_string();
      event.time = entry["time"].as_double();
      event.node = static_cast<int>(entry.get_or("node", int64_t{-1}));
      event.detail = entry.get_or("detail", "");
      run.events.push_back(std::move(event));
    }
    Shard& shard = shards_[shard_of(run_id)];
    const std::string state = run.last_state;
    if (!shard.runs.emplace(run_id, std::move(run)).second) {
      throw ValidationError("RunTracker: duplicate run '" + run_id + "'");
    }
    ++counts_.total;
    if (state == "done") ++counts_.done;
    else if (state == "failed") ++counts_.failed;
    else if (state == "killed") ++counts_.killed;
    else if (state == "exhausted") ++counts_.exhausted;
    else if (state == "pending") ++counts_.never_started;
    if (state == "done" || state == "exhausted") {
      // terminal on arrival: never counted live
    } else {
      ++shard.live;
      ++live_;
    }
  }
}

RunTracker RunTracker::from_json(const Json& json) {
  RunTracker tracker;
  tracker.restore(json);
  return tracker;
}

}  // namespace ff::savanna
