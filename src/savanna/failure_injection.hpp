#pragma once

#include <functional>

#include "cluster/failure.hpp"
#include "savanna/executor.hpp"

namespace ff::savanna {

/// Bridge from the cluster failure model to the executors' injection hook:
/// each run fails with probability 1 - exp(-duration / node_mttf) — the
/// chance its node's exponential failure clock fires while it runs.
/// Deterministic in `seed`, and the per-run randomness is derived from the
/// run id (not the call order), so the same run receives the same fate on
/// every backend — a fair A/B comparison.
std::function<bool(const sim::TaskSpec&, int)> make_failure_injector(
    const sim::MachineSpec& machine, uint64_t seed);

}  // namespace ff::savanna
