#include "savanna/campaign_runner.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::savanna {

CampaignRunResult run_with_resubmission(sim::Simulation& sim,
                                        const std::vector<sim::TaskSpec>& tasks,
                                        const CampaignRunOptions& options,
                                        RunTracker* tracker) {
  CampaignRunResult result;
  if (tracker) {
    for (const sim::TaskSpec& task : tasks) tracker->add_run(task.id);
  }

  std::vector<sim::TaskSpec> remaining = tasks;
  std::map<std::string, int> submissions;  // per-run submission count (trace)
  while (!remaining.empty()) {
    if (options.max_allocations > 0 &&
        result.allocations_used >= options.max_allocations) {
      break;
    }
    const double allocation_start = sim.now();
    if (obs::tracing_enabled()) {
      // Everything entering this allocation is a submission; a run seen
      // before is a retry (its earlier attempt failed, was killed, or never
      // started).
      for (const sim::TaskSpec& task : remaining) {
        const int attempt = submissions[task.id]++;
        if (attempt > 0) {
          obs::trace_instant_at(allocation_start, "savanna",
                                "savanna.job.retry",
                                {{"run", task.id}, {"attempt", attempt}});
        }
        obs::trace_instant_at(allocation_start, "savanna", "savanna.job.submit",
                              {{"run", task.id}, {"attempt", attempt}});
      }
    }
    ExecutionReport report =
        options.backend == Backend::Pilot
            ? run_pilot(sim, remaining, options.execution)
            : run_set_synchronized(sim, remaining, options.execution);
    ++result.allocations_used;
    result.completed_runs += report.completed.size();
    result.total_node_seconds += report.allocation_node_seconds;
    result.total_busy_node_seconds += report.busy_node_seconds;

    if (tracker) {
      // Derive start/end times from the recorded intervals for provenance.
      std::map<std::string, double> end_time;
      for (size_t node = 0; node < report.node_timeline.size(); ++node) {
        for (const Interval& interval : report.node_timeline[node]) {
          tracker->mark_started(interval.run_id, allocation_start + interval.start,
                                static_cast<int>(node));
          end_time[interval.run_id] = allocation_start + interval.end;
        }
      }
      for (const std::string& id : report.completed) {
        tracker->mark_done(id, end_time.at(id));
      }
      for (const std::string& id : report.failed) {
        tracker->mark_failed(id, end_time.at(id), "injected failure");
      }
      for (const std::string& id : report.killed) {
        tracker->mark_killed(id, end_time.at(id));
      }
    }

    // Everything not completed goes into the next allocation, preserving
    // original order (failed and killed runs retry; unstarted runs start).
    std::set<std::string> done(report.completed.begin(), report.completed.end());
    std::vector<sim::TaskSpec> next;
    next.reserve(remaining.size() - report.completed.size());
    for (const sim::TaskSpec& task : remaining) {
      if (!done.count(task.id)) next.push_back(task);
    }
    // Guard against no-progress loops (e.g. one task longer than walltime).
    if (next.size() == remaining.size() && report.completed.empty() &&
        options.max_allocations == 0) {
      result.reports.push_back(std::move(report));
      remaining = std::move(next);
      break;
    }
    result.reports.push_back(std::move(report));
    remaining = std::move(next);
  }
  result.remaining_runs = remaining.size();
  return result;
}

}  // namespace ff::savanna
