#include "savanna/campaign_runner.hpp"

#include <limits>
#include <map>
#include <set>

#include "lint/rules.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace ff::savanna {

namespace {

/// Absolute per-run end times implied by the recorded intervals.
std::map<std::string, double> interval_end_times(const ExecutionReport& report,
                                                 double allocation_start) {
  std::map<std::string, double> end_time;
  for (const auto& node : report.node_timeline) {
    for (const Interval& interval : node) {
      end_time[interval.run_id] = allocation_start + interval.end;
    }
  }
  return end_time;
}

double end_or_fallback(const std::map<std::string, double>& end_time,
                       const std::string& id, double fallback) {
  auto it = end_time.find(id);
  return it == end_time.end() ? fallback : it->second;
}

/// Terminal give-up, applied identically on the live path and on journal
/// replay so the combined provenance stays byte-identical.
void mark_run_exhausted(RunTracker* tracker, const std::string& id, double time,
                        size_t attempts) {
  if (tracker) tracker->mark_exhausted(id, time, "retry budget exhausted");
  if (obs::tracing_enabled()) {
    obs::trace_instant_at(time, "savanna", "savanna.job.exhausted",
                          {{"run", id}, {"attempts", attempts}});
  }
}

Json ids_to_json(const std::vector<std::string>& ids) {
  Json out = Json::array();
  for (const std::string& id : ids) out.push_back(id);
  return out;
}

std::vector<std::string> ids_from_json(const Json& record,
                                       std::string_view key) {
  std::vector<std::string> out;
  if (!record.contains(key)) return out;
  for (const Json& id : record[key].as_array()) out.push_back(id.as_string());
  return out;
}

/// The journal stores exactly what apply_report_to_tracker consumes; these
/// two are inverses modulo the fields the tracker never reads.
Json report_to_json(const ExecutionReport& report) {
  Json out = Json::object();
  out["makespan"] = report.makespan_s;
  Json intervals = Json::array();
  for (size_t node = 0; node < report.node_timeline.size(); ++node) {
    for (const Interval& interval : report.node_timeline[node]) {
      Json entry = Json::object();
      entry["run"] = interval.run_id;
      entry["node"] = static_cast<int64_t>(node);
      entry["start"] = interval.start;
      entry["end"] = interval.end;
      intervals.push_back(std::move(entry));
    }
  }
  out["intervals"] = std::move(intervals);
  out["completed"] = ids_to_json(report.completed);
  out["failed"] = ids_to_json(report.failed);
  out["killed"] = ids_to_json(report.killed);
  return out;
}

ExecutionReport report_from_json(const Json& record) {
  ExecutionReport report;
  report.makespan_s = record["makespan"].as_double();
  for (const Json& entry : record["intervals"].as_array()) {
    const size_t node = static_cast<size_t>(entry["node"].as_int());
    if (report.node_timeline.size() <= node) {
      report.node_timeline.resize(node + 1);
    }
    Interval interval;
    interval.run_id = entry["run"].as_string();
    interval.start = entry["start"].as_double();
    interval.end = entry["end"].as_double();
    report.node_timeline[node].push_back(std::move(interval));
  }
  report.completed = ids_from_json(record, "completed");
  report.failed = ids_from_json(record, "failed");
  report.killed = ids_from_json(record, "killed");
  return report;
}

}  // namespace

void apply_report_to_tracker(RunTracker& tracker, const ExecutionReport& report,
                             double allocation_start) {
  const double allocation_end = allocation_start + report.makespan_s;
  std::map<std::string, double> end_time;
  for (size_t node = 0; node < report.node_timeline.size(); ++node) {
    for (const Interval& interval : report.node_timeline[node]) {
      tracker.mark_started(interval.run_id, allocation_start + interval.start,
                           static_cast<int>(node));
      end_time[interval.run_id] = allocation_start + interval.end;
    }
  }
  // A run reported terminal without a recorded interval still needs a
  // start/end pair in the provenance; pin it to the allocation bounds
  // rather than crashing on a missing end time.
  auto finish = [&](const std::string& id, auto mark) {
    auto it = end_time.find(id);
    if (it == end_time.end()) {
      tracker.mark_started(id, allocation_start, -1);
      mark(allocation_end);
    } else {
      mark(it->second);
    }
  };
  for (const std::string& id : report.completed) {
    finish(id, [&](double t) { tracker.mark_done(id, t); });
  }
  for (const std::string& id : report.failed) {
    finish(id, [&](double t) { tracker.mark_failed(id, t, "injected failure"); });
  }
  for (const std::string& id : report.killed) {
    finish(id, [&](double t) { tracker.mark_killed(id, t); });
  }
}

CampaignRunResult run_with_resubmission(sim::Simulation& sim,
                                        const std::vector<sim::TaskSpec>& tasks,
                                        const CampaignRunOptions& options,
                                        RunTracker* tracker,
                                        CampaignJournal* journal) {
  CampaignRunResult result;
  if (journal) journal->set_group_commit(options.journal.group_commit);

  // Retry bookkeeping: failures so far and when the last one ended. Seeded
  // from the tracker so a resumed campaign schedules retries (backoff,
  // exhaustion) exactly as the uninterrupted one would have.
  struct RetryState {
    size_t failures = 0;
    double last_end = 0;
  };
  std::map<std::string, RetryState> retry_state;
  std::map<std::string, int> submissions;  // per-run submission count (trace)

  std::vector<sim::TaskSpec> remaining;
  remaining.reserve(tasks.size());
  for (const sim::TaskSpec& task : tasks) {
    if (tracker) {
      if (!tracker->has_run(task.id)) tracker->add_run(task.id);
      const RunTracker::RunStatus status = tracker->status(task.id);
      if (status.state == "done" || status.state == "exhausted") continue;
      submissions[task.id] = static_cast<int>(status.attempts);
      if (status.state == "failed" || status.state == "killed") {
        retry_state[task.id] = RetryState{status.attempts, status.last_time};
      }
    }
    remaining.push_back(task);
  }

  while (!remaining.empty()) {
    if (options.max_allocations > 0 &&
        result.allocations_used >= options.max_allocations) {
      break;
    }

    // Partition by backoff eligibility: a run that failed n times is held
    // back until last_end + backoff(n).
    std::vector<sim::TaskSpec> eligible;
    eligible.reserve(remaining.size());
    double next_ready = std::numeric_limits<double>::infinity();
    for (const sim::TaskSpec& task : remaining) {
      double ready_at = 0;
      auto it = retry_state.find(task.id);
      if (it != retry_state.end() && it->second.failures > 0) {
        ready_at = it->second.last_end +
                   options.retry.backoff_after(it->second.failures);
      }
      if (ready_at > sim.now()) {
        next_ready = std::min(next_ready, ready_at);
      } else {
        eligible.push_back(task);
      }
    }
    if (eligible.empty()) {
      // Everything is backing off: advance the virtual clock to the first
      // retry-eligible instant instead of burning an allocation.
      sim.run_until(next_ready);
      continue;
    }
    const bool all_eligible = eligible.size() == remaining.size();

    const double allocation_start = sim.now();
    if (obs::tracing_enabled()) {
      // Everything entering this allocation is a submission; a run seen
      // before is a retry (its earlier attempt failed, was killed, or never
      // started).
      for (const sim::TaskSpec& task : eligible) {
        const int attempt = submissions[task.id]++;
        if (attempt > 0) {
          obs::trace_instant_at(allocation_start, "savanna",
                                "savanna.job.retry",
                                {{"run", task.id}, {"attempt", attempt}});
        }
        obs::trace_instant_at(allocation_start, "savanna", "savanna.job.submit",
                              {{"run", task.id}, {"attempt", attempt}});
      }
    }
    ExecutionReport report =
        options.backend == Backend::Pilot
            ? run_pilot(sim, eligible, options.execution)
            : run_set_synchronized(sim, eligible, options.execution);
    // A walltime-killed run leaves no completion event, so the pilot can
    // return with the clock short of the allocation's recorded end; advance
    // it so allocation N+1 starts where N's provenance says N ended (and so
    // no run's last_end sits in the future, which would defer it forever).
    sim.run_until(allocation_start + report.makespan_s);
    const double allocation_end = sim.now();
    ++result.allocations_used;
    result.completed_runs += report.completed.size();
    result.total_node_seconds += report.allocation_node_seconds;
    result.total_busy_node_seconds += report.busy_node_seconds;

    if (tracker) apply_report_to_tracker(*tracker, report, allocation_start);

    // Charge each failure against the run's retry budget; a spent budget is
    // terminal (`exhausted`) and the run is never re-submitted.
    const double fallback_end = allocation_start + report.makespan_s;
    const std::map<std::string, double> end_time =
        interval_end_times(report, allocation_start);
    std::vector<std::string> newly_exhausted;
    auto charge_failure = [&](const std::string& id) {
      RetryState& state = retry_state[id];
      ++state.failures;
      state.last_end = end_or_fallback(end_time, id, fallback_end);
      if (options.retry.max_attempts > 0 &&
          state.failures >= options.retry.max_attempts) {
        newly_exhausted.push_back(id);
        mark_run_exhausted(tracker, id, state.last_end, state.failures);
      }
    };
    for (const std::string& id : report.failed) charge_failure(id);
    for (const std::string& id : report.killed) charge_failure(id);
    result.exhausted.insert(result.exhausted.end(), newly_exhausted.begin(),
                            newly_exhausted.end());

    // Commit point: once this append returns, the allocation's provenance
    // is durable and a crash-resume will not re-execute it.
    if (journal) {
      Json record = report_to_json(report);
      record["start"] = allocation_start;
      record["end"] = allocation_end;
      record["exhausted"] = ids_to_json(newly_exhausted);
      journal->append_allocation(std::move(record));
      // Checkpoint cadence: every N committed allocations, summarize the
      // live-run state so a future resume replays O(live tail) instead of
      // the whole history — optionally folding that history away on the
      // spot. append_checkpoint flushes any group-commit batch first.
      if (tracker && options.journal.checkpoint_every > 0 &&
          journal->next_allocation_index() % options.journal.checkpoint_every ==
              0) {
        journal->append_checkpoint(tracker->to_json_started(), sim.now());
        if (options.journal.compact_after_checkpoint) journal->compact();
      }
    }

    // Everything neither completed nor exhausted goes into the next
    // allocation, preserving original order (failed and killed runs retry;
    // unstarted runs start).
    std::set<std::string> finished(report.completed.begin(),
                                   report.completed.end());
    finished.insert(newly_exhausted.begin(), newly_exhausted.end());
    std::vector<sim::TaskSpec> next;
    next.reserve(remaining.size());
    for (const sim::TaskSpec& task : remaining) {
      if (!finished.count(task.id)) next.push_back(task);
    }

    // Zero-progress guards (an identical re-submission can only repeat
    // itself): if nothing even started, stop unconditionally; if attempts
    // were made but nothing completed or exhausted, stop unless retry
    // budgets are set — with budgets, repeated failures are progress toward
    // exhaustion, which terminates the loop on its own.
    const bool nothing_ran = report.completed.empty() &&
                             report.failed.empty() && report.killed.empty();
    const bool zero_progress = finished.empty();
    result.reports.push_back(std::move(report));
    remaining = std::move(next);
    if (all_eligible && nothing_ran) break;
    if (all_eligible && zero_progress && options.retry.max_attempts == 0) break;
  }
  result.remaining_runs = remaining.size();
  // Durably commit any group-commit tail before handing the journal back.
  if (journal) journal->flush();
  return result;
}

ResumeReport resume_campaign(sim::Simulation& sim,
                             const std::vector<sim::TaskSpec>& manifest_tasks,
                             const CampaignRunOptions& options,
                             RunTracker& tracker,
                             const std::string& journal_path,
                             const std::string& campaign_name) {
  if (options.preflight_lint) {
    // Lint the journal text before committing to a replay: every problem
    // is reported at once with file:line locations, instead of replay()
    // aborting on the first. A missing file is "never started", not an
    // error, and torn tails are notes (resume truncates those itself).
    std::string journal_text;
    bool journal_exists = true;
    try {
      journal_text = read_file(journal_path);
    } catch (const IoError&) {
      journal_exists = false;
    }
    if (journal_exists) {
      const lint::LintReport preflight =
          lint::lint_journal_text(journal_text, journal_path, Json(), "");
      if (preflight.has_errors()) {
        throw ValidationError("journal " + journal_path +
                              " failed its preflight lint:\n" +
                              preflight.render_text());
      }
    }
  }

  ResumeReport out;
  std::set<std::string> manifest_ids;
  std::vector<std::string> run_ids;
  run_ids.reserve(manifest_tasks.size());
  for (const sim::TaskSpec& task : manifest_tasks) {
    manifest_ids.insert(task.id);
    run_ids.push_back(task.id);
  }
  auto require_known = [&](const std::string& id) {
    if (!manifest_ids.count(id)) {
      throw ValidationError("journal " + journal_path + " references run '" +
                            id + "' absent from the campaign manifest");
    }
  };

  CampaignJournal::Replay state = CampaignJournal::replay(journal_path);
  CampaignJournal journal;
  if (!state.has_header()) {
    // No journal (or an atomically-created one never got its header): the
    // campaign never started. Begin it now.
    journal = CampaignJournal::create(journal_path, campaign_name, run_ids);
  } else {
    out.torn_tail = state.torn_tail;
    out.allocations_replayed = state.allocations.size();
    // Reconcile the journal's run set against the manifest. Small journals
    // inline the exact ids; at scale the header carries only a count +
    // streaming digest, compared without materializing either side's set.
    if (state.header.contains("runs") && state.header["runs"].is_array()) {
      for (const Json& id : state.header["runs"].as_array()) {
        require_known(id.as_string());
      }
    }
    if (state.header.contains("runs_digest")) {
      RunSetDigest digest;
      for (const std::string& id : run_ids) digest.add(id);
      const std::string journal_digest =
          state.header["runs_digest"].as_string();
      const int64_t journal_count = state.header.get_or(
          "run_count", static_cast<int64_t>(digest.count()));
      if (journal_digest != digest.hex() ||
          journal_count != static_cast<int64_t>(digest.count())) {
        throw ValidationError(
            "journal " + journal_path + ": run-set digest mismatch (journal " +
            std::to_string(journal_count) + " runs/" + journal_digest +
            ", manifest " + std::to_string(digest.count()) + " runs/" +
            digest.hex() + ") — journal and manifest are different campaigns");
      }
    }
    // Restore the newest checkpoint first: it carries the full provenance
    // of every run that had started by checkpoint time, so only the alloc
    // tail after it needs replaying — O(live), not O(history).
    double clock = 0;
    if (state.has_checkpoint()) {
      const Json& snapshot = state.checkpoint["tracker"];
      for (const auto& [id, record] : snapshot.as_object()) {
        (void)record;
        require_known(id);
      }
      tracker.restore(snapshot);
      out.checkpoint_runs = snapshot.size();
      clock = state.checkpoint.get_or("clock", 0.0);
    }
    for (const sim::TaskSpec& task : manifest_tasks) {
      if (!tracker.has_run(task.id)) tracker.add_run(task.id);
    }
    // Replay committed allocations through the same code path the live run
    // used, so the rebuilt provenance is byte-identical.
    for (const Json& record : state.allocations) {
      const ExecutionReport report = report_from_json(record);
      const double start = record["start"].as_double();
      for (const auto& node : report.node_timeline) {
        for (const Interval& interval : node) require_known(interval.run_id);
      }
      for (const std::string& id : report.completed) require_known(id);
      for (const std::string& id : report.failed) require_known(id);
      for (const std::string& id : report.killed) require_known(id);
      apply_report_to_tracker(tracker, report, start);
      const std::map<std::string, double> end_time =
          interval_end_times(report, start);
      const double fallback_end = start + report.makespan_s;
      for (const std::string& id : ids_from_json(record, "exhausted")) {
        require_known(id);
        mark_run_exhausted(&tracker, id, end_or_fallback(end_time, id, fallback_end),
                           tracker.attempts(id));
      }
      clock = record.get_or("end", fallback_end);
    }
    // Restore the virtual clock: allocation N+1 starts where N ended, so
    // resumed runs get the timestamps the uninterrupted campaign would have.
    sim.run_until(clock);
    journal = CampaignJournal::open_for_append(journal_path, state);
    // The previous process may have died between committing an allocation
    // batch and the checkpoint the cadence owed for it — if the campaign is
    // already complete, no future append will ever trigger that checkpoint.
    // Re-establish the cadence invariant here: the replayed tracker and
    // clock are exactly what the uninterrupted process would have
    // checkpointed at this index.
    const size_t cadence = options.journal.checkpoint_every;
    const size_t next_index = journal.next_allocation_index();
    const bool checkpoint_on_disk =
        state.has_checkpoint() &&
        static_cast<size_t>(
            state.checkpoint.get_or("next_index", int64_t{0})) == next_index;
    if (cadence > 0 && next_index > 0 && next_index % cadence == 0 &&
        !checkpoint_on_disk) {
      journal.append_checkpoint(tracker.to_json_started(), sim.now());
    }
    // With compaction policy on, compact at open (idempotent): whether the
    // previous process died before, during, or after its own compaction,
    // the journal converges to the same bytes — which is what keeps the
    // crash harness's byte-parity check meaningful across kill points.
    if (options.journal.compact_after_checkpoint) journal.compact();
  }

  std::vector<sim::TaskSpec> incomplete;
  for (const sim::TaskSpec& task : manifest_tasks) {
    if (tracker.has_run(task.id)) {
      const RunTracker::RunStatus status = tracker.status(task.id);
      if (status.state == "done" || status.state == "exhausted") continue;
    }
    incomplete.push_back(task);
  }
  out.incomplete = incomplete.size();
  out.resumed_at_s = sim.now();
  if (obs::tracing_enabled()) {
    obs::trace_instant("savanna", "savanna.journal.resume",
                       {{"incomplete", out.incomplete},
                        {"replayed", out.allocations_replayed},
                        {"torn", out.torn_tail}});
  }
  out.result = run_with_resubmission(sim, incomplete, options, &tracker, &journal);
  return out;
}

}  // namespace ff::savanna
