#pragma once

#include "savanna/tracker.hpp"

namespace ff::savanna {

/// Export policy for provenance — the Exportable tier of the Provenance
/// gauge: "not all provenance that is useful to the original author is
/// appropriate to include in a distributable, reusable research object",
/// but "some provenance is crucial when reusing workflow components in a
/// new context". The policy decides what ships.
struct ExportPolicy {
  /// Keep per-event timestamps (drop for privacy/size: only final states
  /// and attempt counts remain).
  bool include_timestamps = true;
  /// Keep node placements (site-specific; usually dropped on export).
  bool include_nodes = false;
  /// Keep failure detail strings (may embed paths/hostnames).
  bool include_failure_details = false;
  /// Drop runs that never started (queue noise, not reuse-relevant).
  bool include_never_started = false;
};

/// A conservative default for public release: states and attempt counts
/// only.
ExportPolicy public_release_policy();
/// Everything — for hand-off within the same team/site.
ExportPolicy same_site_policy();

/// Apply the policy to a tracker's provenance and produce the exportable
/// research-object fragment. Always includes, per exported run: final
/// state, attempt count, and the event list filtered per the policy.
Json export_provenance(const RunTracker& tracker, const ExportPolicy& policy);

}  // namespace ff::savanna
