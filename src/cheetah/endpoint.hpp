#pragma once

#include <string>
#include <vector>

#include "cheetah/campaign.hpp"

namespace ff::cheetah {

/// Per-run lifecycle state, persisted in the campaign endpoint so that a
/// partially completed SweepGroup "is simply re-submitted" and resumes.
enum class RunState : uint8_t { Pending, Running, Done, Failed, Killed };

std::string_view run_state_name(RunState state) noexcept;
RunState run_state_from_name(std::string_view name);

/// The on-disk campaign endpoint: Cheetah "adopts its own directory schema
/// to represent a campaign end-point ... campaign metadata is hidden from
/// the user". Layout:
///
///   <root>/<campaign>/
///     .campaign/manifest.json        full campaign description (interop layer)
///     .campaign/status.json          per-run states
///     .campaign/journal.jsonl        crash-consistent execution journal
///                                    (savanna::CampaignJournal; may be absent
///                                    until the campaign first executes)
///     <group>/<sweep>/run-NNNN/params.json
///     <group>/<sweep>/run-NNNN/run.sh
///
/// All metadata writers go through atomic tmp-file + rename, so a crash at
/// any instant leaves every .campaign/ file either absent or complete.
///
/// The user-facing API is create / status / mark / pending_runs; nothing
/// else needs to know the schema.
class CampaignEndpoint {
 public:
  /// Create the endpoint directories and metadata for `campaign` under
  /// `root`. Fails (StateError) if the campaign directory already exists.
  static CampaignEndpoint create(const Campaign& campaign, const std::string& root);

  /// Open an existing endpoint.
  static CampaignEndpoint open(const std::string& root,
                               const std::string& campaign_name);

  const std::string& directory() const noexcept { return directory_; }
  Campaign campaign() const;

  /// Where the savanna::CampaignJournal for this campaign lives. The file
  /// is created lazily by the first journaled execution; resume_campaign
  /// treats a missing journal as "never started".
  std::string journal_path() const { return directory_ + "/.campaign/journal.jsonl"; }

  /// Directory of one run.
  std::string run_dir(const RunSpec& run) const;

  RunState state(const std::string& run_id) const;
  void mark(const std::string& run_id, RunState state);

  /// Runs still needing execution (Pending, Failed, or Killed) in `group`.
  /// This implements re-submission semantics: completed runs are skipped.
  std::vector<RunSpec> pending_runs(const std::string& group_name) const;

  struct StatusSummary {
    size_t pending = 0;
    size_t running = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t killed = 0;
    size_t total() const { return pending + running + done + failed + killed; }
  };
  StatusSummary status() const;

  /// Persist current states to .campaign/status.json.
  void save() const;

 private:
  CampaignEndpoint() = default;
  std::string directory_;
  Json manifest_;
  std::map<std::string, RunState> states_;
};

}  // namespace ff::cheetah
