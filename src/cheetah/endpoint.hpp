#pragma once

#include <string>
#include <vector>

#include "cheetah/campaign.hpp"

namespace ff::cheetah {

/// Per-run lifecycle state, persisted in the campaign endpoint so that a
/// partially completed SweepGroup "is simply re-submitted" and resumes.
enum class RunState : uint8_t { Pending, Running, Done, Failed, Killed };

std::string_view run_state_name(RunState state) noexcept;
RunState run_state_from_name(std::string_view name);

/// The on-disk campaign endpoint: Cheetah "adopts its own directory schema
/// to represent a campaign end-point ... campaign metadata is hidden from
/// the user". Layout:
///
///   <root>/<campaign>/
///     .campaign/manifest.json        full campaign description (interop layer)
///     .campaign/status.json          per-run states
///     .campaign/journal.jsonl        crash-consistent execution journal
///                                    (savanna::CampaignJournal; may be absent
///                                    until the campaign first executes)
///     <group>/<sweep>/run-NNNN/params.json
///     <group>/<sweep>/run-NNNN/run.sh
///
/// All metadata writers go through atomic tmp-file + rename, so a crash at
/// any instant leaves every .campaign/ file either absent or complete.
///
/// The user-facing API is create / status / mark / pending_runs; nothing
/// else needs to know the schema.
class CampaignEndpoint {
 public:
  /// How create() preflights the manifest. Lint runs by default so a
  /// campaign that could never execute (undeclared sweep parameters, a
  /// node count the machine cannot satisfy, an impossible walltime
  /// budget, ...) is rejected *before* any directories exist, with
  /// file/line diagnostics against the manifest that would have been
  /// written. Opt out with {.lint = false} (fairflow-lint can still run
  /// on the endpoint afterwards).
  struct CreateOptions {
    bool lint = true;
    /// FF203's assumed per-run walltime floor (seconds).
    double lint_min_run_s = 1.0;
    /// Campaigns with more runs than this are created *sparse*: no per-run
    /// directories (params.json/run.sh), and status.json records the total
    /// run count plus only the runs that left Pending — a million run-dirs
    /// would take longer to mkdir than the campaign takes to schedule.
    /// 0 (the default) never goes sparse.
    size_t sparse_above_runs = 0;
  };

  /// Create the endpoint directories and metadata for `campaign` under
  /// `root`. Fails (StateError) if the campaign directory already exists,
  /// (ValidationError) if the preflight lint finds error-severity issues.
  static CampaignEndpoint create(const Campaign& campaign, const std::string& root,
                                 const CreateOptions& options);
  static CampaignEndpoint create(const Campaign& campaign, const std::string& root) {
    return create(campaign, root, CreateOptions{});
  }

  /// Open an existing endpoint.
  static CampaignEndpoint open(const std::string& root,
                               const std::string& campaign_name);

  const std::string& directory() const noexcept { return directory_; }
  Campaign campaign() const;

  /// Where the savanna::CampaignJournal for this campaign lives. The file
  /// is created lazily by the first journaled execution; resume_campaign
  /// treats a missing journal as "never started".
  std::string journal_path() const { return directory_ + "/.campaign/journal.jsonl"; }

  /// Directory of one run.
  std::string run_dir(const RunSpec& run) const;

  /// In a sparse endpoint, a run with no recorded mark is Pending by
  /// definition (ids are not enumerable without decoding the sweeps); a
  /// dense endpoint still throws NotFoundError on unknown ids.
  RunState state(const std::string& run_id) const;
  void mark(const std::string& run_id, RunState state);

  /// True when created (or opened) in sparse mode.
  bool sparse() const noexcept { return sparse_; }

  /// Runs still needing execution (Pending, Failed, or Killed) in `group`.
  /// This implements re-submission semantics: completed runs are skipped.
  std::vector<RunSpec> pending_runs(const std::string& group_name) const;

  struct StatusSummary {
    size_t pending = 0;
    size_t running = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t killed = 0;
    size_t total() const { return pending + running + done + failed + killed; }
  };
  StatusSummary status() const;

  /// Persist current states to .campaign/status.json.
  void save() const;

 private:
  CampaignEndpoint() = default;
  std::string directory_;
  Json manifest_;
  std::map<std::string, RunState> states_;
  bool sparse_ = false;
  size_t run_count_ = 0;  // total runs when sparse (states_ holds a subset)
};

}  // namespace ff::cheetah
