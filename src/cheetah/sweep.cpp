#include "cheetah/sweep.hpp"

#include <cstdio>

#include "skel/template_engine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::cheetah {

Json RunSpec::to_json() const {
  Json out = Json::object();
  out["id"] = id;
  Json params_json = Json::object();
  for (const auto& [name, value] : params) params_json[name] = value;
  out["params"] = std::move(params_json);
  return out;
}

const Json& RunSpec::param(std::string_view name) const {
  auto it = params.find(std::string(name));
  if (it == params.end()) {
    throw NotFoundError("RunSpec '" + id + "': no parameter '" +
                        std::string(name) + "'");
  }
  return it->second;
}

Sweep& Sweep::add(Parameter parameter) {
  for (const Parameter& existing : parameters_) {
    if (existing.name() == parameter.name()) {
      throw ValidationError("Sweep '" + name_ + "': duplicate parameter '" +
                            parameter.name() + "'");
    }
  }
  // The cross product is decoded from a size_t index (run_at), so its total
  // size must fit one. Check at construction: a product that wraps would
  // make run_count() silently tiny and run_at() decode garbage assignments.
  size_t total = 1;
  for (const Parameter& existing : parameters_) {
    total *= existing.cardinality();  // cannot overflow: checked on insert
  }
  size_t grown = 0;
  if (__builtin_mul_overflow(total, parameter.cardinality(), &grown)) {
    throw ValidationError(
        "Sweep '" + name_ + "': adding parameter '" + parameter.name() +
        "' (cardinality " + std::to_string(parameter.cardinality()) +
        ") overflows the cross product — " + std::to_string(total) +
        " runs already, and the total must fit in size_t");
  }
  parameters_.push_back(std::move(parameter));
  return *this;
}

Sweep& Sweep::add_derived(std::string name, std::string template_text) {
  for (const Parameter& existing : parameters_) {
    if (existing.name() == name) {
      throw ValidationError("Sweep '" + name_ + "': derived parameter '" + name +
                            "' collides with a swept parameter");
    }
  }
  for (const auto& [existing, _] : derived_) {
    if (existing == name) {
      throw ValidationError("Sweep '" + name_ + "': duplicate derived parameter '" +
                            name + "'");
    }
  }
  skel::Template::parse(template_text, name);  // validate eagerly
  derived_.emplace_back(std::move(name), std::move(template_text));
  return *this;
}

size_t Sweep::run_count() const noexcept {
  size_t count = 1;
  for (const Parameter& parameter : parameters_) count *= parameter.cardinality();
  return count;
}

RunSpec Sweep::run_at(size_t index, const std::string& id_prefix) const {
  if (index >= run_count()) {
    throw ValidationError("Sweep '" + name_ + "': run index " +
                          std::to_string(index) + " out of range (" +
                          std::to_string(run_count()) + " runs)");
  }
  RunSpec run;
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "%04zu", index);
  run.id = id_prefix + suffix;
  // Row-major decode: last parameter varies fastest.
  size_t remainder = index;
  for (size_t p = parameters_.size(); p-- > 0;) {
    const Parameter& parameter = parameters_[p];
    const size_t value_index = remainder % parameter.cardinality();
    remainder /= parameter.cardinality();
    run.params[parameter.name()] = parameter.value_list()[value_index];
  }
  // Derived parameters render against the swept assignment (in order, so
  // later derived values may reference earlier ones).
  for (const auto& [name, template_text] : derived_) {
    Json context = Json::object();
    for (const auto& [key, value] : run.params) context[key] = value;
    const std::string rendered =
        skel::Template::parse(template_text, name).render(context);
    run.params[name] =
        is_integer(rendered) ? Json(std::stoll(rendered)) : Json(rendered);
  }
  return run;
}

std::vector<RunSpec> Sweep::generate(const std::string& id_prefix) const {
  const size_t total = run_count();
  std::vector<RunSpec> runs;
  runs.reserve(total);
  for (size_t index = 0; index < total; ++index) {
    runs.push_back(run_at(index, id_prefix));
  }
  return runs;
}

Json Sweep::to_json() const {
  Json out = Json::object();
  out["name"] = name_;
  Json params = Json::array();
  for (const Parameter& parameter : parameters_) params.push_back(parameter.to_json());
  out["parameters"] = std::move(params);
  if (!derived_.empty()) {
    Json derived = Json::object();
    for (const auto& [name, template_text] : derived_) derived[name] = template_text;
    out["derived"] = std::move(derived);
  }
  return out;
}

Sweep Sweep::from_json(const Json& json) {
  Sweep sweep(json.get_or("name", "sweep"));
  if (json.contains("parameters")) {
    for (const Json& parameter : json["parameters"].as_array()) {
      sweep.add(Parameter::from_json(parameter));
    }
  }
  if (json.contains("derived")) {
    for (const auto& [name, template_text] : json["derived"].as_object()) {
      sweep.add_derived(name, template_text.as_string());
    }
  }
  return sweep;
}

SweepGroup& SweepGroup::add(Sweep sweep) {
  for (const Sweep& existing : sweeps_) {
    if (existing.name() == sweep.name()) {
      throw ValidationError("SweepGroup '" + name_ + "': duplicate sweep '" +
                            sweep.name() + "'");
    }
  }
  // Same overflow discipline as Sweep::add — the group total is a size_t sum
  // of per-sweep cross products.
  size_t total = 0;
  for (const Sweep& existing : sweeps_) total += existing.run_count();
  size_t grown = 0;
  if (__builtin_add_overflow(total, sweep.run_count(), &grown)) {
    throw ValidationError("SweepGroup '" + name_ + "': adding sweep '" +
                          sweep.name() + "' overflows the group's total run "
                          "count (size_t)");
  }
  sweeps_.push_back(std::move(sweep));
  return *this;
}

SweepGroup& SweepGroup::set_nodes(int nodes) {
  if (nodes <= 0) throw ValidationError("SweepGroup: nodes must be positive");
  nodes_ = nodes;
  return *this;
}

SweepGroup& SweepGroup::set_walltime_s(double walltime_s) {
  if (walltime_s <= 0) throw ValidationError("SweepGroup: walltime must be positive");
  walltime_s_ = walltime_s;
  return *this;
}

SweepGroup& SweepGroup::set_max_concurrent(int max_concurrent) {
  if (max_concurrent < 0) {
    throw ValidationError("SweepGroup: max_concurrent must be >= 0");
  }
  max_concurrent_ = max_concurrent;
  return *this;
}

size_t SweepGroup::run_count() const noexcept {
  size_t count = 0;
  for (const Sweep& sweep : sweeps_) count += sweep.run_count();
  return count;
}

SweepGroup::iterator::iterator(const SweepGroup* group, size_t sweep_index)
    : group_(group), sweep_index_(sweep_index) {
  settle();
}

void SweepGroup::iterator::settle() {
  const auto& sweeps = group_->sweeps_;
  while (sweep_index_ < sweeps.size() &&
         run_index_ >= (sweep_count_ = sweeps[sweep_index_].run_count())) {
    ++sweep_index_;
    run_index_ = 0;
  }
  if (sweep_index_ < sweeps.size()) {
    id_prefix_ =
        group_->name_ + "/" + sweeps[sweep_index_].name() + "/run-";
  } else {
    run_index_ = 0;  // canonical end state, so end() iterators compare equal
  }
}

RunSpec SweepGroup::iterator::operator*() const {
  return group_->sweeps_[sweep_index_].run_at(run_index_, id_prefix_);
}

SweepGroup::iterator& SweepGroup::iterator::operator++() {
  ++run_index_;
  if (run_index_ >= sweep_count_) {
    ++sweep_index_;
    run_index_ = 0;
    settle();
  }
  return *this;
}

std::vector<RunSpec> SweepGroup::generate() const {
  std::vector<RunSpec> runs;
  runs.reserve(run_count());
  for_each_run([&runs](RunSpec&& run) { runs.push_back(std::move(run)); });
  return runs;
}

Json SweepGroup::to_json() const {
  Json out = Json::object();
  out["name"] = name_;
  out["nodes"] = static_cast<int64_t>(nodes_);
  out["walltime_s"] = walltime_s_;
  out["max_concurrent"] = static_cast<int64_t>(max_concurrent_);
  Json sweeps = Json::array();
  for (const Sweep& sweep : sweeps_) sweeps.push_back(sweep.to_json());
  out["sweeps"] = std::move(sweeps);
  return out;
}

SweepGroup SweepGroup::from_json(const Json& json) {
  SweepGroup group(json["name"].as_string());
  group.set_nodes(static_cast<int>(json.get_or("nodes", int64_t{1})));
  group.set_walltime_s(json.get_or("walltime_s", 7200.0));
  group.set_max_concurrent(
      static_cast<int>(json.get_or("max_concurrent", int64_t{0})));
  if (json.contains("sweeps")) {
    for (const Json& sweep : json["sweeps"].as_array()) {
      group.add(Sweep::from_json(sweep));
    }
  }
  return group;
}

}  // namespace ff::cheetah
