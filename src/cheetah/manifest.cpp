#include "cheetah/manifest.hpp"

#include "util/error.hpp"

namespace ff::cheetah {

skel::ModelSchema campaign_manifest_schema() {
  skel::ModelSchema schema;
  schema.require("name", "string", "campaign name")
      .require("app", "object", "application spec")
      .require("app.name", "string")
      .require("app.executable", "string")
      .optional("app.args_template", "string", Json(""))
      .optional("machine", "string", Json("local"))
      .optional("objective", "string", Json("none"))
      .require("groups", "array", "sweep groups");
  return schema;
}

void validate_manifest(const Json& manifest) {
  campaign_manifest_schema().validate_or_throw(manifest);
  // Structural checks below the schema's reach (array element shape).
  for (const Json& group : manifest["groups"].as_array()) {
    if (!group.is_object() || !group.contains("name")) {
      throw ValidationError("manifest: every group needs a name");
    }
    if (group.contains("sweeps")) {
      for (const Json& sweep : group["sweeps"].as_array()) {
        if (!sweep.contains("parameters")) continue;
        for (const Json& parameter : sweep["parameters"].as_array()) {
          if (!parameter.contains("name") || !parameter.contains("values") ||
              parameter["values"].as_array().empty()) {
            throw ValidationError(
                "manifest: parameters need a name and non-empty values");
          }
        }
      }
    }
  }
}

Json to_manifest(const Campaign& campaign) {
  Json manifest = campaign.to_json();
  validate_manifest(manifest);
  return manifest;
}

Campaign campaign_from_manifest(const Json& manifest) {
  validate_manifest(manifest);
  return Campaign::from_json(manifest);
}

}  // namespace ff::cheetah
