#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace ff::cheetah {

/// Which layer of the software stack a parameter tunes. Cheetah's point
/// (paper Sections II-C, IV) is that codesign parameters are scattered
/// across all three; the composition API keeps them in one sweep.
enum class ParamLayer : uint8_t { Application, Middleware, System };

std::string_view param_layer_name(ParamLayer layer) noexcept;
ParamLayer param_layer_from_name(std::string_view name);

/// One sweepable parameter: a name and its value list.
class Parameter {
 public:
  Parameter(std::string name, ParamLayer layer, std::vector<Json> values);

  /// Integer range [lo, hi] inclusive with step.
  static Parameter int_range(std::string name, ParamLayer layer, int64_t lo,
                             int64_t hi, int64_t step = 1);
  /// `count` evenly spaced doubles over [lo, hi] inclusive.
  static Parameter linspace(std::string name, ParamLayer layer, double lo,
                            double hi, size_t count);
  /// Explicit value list (strings, numbers, bools).
  static Parameter values(std::string name, ParamLayer layer,
                          std::vector<Json> values);

  const std::string& name() const noexcept { return name_; }
  ParamLayer layer() const noexcept { return layer_; }
  const std::vector<Json>& value_list() const noexcept { return values_; }
  size_t cardinality() const noexcept { return values_.size(); }

  Json to_json() const;
  static Parameter from_json(const Json& json);

 private:
  std::string name_;
  ParamLayer layer_;
  std::vector<Json> values_;
};

}  // namespace ff::cheetah
