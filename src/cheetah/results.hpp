#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cheetah/campaign.hpp"

namespace ff::cheetah {

/// The *output* of a codesign campaign (paper Section II-C): "a catalog
/// that describes the impact of different parameters on different output
/// metrics", queryable against the campaign's declared objective.
///
/// Each completed run records its parameter assignment plus measured
/// metrics ("runtime_s", "storage_bytes", "comm_bytes", ...). The catalog
/// then answers the questions a codesign study exists for: which
/// configuration is best for the objective, and what is each parameter's
/// main effect on a metric.
class ResultCatalog {
 public:
  /// Record the metrics of one completed run. Re-recording a run id
  /// replaces its entry (a re-submitted run supersedes the failed attempt).
  void record(const RunSpec& run, std::map<std::string, double> metrics);

  size_t run_count() const noexcept { return entries_.size(); }
  bool has_run(const std::string& run_id) const noexcept;
  const std::map<std::string, double>& metrics(const std::string& run_id) const;

  /// All metric names seen so far, sorted.
  std::vector<std::string> metric_names() const;

  /// The run optimizing `metric` in the direction implied by `objective`
  /// (Minimize* objectives minimize; MaximizeThroughput maximizes; None
  /// defaults to minimize). Runs lacking the metric are skipped; nullopt
  /// when no run has it.
  std::optional<RunSpec> best(const std::string& metric,
                              Objective objective) const;

  /// Main effect of a parameter on a metric: mean metric value per
  /// parameter value (values keyed by their JSON dump). This is the
  /// first-order "impact of different parameters on different output
  /// metrics" view of the catalog.
  std::map<std::string, double> main_effect(const std::string& parameter,
                                            const std::string& metric) const;

  /// Spread of main effects, max(mean) - min(mean): a quick ranking of
  /// which parameter matters most for a metric. NaN-free: 0 when the
  /// parameter or metric is absent.
  double effect_range(const std::string& parameter,
                      const std::string& metric) const;

  /// Parameters ranked by effect_range on `metric`, strongest first.
  std::vector<std::pair<std::string, double>> rank_parameters(
      const std::string& metric) const;

  Json to_json() const;
  static ResultCatalog from_json(const Json& json);

 private:
  struct Entry {
    RunSpec run;
    std::map<std::string, double> metrics;
  };
  std::map<std::string, Entry> entries_;  // keyed by run id
};

}  // namespace ff::cheetah
