#include "cheetah/results.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace ff::cheetah {

void ResultCatalog::record(const RunSpec& run, std::map<std::string, double> metrics) {
  if (run.id.empty()) throw ValidationError("ResultCatalog: run id must be non-empty");
  entries_.insert_or_assign(run.id, Entry{run, std::move(metrics)});
}

bool ResultCatalog::has_run(const std::string& run_id) const noexcept {
  return entries_.count(run_id) > 0;
}

const std::map<std::string, double>& ResultCatalog::metrics(
    const std::string& run_id) const {
  auto it = entries_.find(run_id);
  if (it == entries_.end()) {
    throw NotFoundError("ResultCatalog: unknown run '" + run_id + "'");
  }
  return it->second.metrics;
}

std::vector<std::string> ResultCatalog::metric_names() const {
  std::set<std::string> names;
  for (const auto& [_, entry] : entries_) {
    for (const auto& [name, __] : entry.metrics) names.insert(name);
  }
  return {names.begin(), names.end()};
}

std::optional<RunSpec> ResultCatalog::best(const std::string& metric,
                                           Objective objective) const {
  const bool maximize = objective == Objective::MaximizeThroughput;
  const Entry* winner = nullptr;
  double winning_value = 0;
  for (const auto& [_, entry] : entries_) {
    auto it = entry.metrics.find(metric);
    if (it == entry.metrics.end()) continue;
    const double value = it->second;
    if (!winner || (maximize ? value > winning_value : value < winning_value)) {
      winner = &entry;
      winning_value = value;
    }
  }
  if (!winner) return std::nullopt;
  return winner->run;
}

std::map<std::string, double> ResultCatalog::main_effect(
    const std::string& parameter, const std::string& metric) const {
  std::map<std::string, std::pair<double, size_t>> sums;  // value -> (sum, n)
  for (const auto& [_, entry] : entries_) {
    auto param_it = entry.run.params.find(parameter);
    auto metric_it = entry.metrics.find(metric);
    if (param_it == entry.run.params.end() || metric_it == entry.metrics.end()) {
      continue;
    }
    auto& [sum, count] = sums[param_it->second.dump()];
    sum += metric_it->second;
    ++count;
  }
  std::map<std::string, double> means;
  for (const auto& [value, sum_count] : sums) {
    means[value] = sum_count.first / static_cast<double>(sum_count.second);
  }
  return means;
}

double ResultCatalog::effect_range(const std::string& parameter,
                                   const std::string& metric) const {
  const auto means = main_effect(parameter, metric);
  if (means.empty()) return 0;
  double lo = means.begin()->second;
  double hi = lo;
  for (const auto& [_, mean] : means) {
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  return hi - lo;
}

std::vector<std::pair<std::string, double>> ResultCatalog::rank_parameters(
    const std::string& metric) const {
  std::set<std::string> parameters;
  for (const auto& [_, entry] : entries_) {
    for (const auto& [name, __] : entry.run.params) parameters.insert(name);
  }
  std::vector<std::pair<std::string, double>> ranked;
  for (const auto& parameter : parameters) {
    ranked.emplace_back(parameter, effect_range(parameter, metric));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

Json ResultCatalog::to_json() const {
  Json out = Json::object();
  for (const auto& [run_id, entry] : entries_) {
    Json record = Json::object();
    record["run"] = entry.run.to_json();
    Json metrics = Json::object();
    for (const auto& [name, value] : entry.metrics) metrics[name] = value;
    record["metrics"] = std::move(metrics);
    out[run_id] = std::move(record);
  }
  return out;
}

ResultCatalog ResultCatalog::from_json(const Json& json) {
  ResultCatalog catalog;
  for (const auto& [run_id, record] : json.as_object()) {
    RunSpec run;
    run.id = record["run"]["id"].as_string();
    for (const auto& [name, value] : record["run"]["params"].as_object()) {
      run.params[name] = value;
    }
    std::map<std::string, double> metrics;
    for (const auto& [name, value] : record["metrics"].as_object()) {
      metrics[name] = value.as_double();
    }
    (void)run_id;
    catalog.record(run, std::move(metrics));
  }
  return catalog;
}

}  // namespace ff::cheetah
