#include "cheetah/campaign.hpp"

#include "skel/template_engine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::cheetah {

Json AppSpec::to_json() const {
  Json out = Json::object();
  out["name"] = name;
  out["executable"] = executable;
  out["args_template"] = args_template;
  return out;
}

AppSpec AppSpec::from_json(const Json& json) {
  AppSpec app;
  app.name = json["name"].as_string();
  app.executable = json["executable"].as_string();
  app.args_template = json.get_or("args_template", "");
  return app;
}

std::string_view objective_name(Objective objective) noexcept {
  switch (objective) {
    case Objective::None: return "none";
    case Objective::MinimizeRuntime: return "minimize-runtime";
    case Objective::MinimizeStorage: return "minimize-storage";
    case Objective::MinimizeCommunication: return "minimize-communication";
    case Objective::MaximizeThroughput: return "maximize-throughput";
  }
  return "?";
}

Objective objective_from_name(std::string_view name) {
  const std::string wanted = to_lower(name);
  for (Objective objective :
       {Objective::None, Objective::MinimizeRuntime, Objective::MinimizeStorage,
        Objective::MinimizeCommunication, Objective::MaximizeThroughput}) {
    if (wanted == objective_name(objective)) return objective;
  }
  throw NotFoundError("unknown objective '" + std::string(name) + "'");
}

Campaign::Campaign(std::string name, AppSpec app)
    : name_(std::move(name)), app_(std::move(app)) {
  if (name_.empty()) throw ValidationError("Campaign: name must be non-empty");
  if (app_.executable.empty()) {
    throw ValidationError("Campaign '" + name_ + "': app executable required");
  }
}

Campaign& Campaign::set_machine(std::string machine_name) {
  machine_ = std::move(machine_name);
  return *this;
}

Campaign& Campaign::set_objective(Objective objective) {
  objective_ = objective;
  return *this;
}

Campaign& Campaign::add_group(SweepGroup group) {
  for (const SweepGroup& existing : groups_) {
    if (existing.name() == group.name()) {
      throw ValidationError("Campaign '" + name_ + "': duplicate group '" +
                            group.name() + "'");
    }
  }
  groups_.push_back(std::move(group));
  return *this;
}

const SweepGroup& Campaign::group(std::string_view name) const {
  for (const SweepGroup& group : groups_) {
    if (group.name() == name) return group;
  }
  throw NotFoundError("Campaign '" + name_ + "': no group '" + std::string(name) +
                      "'");
}

size_t Campaign::total_runs() const noexcept {
  size_t total = 0;
  for (const SweepGroup& group : groups_) total += group.run_count();
  return total;
}

std::string Campaign::command_for(const RunSpec& run) const {
  if (app_.args_template.empty()) return app_.executable;
  Json context = Json::object();
  for (const auto& [key, value] : run.params) context[key] = value;
  const std::string args =
      skel::Template::parse(app_.args_template, "args:" + app_.name)
          .render(context);
  return app_.executable + " " + args;
}

Json Campaign::to_json() const {
  Json out = Json::object();
  out["name"] = name_;
  out["app"] = app_.to_json();
  out["machine"] = machine_;
  out["objective"] = std::string(objective_name(objective_));
  Json groups = Json::array();
  for (const SweepGroup& group : groups_) groups.push_back(group.to_json());
  out["groups"] = std::move(groups);
  return out;
}

Campaign Campaign::from_json(const Json& json) {
  Campaign campaign(json["name"].as_string(), AppSpec::from_json(json["app"]));
  campaign.set_machine(json.get_or("machine", "local"));
  campaign.set_objective(objective_from_name(json.get_or("objective", "none")));
  if (json.contains("groups")) {
    for (const Json& group : json["groups"].as_array()) {
      campaign.add_group(SweepGroup::from_json(group));
    }
  }
  return campaign;
}

}  // namespace ff::cheetah
