#include "cheetah/parameter.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::cheetah {

std::string_view param_layer_name(ParamLayer layer) noexcept {
  switch (layer) {
    case ParamLayer::Application: return "application";
    case ParamLayer::Middleware: return "middleware";
    case ParamLayer::System: return "system";
  }
  return "?";
}

ParamLayer param_layer_from_name(std::string_view name) {
  const std::string wanted = to_lower(name);
  for (ParamLayer layer :
       {ParamLayer::Application, ParamLayer::Middleware, ParamLayer::System}) {
    if (wanted == param_layer_name(layer)) return layer;
  }
  throw NotFoundError("unknown parameter layer '" + std::string(name) + "'");
}

Parameter::Parameter(std::string name, ParamLayer layer, std::vector<Json> values)
    : name_(std::move(name)), layer_(layer), values_(std::move(values)) {
  if (name_.empty()) throw ValidationError("Parameter: name must be non-empty");
  if (values_.empty()) {
    throw ValidationError("Parameter '" + name_ + "': needs at least one value");
  }
}

Parameter Parameter::int_range(std::string name, ParamLayer layer, int64_t lo,
                               int64_t hi, int64_t step) {
  if (step <= 0) throw ValidationError("Parameter::int_range: step must be positive");
  if (hi < lo) throw ValidationError("Parameter::int_range: hi < lo");
  std::vector<Json> values;
  for (int64_t v = lo; v <= hi; v += step) values.emplace_back(v);
  return Parameter(std::move(name), layer, std::move(values));
}

Parameter Parameter::linspace(std::string name, ParamLayer layer, double lo,
                              double hi, size_t count) {
  if (count == 0) throw ValidationError("Parameter::linspace: count must be > 0");
  std::vector<Json> values;
  if (count == 1) {
    values.emplace_back(lo);
  } else {
    for (size_t i = 0; i < count; ++i) {
      values.emplace_back(lo + (hi - lo) * static_cast<double>(i) /
                                   static_cast<double>(count - 1));
    }
  }
  return Parameter(std::move(name), layer, std::move(values));
}

Parameter Parameter::values(std::string name, ParamLayer layer,
                            std::vector<Json> values) {
  return Parameter(std::move(name), layer, std::move(values));
}

Json Parameter::to_json() const {
  Json out = Json::object();
  out["name"] = name_;
  out["layer"] = std::string(param_layer_name(layer_));
  Json list = Json::array();
  for (const Json& value : values_) list.push_back(value);
  out["values"] = std::move(list);
  return out;
}

Parameter Parameter::from_json(const Json& json) {
  std::vector<Json> values;
  for (const Json& value : json["values"].as_array()) values.push_back(value);
  return Parameter(json["name"].as_string(),
                   param_layer_from_name(json.get_or("layer", "application")),
                   std::move(values));
}

}  // namespace ff::cheetah
