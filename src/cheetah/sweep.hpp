#pragma once

#include <map>
#include <string>
#include <vector>

#include "cheetah/parameter.hpp"

namespace ff::cheetah {

/// One concrete run: an assignment of every swept parameter plus its
/// stable run id within the campaign.
struct RunSpec {
  std::string id;  // "run-0007"
  std::map<std::string, Json> params;

  Json to_json() const;
  const Json& param(std::string_view name) const;
};

/// A Sweep is the cross product of its parameters. Iteration order is
/// row-major in parameter insertion order (last parameter varies fastest),
/// matching what users expect from nested loops.
class Sweep {
 public:
  explicit Sweep(std::string name = "sweep") : name_(std::move(name)) {}

  Sweep& add(Parameter parameter);

  /// A *derived* parameter: computed per run from the swept parameters via
  /// a Skel template (e.g. ranks = "{{nodes}}" ... "x6", or an output path
  /// "out_{{feature}}.bp"). This captures relationships between variables
  /// — the ParameterRelations tier of the Customizability gauge — so they
  /// live in the model instead of in someone's head. The rendered text is
  /// stored as an int when it parses as one, else as a string.
  Sweep& add_derived(std::string name, std::string template_text);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Parameter>& parameters() const noexcept { return parameters_; }
  const std::vector<std::pair<std::string, std::string>>& derived() const noexcept {
    return derived_;
  }

  /// Total runs in the cross product (1 when no parameters: a single run).
  size_t run_count() const noexcept;

  /// Materialize the cross product. Ids are `prefix` + zero-padded index.
  std::vector<RunSpec> generate(const std::string& id_prefix = "run-") const;

  Json to_json() const;
  static Sweep from_json(const Json& json);

 private:
  std::string name_;
  std::vector<Parameter> parameters_;
  std::vector<std::pair<std::string, std::string>> derived_;  // name -> template
};

/// A SweepGroup bundles sweeps that share a batch-job footprint (nodes,
/// walltime, concurrency cap) and is the unit of submission/re-submission
/// in Savanna.
class SweepGroup {
 public:
  explicit SweepGroup(std::string name) : name_(std::move(name)) {}

  SweepGroup& add(Sweep sweep);
  SweepGroup& set_nodes(int nodes);
  SweepGroup& set_walltime_s(double walltime_s);
  SweepGroup& set_max_concurrent(int max_concurrent);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Sweep>& sweeps() const noexcept { return sweeps_; }
  int nodes() const noexcept { return nodes_; }
  double walltime_s() const noexcept { return walltime_s_; }
  int max_concurrent() const noexcept { return max_concurrent_; }

  size_t run_count() const noexcept;
  /// All runs across sweeps, ids "group/sweep/run-NNNN".
  std::vector<RunSpec> generate() const;

  Json to_json() const;
  static SweepGroup from_json(const Json& json);

 private:
  std::string name_;
  std::vector<Sweep> sweeps_;
  int nodes_ = 1;
  double walltime_s_ = 7200;
  int max_concurrent_ = 0;  // 0 = one run per node
};

}  // namespace ff::cheetah
