#pragma once

#include <cstddef>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "cheetah/parameter.hpp"

namespace ff::cheetah {

/// One concrete run: an assignment of every swept parameter plus its
/// stable run id within the campaign.
struct RunSpec {
  std::string id;  // "run-0007"
  std::map<std::string, Json> params;

  Json to_json() const;
  const Json& param(std::string_view name) const;
};

/// A Sweep is the cross product of its parameters. Iteration order is
/// row-major in parameter insertion order (last parameter varies fastest),
/// matching what users expect from nested loops.
class Sweep {
 public:
  explicit Sweep(std::string name = "sweep") : name_(std::move(name)) {}

  Sweep& add(Parameter parameter);

  /// A *derived* parameter: computed per run from the swept parameters via
  /// a Skel template (e.g. ranks = "{{nodes}}" ... "x6", or an output path
  /// "out_{{feature}}.bp"). This captures relationships between variables
  /// — the ParameterRelations tier of the Customizability gauge — so they
  /// live in the model instead of in someone's head. The rendered text is
  /// stored as an int when it parses as one, else as a string.
  Sweep& add_derived(std::string name, std::string template_text);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Parameter>& parameters() const noexcept { return parameters_; }
  const std::vector<std::pair<std::string, std::string>>& derived() const noexcept {
    return derived_;
  }

  /// Total runs in the cross product (1 when no parameters: a single run).
  /// Cannot overflow: add() rejects a parameter whose cardinality would push
  /// the product past size_t (ValidationError), so index decode in run_at()
  /// is always exact.
  size_t run_count() const noexcept;

  /// Decode a single index of the cross product — the same row-major order
  /// and id scheme as generate(), computed directly from `index` without
  /// touching the other runs. This is what makes 10^6-run sweeps cheap:
  /// iteration is O(parameters) per run and O(1) memory overall.
  RunSpec run_at(size_t index, const std::string& id_prefix = "run-") const;

  /// Lazy forward iterator over the cross product; dereferencing decodes
  /// the run on demand via run_at(). Invalidated if the Sweep mutates.
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = RunSpec;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = RunSpec;

    iterator() = default;
    iterator(const Sweep* sweep, size_t index, const std::string* prefix)
        : sweep_(sweep), index_(index), prefix_(prefix) {}
    RunSpec operator*() const { return sweep_->run_at(index_, *prefix_); }
    iterator& operator++() { ++index_; return *this; }
    iterator operator++(int) { iterator old = *this; ++index_; return old; }
    bool operator==(const iterator& other) const { return index_ == other.index_; }
    bool operator!=(const iterator& other) const { return !(*this == other); }

   private:
    const Sweep* sweep_ = nullptr;
    size_t index_ = 0;
    const std::string* prefix_ = nullptr;
  };

  /// A borrowed view over the cross product (`for (RunSpec run : sweep.runs())`).
  /// Holds the id prefix; must not outlive the Sweep.
  class RunRange {
   public:
    RunRange(const Sweep* sweep, std::string prefix)
        : sweep_(sweep), prefix_(std::move(prefix)) {}
    iterator begin() const { return iterator(sweep_, 0, &prefix_); }
    iterator end() const { return iterator(sweep_, sweep_->run_count(), &prefix_); }

   private:
    const Sweep* sweep_;
    std::string prefix_;
  };
  RunRange runs(const std::string& id_prefix = "run-") const {
    return RunRange(this, id_prefix);
  }

  /// Materialize the cross product. Ids are `prefix` + zero-padded index.
  /// Prefer runs()/run_at() at scale; this is a convenience wrapper that
  /// holds every RunSpec in memory at once.
  std::vector<RunSpec> generate(const std::string& id_prefix = "run-") const;

  Json to_json() const;
  static Sweep from_json(const Json& json);

 private:
  std::string name_;
  std::vector<Parameter> parameters_;
  std::vector<std::pair<std::string, std::string>> derived_;  // name -> template
};

/// A SweepGroup bundles sweeps that share a batch-job footprint (nodes,
/// walltime, concurrency cap) and is the unit of submission/re-submission
/// in Savanna.
class SweepGroup {
 public:
  explicit SweepGroup(std::string name) : name_(std::move(name)) {}

  SweepGroup& add(Sweep sweep);
  SweepGroup& set_nodes(int nodes);
  SweepGroup& set_walltime_s(double walltime_s);
  SweepGroup& set_max_concurrent(int max_concurrent);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Sweep>& sweeps() const noexcept { return sweeps_; }
  int nodes() const noexcept { return nodes_; }
  double walltime_s() const noexcept { return walltime_s_; }
  int max_concurrent() const noexcept { return max_concurrent_; }

  size_t run_count() const noexcept;

  /// Lazy forward iterator over every run of every sweep, in sweep order,
  /// ids "group/sweep/run-NNNN" — the submission path for million-run
  /// groups, where materializing the RunSpec vector is the O(n) pain.
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = RunSpec;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = RunSpec;

    iterator() = default;
    iterator(const SweepGroup* group, size_t sweep_index);
    RunSpec operator*() const;
    iterator& operator++();
    iterator operator++(int) { iterator old = *this; ++(*this); return old; }
    bool operator==(const iterator& other) const {
      return sweep_index_ == other.sweep_index_ && run_index_ == other.run_index_;
    }
    bool operator!=(const iterator& other) const { return !(*this == other); }

   private:
    void settle();  // skip empty sweeps; refresh the cached count/prefix

    const SweepGroup* group_ = nullptr;
    size_t sweep_index_ = 0;
    size_t run_index_ = 0;
    size_t sweep_count_ = 0;   // run_count() of the current sweep, cached
    std::string id_prefix_;    // "group/sweep/run-", cached per sweep
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, sweeps_.size()); }

  /// Visit every run without materializing the vector.
  template <typename Fn>
  void for_each_run(Fn&& fn) const {
    for (auto it = begin(), stop = end(); it != stop; ++it) fn(*it);
  }

  /// All runs across sweeps, ids "group/sweep/run-NNNN". Convenience
  /// wrapper over the lazy iterator; O(total runs) memory.
  std::vector<RunSpec> generate() const;

  Json to_json() const;
  static SweepGroup from_json(const Json& json);

 private:
  std::string name_;
  std::vector<Sweep> sweeps_;
  int nodes_ = 1;
  double walltime_s_ = 7200;
  int max_concurrent_ = 0;  // 0 = one run per node
};

}  // namespace ff::cheetah
