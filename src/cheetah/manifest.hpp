#pragma once

#include "cheetah/campaign.hpp"
#include "skel/model.hpp"

namespace ff::cheetah {

/// The Cheetah↔Savanna interoperability layer (paper Section IV): an
/// abstract manifest with a JSON schema describing the full campaign. Any
/// workflow engine that understands this schema can execute the campaign —
/// which is how the design "allows us to import existing workflow tools".
skel::ModelSchema campaign_manifest_schema();

/// Validate a manifest document; throws ValidationError with all problems.
void validate_manifest(const Json& manifest);

/// Round-trip helpers used at the Cheetah→Savanna boundary. to_manifest
/// validates on the way out; campaign_from_manifest validates on the way in
/// (defence in depth: the file may have been hand-edited between tools).
Json to_manifest(const Campaign& campaign);
Campaign campaign_from_manifest(const Json& manifest);

}  // namespace ff::cheetah
