#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cheetah/sweep.hpp"

namespace ff::cheetah {

/// The application a campaign runs: executable plus an argument template
/// whose {{param}} placeholders are filled from each RunSpec (via the Skel
/// template engine at manifest time).
struct AppSpec {
  std::string name;
  std::string executable;
  std::string args_template;  // e.g. "--feature {{feature}} --iters {{iters}}"

  Json to_json() const;
  static AppSpec from_json(const Json& json);
};

/// The codesign *objective* of a campaign (paper Section II-C): what the
/// study is optimizing for. Purely declarative metadata consumed by
/// query/reporting tools.
enum class Objective : uint8_t {
  None,
  MinimizeRuntime,
  MinimizeStorage,
  MinimizeCommunication,
  MaximizeThroughput,
};

std::string_view objective_name(Objective objective) noexcept;
Objective objective_from_name(std::string_view name);

/// A Campaign: the fundamental model of Cheetah. Composes SweepGroups over
/// an application for a target machine, then emits the abstract manifest
/// that Savanna executes. The user never touches directory schemas or
/// scheduler syntax.
class Campaign {
 public:
  Campaign(std::string name, AppSpec app);

  Campaign& set_machine(std::string machine_name);
  Campaign& set_objective(Objective objective);
  Campaign& add_group(SweepGroup group);

  const std::string& name() const noexcept { return name_; }
  const AppSpec& app() const noexcept { return app_; }
  const std::string& machine() const noexcept { return machine_; }
  Objective objective() const noexcept { return objective_; }
  const std::vector<SweepGroup>& groups() const noexcept { return groups_; }
  const SweepGroup& group(std::string_view name) const;

  size_t total_runs() const noexcept;

  /// Command line for one run: executable + instantiated args template.
  std::string command_for(const RunSpec& run) const;

  Json to_json() const;
  static Campaign from_json(const Json& json);

 private:
  std::string name_;
  AppSpec app_;
  std::string machine_ = "local";
  Objective objective_ = Objective::None;
  std::vector<SweepGroup> groups_;
};

}  // namespace ff::cheetah
