#include "ckpt/policy.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::ckpt {

FixedIntervalPolicy::FixedIntervalPolicy(int interval) : interval_(interval) {
  if (interval <= 0) throw ValidationError("FixedIntervalPolicy: interval must be > 0");
}

bool FixedIntervalPolicy::should_checkpoint(const CheckpointContext& context) const {
  return (context.step + 1) % interval_ == 0;
}

std::string FixedIntervalPolicy::name() const {
  return "fixed-interval(" + std::to_string(interval_) + ")";
}

OverheadBoundedPolicy::OverheadBoundedPolicy(double max_overhead)
    : max_overhead_(max_overhead) {
  if (max_overhead <= 0 || max_overhead >= 1) {
    throw ValidationError("OverheadBoundedPolicy: overhead must be in (0,1)");
  }
}

bool OverheadBoundedPolicy::should_checkpoint(const CheckpointContext& context) const {
  // Would writing now keep (total I/O)/(total runtime) within the budget?
  const double io_after = context.cumulative_io_s + context.estimated_write_s;
  const double runtime_after = context.now_s + context.estimated_write_s;
  if (runtime_after <= 0) return false;
  return io_after / runtime_after <= max_overhead_;
}

std::string OverheadBoundedPolicy::name() const {
  return "overhead-bounded(" + format_fixed(max_overhead_ * 100, 0) + "%)";
}

MinimumFrequencyPolicy::MinimumFrequencyPolicy(double max_gap_s)
    : max_gap_s_(max_gap_s) {
  if (max_gap_s <= 0) throw ValidationError("MinimumFrequencyPolicy: gap must be > 0");
}

bool MinimumFrequencyPolicy::should_checkpoint(const CheckpointContext& context) const {
  return context.now_s - context.last_checkpoint_s >= max_gap_s_;
}

std::string MinimumFrequencyPolicy::name() const {
  return "min-frequency(" + format_duration(max_gap_s_) + ")";
}

ForcedOnHighCostPolicy::ForcedOnHighCostPolicy(double nominal_write_s,
                                               double cost_ratio)
    : nominal_write_s_(nominal_write_s), cost_ratio_(cost_ratio) {
  if (nominal_write_s <= 0 || cost_ratio <= 1.0) {
    throw ValidationError(
        "ForcedOnHighCostPolicy: need nominal cost > 0 and ratio > 1");
  }
}

bool ForcedOnHighCostPolicy::should_checkpoint(
    const CheckpointContext& context) const {
  return context.recent_write_s >= nominal_write_s_ * cost_ratio_;
}

std::string ForcedOnHighCostPolicy::name() const {
  return "forced-on-high-cost(x" + format_fixed(cost_ratio_, 1) + ")";
}

AnyPolicy::AnyPolicy(std::vector<std::shared_ptr<CheckpointPolicy>> policies)
    : policies_(std::move(policies)) {
  if (policies_.empty()) throw ValidationError("AnyPolicy: needs at least one policy");
}

bool AnyPolicy::should_checkpoint(const CheckpointContext& context) const {
  for (const auto& policy : policies_) {
    if (policy->should_checkpoint(context)) return true;
  }
  return false;
}

std::string AnyPolicy::name() const {
  std::vector<std::string> names;
  for (const auto& policy : policies_) names.push_back(policy->name());
  return "any(" + join(names, ", ") + ")";
}

AllPolicy::AllPolicy(std::vector<std::shared_ptr<CheckpointPolicy>> policies)
    : policies_(std::move(policies)) {
  if (policies_.empty()) throw ValidationError("AllPolicy: needs at least one policy");
}

bool AllPolicy::should_checkpoint(const CheckpointContext& context) const {
  for (const auto& policy : policies_) {
    if (!policy->should_checkpoint(context)) return false;
  }
  return true;
}

std::string AllPolicy::name() const {
  std::vector<std::string> names;
  for (const auto& policy : policies_) names.push_back(policy->name());
  return "all(" + join(names, ", ") + ")";
}

}  // namespace ff::ckpt
