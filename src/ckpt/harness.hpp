#pragma once

#include <memory>
#include <vector>

#include "ckpt/policy.hpp"
#include "cluster/filesystem.hpp"
#include "cluster/machine.hpp"
#include "util/rng.hpp"

namespace ff::ckpt {

/// Configuration of a Summit-scale simulated run: the paper's setup was
/// 4096 ranks over 128 nodes, 50 timesteps, ~1 TB output per timestep.
struct AppConfig {
  int steps = 50;
  int nodes = 128;
  int ranks = 4096;
  double bytes_per_step = 1e12;       // checkpoint size (1 TB)
  double compute_per_step_s = 120;    // nominal compute time per step
  double compute_variability = 0.15;  // relative stddev of step compute time
  /// Extra communication fraction: "configured to perform more/less
  /// computations and communication" between Fig. 4 runs.
  double comm_fraction = 0.2;
  /// Fraction of the job's linear bandwidth share it actually achieves
  /// (real GPFS writes from N of M nodes land well under N/M of peak).
  double io_efficiency = 0.35;
};

/// What one simulated run produced. checkpoint I/O is *blocking*: a written
/// checkpoint extends the run, which is exactly the overhead the policy
/// bounds.
struct StepRecord {
  int step = 0;
  double compute_s = 0;
  double write_s = 0;       // 0 when no checkpoint was written
  bool checkpointed = false;
  double overhead_so_far = 0;  // cumulative io / cumulative runtime after step
};

struct RunResult {
  int checkpoints_written = 0;
  double total_runtime_s = 0;
  double total_io_s = 0;
  std::vector<StepRecord> steps;
  std::vector<double> checkpoint_times_s;  // when each checkpoint finished

  double overhead_fraction() const {
    return total_runtime_s > 0 ? total_io_s / total_runtime_s : 0;
  }
};

/// The I/O-middleware-in-the-loop harness: runs `config.steps` timesteps on
/// the simulated machine, consulting `policy` at each step boundary with a
/// fully populated CheckpointContext (including the filesystem's current
/// estimated write cost). This is the code path behind Fig. 3 and Fig. 4.
RunResult run_simulated_app(const AppConfig& config,
                            const CheckpointPolicy& policy,
                            const sim::MachineSpec& machine, uint64_t seed);

/// Work lost if the run fails at `failure_time_s`: time since the last
/// checkpoint that *completed* before the failure (or since start).
double lost_work_at(const RunResult& result, double failure_time_s);

/// Expected lost work under uniformly distributed failure time over the
/// run — the quantity a checkpoint policy actually trades off against its
/// I/O overhead.
double expected_lost_work(const RunResult& result);

}  // namespace ff::ckpt
