#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ff::ckpt {

/// Everything a checkpoint policy may consult when the application reaches
/// a checkpointable boundary (end of a timestep). The I/O middleware fills
/// this in; policies stay pure functions of it.
struct CheckpointContext {
  int step = 0;                    // timestep index (0-based)
  double now_s = 0;                // virtual time since application start
  double last_checkpoint_s = 0;    // time of last checkpoint (0 if none yet)
  int checkpoints_written = 0;
  double cumulative_io_s = 0;      // total checkpoint I/O time so far
  double estimated_write_s = 0;    // middleware's estimate for writing now
  double recent_write_s = 0;       // observed cost of the previous write (0 if none)
};

/// A checkpoint policy: the paper's point (Section V-B) is that exposing
/// *intent-level* parameters (wall-clock gap, acceptable I/O overhead)
/// instead of "every N timesteps" makes the component reusable across
/// systems without retuning.
class CheckpointPolicy {
 public:
  virtual ~CheckpointPolicy() = default;
  virtual bool should_checkpoint(const CheckpointContext& context) const = 0;
  virtual std::string name() const = 0;
};

/// The traditional baseline: checkpoint every `interval` timesteps.
class FixedIntervalPolicy final : public CheckpointPolicy {
 public:
  explicit FixedIntervalPolicy(int interval);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;

 private:
  int interval_;
};

/// The paper's demonstrated policy: checkpoint only while cumulative
/// checkpoint-I/O time (including the write under consideration) stays
/// within `max_overhead` (fraction of total application runtime).
class OverheadBoundedPolicy final : public CheckpointPolicy {
 public:
  explicit OverheadBoundedPolicy(double max_overhead);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;
  double max_overhead() const noexcept { return max_overhead_; }

 private:
  double max_overhead_;
};

/// Fine-tuning from the paper: "ensure a certain minimum frequency of
/// checkpointing" — force a checkpoint when more than `max_gap_s` of
/// virtual time has passed since the last one.
class MinimumFrequencyPolicy final : public CheckpointPolicy {
 public:
  explicit MinimumFrequencyPolicy(double max_gap_s);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;

 private:
  double max_gap_s_;
};

/// The paper's other refinement: "an abnormally high I/O cost may be
/// indicative of a system more prone to failure, and thus force a
/// checkpoint": trigger when the previous write cost at least
/// `cost_ratio` times the estimate for a healthy system.
class ForcedOnHighCostPolicy final : public CheckpointPolicy {
 public:
  ForcedOnHighCostPolicy(double nominal_write_s, double cost_ratio);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;

 private:
  double nominal_write_s_;
  double cost_ratio_;
};

/// Combinators so policies compose declaratively ("policies can be
/// constructed using a combination of some or all of the exposed
/// parameters").
class AnyPolicy final : public CheckpointPolicy {
 public:
  explicit AnyPolicy(std::vector<std::shared_ptr<CheckpointPolicy>> policies);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;

 private:
  std::vector<std::shared_ptr<CheckpointPolicy>> policies_;
};

class AllPolicy final : public CheckpointPolicy {
 public:
  explicit AllPolicy(std::vector<std::shared_ptr<CheckpointPolicy>> policies);
  bool should_checkpoint(const CheckpointContext& context) const override;
  std::string name() const override;

 private:
  std::vector<std::shared_ptr<CheckpointPolicy>> policies_;
};

}  // namespace ff::ckpt
