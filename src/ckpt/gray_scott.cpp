#include "ckpt/gray_scott.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ff::ckpt {

GrayScott::GrayScott(const Params& params, uint64_t seed) : params_(params) {
  if (params.width < 3 || params.height < 3) {
    throw ValidationError("GrayScott: grid must be at least 3x3");
  }
  const size_t n = params.width * params.height;
  u_.assign(n, 1.0);
  v_.assign(n, 0.0);
  u_next_.resize(n);
  v_next_.resize(n);
  // Seed a square of reactant in the middle plus a little noise so the
  // pattern breaks symmetry (as the standard benchmark does).
  Rng rng(seed);
  const size_t cx = params.width / 2;
  const size_t cy = params.height / 2;
  const size_t r = std::min(params.width, params.height) / 8 + 1;
  for (size_t y = cy - r; y <= cy + r; ++y) {
    for (size_t x = cx - r; x <= cx + r; ++x) {
      u_[index(x, y)] = 0.50 + 0.02 * rng.uniform(-1, 1);
      v_[index(x, y)] = 0.25 + 0.02 * rng.uniform(-1, 1);
    }
  }
}

void GrayScott::step() {
  const size_t width = params_.width;
  const size_t height = params_.height;
  for (size_t y = 0; y < height; ++y) {
    const size_t up = (y + height - 1) % height;
    const size_t down = (y + 1) % height;
    for (size_t x = 0; x < width; ++x) {
      const size_t left = (x + width - 1) % width;
      const size_t right = (x + 1) % width;
      const size_t here = index(x, y);
      const double u = u_[here];
      const double v = v_[here];
      const double lap_u = u_[index(left, y)] + u_[index(right, y)] +
                           u_[index(x, up)] + u_[index(x, down)] - 4.0 * u;
      const double lap_v = v_[index(left, y)] + v_[index(right, y)] +
                           v_[index(x, up)] + v_[index(x, down)] - 4.0 * v;
      const double reaction = u * v * v;
      u_next_[here] =
          u + params_.dt * (params_.du * lap_u - reaction + params_.feed * (1.0 - u));
      v_next_[here] =
          v + params_.dt *
                  (params_.dv * lap_v + reaction - (params_.feed + params_.kill) * v);
    }
  }
  u_.swap(u_next_);
  v_.swap(v_next_);
  ++step_;
}

void GrayScott::steps(int count) {
  for (int i = 0; i < count; ++i) step();
}

double GrayScott::v_mass() const {
  double total = 0;
  for (double value : v_) total += value;
  return total;
}

size_t GrayScott::checkpoint_bytes() const noexcept {
  return sizeof(Params) + sizeof(int) + 2 * u_.size() * sizeof(double);
}

namespace {

template <typename T>
void append_raw(std::vector<uint8_t>& blob, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  blob.insert(blob.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_raw(const std::vector<uint8_t>& blob, size_t& offset) {
  if (offset + sizeof(T) > blob.size()) {
    throw ParseError("GrayScott::restore: truncated checkpoint");
  }
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<uint8_t> GrayScott::checkpoint() const {
  std::vector<uint8_t> blob;
  blob.reserve(checkpoint_bytes());
  append_raw(blob, params_);
  append_raw(blob, step_);
  for (double value : u_) append_raw(blob, value);
  for (double value : v_) append_raw(blob, value);
  return blob;
}

GrayScott GrayScott::restore(const std::vector<uint8_t>& blob) {
  size_t offset = 0;
  GrayScott out;
  out.params_ = read_raw<Params>(blob, offset);
  out.step_ = read_raw<int>(blob, offset);
  const size_t n = out.params_.width * out.params_.height;
  if (n == 0 || n > (1u << 26)) {
    throw ParseError("GrayScott::restore: implausible grid size");
  }
  out.u_.resize(n);
  out.v_.resize(n);
  out.u_next_.resize(n);
  out.v_next_.resize(n);
  for (size_t i = 0; i < n; ++i) out.u_[i] = read_raw<double>(blob, offset);
  for (size_t i = 0; i < n; ++i) out.v_[i] = read_raw<double>(blob, offset);
  if (offset != blob.size()) {
    throw ParseError("GrayScott::restore: trailing bytes in checkpoint");
  }
  return out;
}

}  // namespace ff::ckpt
