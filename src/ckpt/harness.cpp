#include "ckpt/harness.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::ckpt {

RunResult run_simulated_app(const AppConfig& config,
                            const CheckpointPolicy& policy,
                            const sim::MachineSpec& machine, uint64_t seed) {
  if (config.steps <= 0 || config.nodes <= 0 || config.bytes_per_step <= 0 ||
      config.compute_per_step_s <= 0) {
    throw ValidationError("run_simulated_app: bad AppConfig");
  }
  sim::SharedFilesystem fs(machine, seed);
  Rng rng(splitmix64(seed ^ 0xc0ffeeULL));
  // A job only commands its node-share of the machine's aggregate
  // filesystem bandwidth (writers scale with nodes, as on Summit/Alpine).
  const double bandwidth_share =
      std::min(1.0, static_cast<double>(config.nodes) /
                        static_cast<double>(std::max(1, machine.nodes)));
  if (config.io_efficiency <= 0 || config.io_efficiency > 1) {
    throw ValidationError("run_simulated_app: io_efficiency must be in (0,1]");
  }
  const double share_penalty = 1.0 / (bandwidth_share * config.io_efficiency);

  RunResult result;
  double now = 0;
  double last_checkpoint = 0;
  double recent_write = 0;
  for (int step = 0; step < config.steps; ++step) {
    // Compute phase: nominal time with multiplicative variability, plus a
    // communication share that grows with rank count (weak-scaling tax).
    const double noise = std::max(0.2, 1.0 + config.compute_variability * rng.normal());
    const double comm = config.comm_fraction *
                        (1.0 + 0.05 * std::log2(std::max(2, config.ranks)));
    const double compute_s = config.compute_per_step_s * noise * (1.0 + comm);
    now += compute_s;

    StepRecord record;
    record.step = step;
    record.compute_s = compute_s;

    CheckpointContext context;
    context.step = step;
    context.now_s = now;
    context.last_checkpoint_s = last_checkpoint;
    context.checkpoints_written = result.checkpoints_written;
    context.cumulative_io_s = result.total_io_s;
    context.estimated_write_s =
        fs.write_seconds(config.bytes_per_step, now) * share_penalty;
    context.recent_write_s = recent_write;

    const bool write = policy.should_checkpoint(context);
    obs::trace_instant_at(now, "ckpt", "ckpt.decision",
                          {{"step", step},
                           {"write", write},
                           {"estimated_write_s", context.estimated_write_s}});
    if (write) {
      // The actual write may cost slightly differently than the estimate
      // (load moves while writing); sample at the post-write time frontier.
      const double write_s = context.estimated_write_s;
      now += write_s;
      result.total_io_s += write_s;
      ++result.checkpoints_written;
      result.checkpoint_times_s.push_back(now);
      last_checkpoint = now;
      recent_write = write_s;
      record.write_s = write_s;
      record.checkpointed = true;
      obs::trace_instant_at(now, "ckpt", "ckpt.write",
                            {{"step", step},
                             {"write_s", write_s},
                             {"bytes", config.bytes_per_step}});
    }
    record.overhead_so_far = now > 0 ? result.total_io_s / now : 0;
    obs::trace_counter_at(now, "ckpt", "ckpt.overhead", record.overhead_so_far);
    result.steps.push_back(record);
  }
  result.total_runtime_s = now;
  return result;
}

double lost_work_at(const RunResult& result, double failure_time_s) {
  if (failure_time_s < 0) throw ValidationError("lost_work_at: negative time");
  const double t = std::min(failure_time_s, result.total_runtime_s);
  double last_before = 0;
  for (double checkpoint_time : result.checkpoint_times_s) {
    if (checkpoint_time <= t) last_before = checkpoint_time;
  }
  return t - last_before;
}

double expected_lost_work(const RunResult& result) {
  // E[t - last_ckpt(t)] for t ~ U(0, T): sum of interval^2 / (2T) over the
  // intervals between consecutive checkpoints (and the edges).
  const double total = result.total_runtime_s;
  if (total <= 0) return 0;
  double previous = 0;
  double accumulator = 0;
  for (double checkpoint_time : result.checkpoint_times_s) {
    const double interval = checkpoint_time - previous;
    accumulator += interval * interval / 2.0;
    previous = checkpoint_time;
  }
  const double tail = total - previous;
  accumulator += tail * tail / 2.0;
  return accumulator / total;
}

}  // namespace ff::ckpt
