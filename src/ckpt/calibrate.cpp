#include "ckpt/calibrate.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ff::ckpt {

KernelCalibration calibrate_gray_scott(GrayScott& app, int steps) {
  if (steps <= 1) throw ValidationError("calibrate_gray_scott: need >= 2 steps");
  using Clock = std::chrono::steady_clock;
  RunningStats stats;
  for (int i = 0; i < steps; ++i) {
    const auto start = Clock::now();
    app.step();
    stats.add(std::chrono::duration<double>(Clock::now() - start).count());
  }
  KernelCalibration calibration;
  calibration.mean_step_s = stats.mean();
  calibration.variability =
      stats.mean() > 0 ? stats.stddev() / stats.mean() : 0.0;
  calibration.steps_measured = steps;
  return calibration;
}

AppConfig scaled_app_config(const KernelCalibration& calibration,
                            double target_step_s, int steps, int nodes,
                            int ranks, double bytes_per_step) {
  if (calibration.steps_measured == 0) {
    throw ValidationError("scaled_app_config: empty calibration");
  }
  if (target_step_s <= 0) {
    throw ValidationError("scaled_app_config: target step time must be positive");
  }
  AppConfig config;
  config.steps = steps;
  config.nodes = nodes;
  config.ranks = ranks;
  config.bytes_per_step = bytes_per_step;
  config.compute_per_step_s = target_step_s;
  config.compute_variability = std::max(0.05, calibration.variability);
  return config;
}

}  // namespace ff::ckpt
