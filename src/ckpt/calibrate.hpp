#pragma once

#include "ckpt/gray_scott.hpp"
#include "ckpt/harness.hpp"

namespace ff::ckpt {

/// Measured timing behaviour of the real kernel on this host: mean
/// wall-seconds per step and the relative step-to-step variability. This
/// is what licenses the Summit-scale substitution (DESIGN.md §2): the
/// harness only consumes (step time, variability), and we take the
/// variability from the genuine computation instead of inventing it.
struct KernelCalibration {
  double mean_step_s = 0;
  double variability = 0;  // relative stddev of per-step time
  int steps_measured = 0;
};

/// Run `steps` real steps of `app` and time each one.
KernelCalibration calibrate_gray_scott(GrayScott& app, int steps);

/// Build a Summit-scale AppConfig from a calibration: per-step compute is
/// scaled to `target_step_s` (the big machine's step time) while the
/// *relative* variability is inherited from the measured kernel (floored
/// at 5% — the shared machine adds jitter a dedicated host does not see).
AppConfig scaled_app_config(const KernelCalibration& calibration,
                            double target_step_s, int steps, int nodes,
                            int ranks, double bytes_per_step);

}  // namespace ff::ckpt
