#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ff::ckpt {

/// A real Gray–Scott reaction-diffusion kernel — the paper's checkpoint
/// experiment ran "a common reaction-diffusion benchmark on Summit". This
/// is the actual computation (two coupled PDEs on a periodic 2D grid), kept
/// at laptop scale; the Summit-scale runs use SummitScaleHarness, which
/// only needs (step time, output size) pairs.
///
///   du/dt = Du ∇²u − u v² + F (1 − u)
///   dv/dt = Dv ∇²v + u v² − (F + k) v
class GrayScott {
 public:
  struct Params {
    size_t width = 64;
    size_t height = 64;
    double du = 0.16;
    double dv = 0.08;
    double feed = 0.060;   // F
    double kill = 0.062;   // k
    double dt = 1.0;
  };

  explicit GrayScott(const Params& params, uint64_t seed = 42);

  void step();
  void steps(int count);

  int current_step() const noexcept { return step_; }
  const Params& params() const noexcept { return params_; }
  const std::vector<double>& u() const noexcept { return u_; }
  const std::vector<double>& v() const noexcept { return v_; }

  /// Interesting-pattern metric: total v mass (grows as spots form).
  double v_mass() const;

  /// Serialize full state (checkpoint) / restore from it (restart).
  /// The blob is self-contained: params, step counter, and both fields.
  std::vector<uint8_t> checkpoint() const;
  static GrayScott restore(const std::vector<uint8_t>& blob);

  /// Checkpoint size in bytes for this grid (what the I/O layer writes).
  size_t checkpoint_bytes() const noexcept;

 private:
  GrayScott() = default;
  Params params_;
  int step_ = 0;
  std::vector<double> u_;
  std::vector<double> v_;
  std::vector<double> u_next_;
  std::vector<double> v_next_;

  size_t index(size_t x, size_t y) const noexcept { return y * params_.width + x; }
};

}  // namespace ff::ckpt
