#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "stream/data.hpp"

namespace ff::stream {

/// A bounded multi-producer/multi-consumer channel of Records — the
/// in-process stand-in for the event-transport middleware the paper's
/// Fig. 5 workflow rides on (EVPath lineage). Blocking semantics with
/// backpressure: producers wait when the channel is full, consumers wait
/// when it is empty, and close() drains cleanly (producers may no longer
/// send; consumers see the remaining records, then nullopt).
class Channel {
 public:
  explicit Channel(size_t capacity);

  /// Blocking send. Returns false (without enqueueing) iff the channel was
  /// closed while waiting.
  bool send(Record record);

  /// Non-blocking send: false when full or closed.
  bool try_send(Record record);

  /// Blocking receive; nullopt once the channel is closed AND drained.
  std::optional<Record> receive();

  /// Non-blocking receive; nullopt when currently empty (check closed()
  /// to distinguish "not yet" from "never again").
  std::optional<Record> try_receive();

  void close();
  bool closed() const;

  size_t size() const;
  size_t capacity() const noexcept { return capacity_; }

  /// Lifetime counters (monotonic).
  uint64_t sent() const;
  uint64_t received() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Record> queue_;
  bool closed_ = false;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace ff::stream
