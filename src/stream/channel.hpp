#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "stream/data.hpp"

namespace ff::stream {

/// What a producer does when a bounded channel is full — the per-queue
/// knob of the concurrent Fig. 5 data plane. `Block` is lossless
/// backpressure (the EVPath-style transport default); the two lossy modes
/// serve monitoring taps that prefer freshness over completeness.
enum class Overflow : uint8_t {
  Block,       ///< wait until a consumer makes room (lossless)
  DropOldest,  ///< evict the oldest queued record to admit the new one
  KeepLatest,  ///< conflate: clear the queue, keep only the incoming record
};

const char* overflow_name(Overflow policy) noexcept;

/// Which channel implementation carries a queue's records. `Mutex` is the
/// original lock-based deque (simple, any capacity); the two ring kinds are
/// lock-free bounded rings (capacity rounded up to a power of two) built on
/// per-cell sequence numbers, with a futex-style park only after a bounded
/// spin. `Spsc` assumes a single producer thread at a time (the pipeline's
/// per-queue scheduler lock provides exactly that) and skips the producer
/// CAS; `Mpmc` is safe for any thread mix.
enum class ChannelKind : uint8_t { Mutex, Spsc, Mpmc };

const char* channel_kind_name(ChannelKind kind) noexcept;

/// Parse "mutex" / "spsc" / "mpmc"; throws ValidationError otherwise.
ChannelKind parse_channel_kind(std::string_view name);

/// A bounded channel of Records — the in-process stand-in for the
/// event-transport middleware the paper's Fig. 5 workflow rides on (EVPath
/// lineage). Blocking semantics with backpressure: producers wait when the
/// channel is full, consumers wait when it is empty, and close() drains
/// cleanly (producers may no longer send; consumers see the remaining
/// records, then nullopt).
///
/// This is the abstract transport API; make_channel() picks among the
/// mutex-based and lock-free ring implementations. All implementations
/// preserve the same counter identity — at quiescence
/// sent() == received() + dropped() + size().
class Channel {
 public:
  virtual ~Channel() = default;

  /// Blocking send. Returns false (without enqueueing) iff the channel was
  /// closed while waiting.
  virtual bool send(Record record) = 0;

  /// Non-blocking send: false when full or closed.
  virtual bool try_send(Record record) = 0;

  /// Overflow-policy send. `Block` behaves like send(); the lossy policies
  /// never block and report how many queued records they evicted.
  struct OfferResult {
    bool accepted = false;  ///< false only when the channel is closed
    size_t evicted = 0;     ///< records dropped to admit this one
  };
  virtual OfferResult offer(Record record, Overflow policy) = 0;

  /// Blocking receive; nullopt once the channel is closed AND drained.
  virtual std::optional<Record> receive() = 0;

  /// Non-blocking receive; nullopt when currently empty (check closed()
  /// to distinguish "not yet" from "never again").
  virtual std::optional<Record> try_receive() = 0;

  /// Blocking receive with a timeout; nullopt on timeout or once the
  /// channel is closed and drained (check closed() to distinguish).
  virtual std::optional<Record> receive_for(std::chrono::nanoseconds timeout) = 0;

  /// Non-blocking bulk receive: append up to `max` records to `out` and
  /// return how many were taken. One call amortizes the synchronization
  /// cost over the whole batch — the pipeline's drain path uses this so a
  /// strand dispatch no longer pays per record.
  virtual size_t drain_into(std::vector<Record>& out, size_t max) = 0;

  virtual void close() = 0;
  virtual bool closed() const = 0;

  /// close() and take every still-queued record (counted as received),
  /// waiting out any in-flight send. Used by pipeline shutdown to drain
  /// without a consumer race.
  virtual std::vector<Record> close_and_drain() = 0;

  virtual size_t size() const = 0;
  /// Actual bound (ring kinds round the requested capacity up to a power
  /// of two).
  virtual size_t capacity() const noexcept = 0;

  /// Lifetime counters (monotonic). `sent` counts accepted records,
  /// `received` records handed to consumers (incl. close_and_drain),
  /// `dropped` records evicted by lossy offer() policies — at quiescence
  /// sent() == received() + dropped() + size().
  virtual uint64_t sent() const = 0;
  virtual uint64_t received() const = 0;
  virtual uint64_t dropped() const = 0;

  /// Threads currently parked inside a blocking send()/offer(Block) or
  /// receive()/receive_for(). Test introspection: lets a test wait until a
  /// peer is genuinely blocked before it closes the channel, instead of
  /// sleeping and hoping.
  virtual size_t send_waiters() const = 0;
  virtual size_t receive_waiters() const = 0;

  virtual ChannelKind kind() const noexcept = 0;
};

/// Construct a channel of the given kind. Throws ValidationError when
/// capacity is 0 (every kind) or absurdly large (ring kinds, which allocate
/// their cells up front).
std::unique_ptr<Channel> make_channel(ChannelKind kind, size_t capacity);

/// The original mutex+condvar bounded MPMC deque. Any capacity, strict
/// FIFO, simplest possible reasoning — kept as the reference
/// implementation the lock-free rings are differential-tested against.
class MutexChannel final : public Channel {
 public:
  explicit MutexChannel(size_t capacity);

  bool send(Record record) override;
  bool try_send(Record record) override;
  OfferResult offer(Record record, Overflow policy) override;
  std::optional<Record> receive() override;
  std::optional<Record> try_receive() override;
  std::optional<Record> receive_for(std::chrono::nanoseconds timeout) override;
  size_t drain_into(std::vector<Record>& out, size_t max) override;
  void close() override;
  bool closed() const override;
  std::vector<Record> close_and_drain() override;
  size_t size() const override;
  size_t capacity() const noexcept override { return capacity_; }
  uint64_t sent() const override;
  uint64_t received() const override;
  uint64_t dropped() const override;
  size_t send_waiters() const override;
  size_t receive_waiters() const override;
  ChannelKind kind() const noexcept override { return ChannelKind::Mutex; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Record> queue_;
  bool closed_ = false;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t dropped_ = 0;
  size_t send_waiters_ = 0;
  size_t receive_waiters_ = 0;
};

/// Lock-free bounded ring on the per-cell sequence protocol (Vyukov's
/// bounded MPMC queue). Each cell carries an atomic sequence number that
/// encodes whose turn the cell is: a producer may claim cell `pos` when
/// `seq == pos`, publishes with `seq = pos + 1`; a consumer may take it
/// when `seq == pos + 1` and recycles it with `seq = pos + capacity`. The
/// record payload itself is transferred by the release-store/acquire-load
/// pair on the cell sequence — no fences are needed for data safety.
///
/// The dequeue side is always multi-consumer (CAS on dequeue_pos) even for
/// the SPSC kind, because the lossy overflow policies make the *producer*
/// dequeue-and-discard, so pops can race a real consumer. The SPSC kind
/// only relaxes the enqueue side: a single producer owns enqueue_pos and
/// advances it with a plain store instead of a CAS.
///
/// Blocking calls spin briefly (skipped outright on single-core hosts,
/// where spinning only steals the peer's timeslice), then park on a shared
/// mutex/condvar pad. Wake-up correctness uses the classic eventcount
/// discipline: the waiter registers itself, issues a seq_cst fence, then
/// re-checks; the waker completes its push/pop, issues a seq_cst fence,
/// then reads the waiter count — see DESIGN.md §3.5 for the full argument.
///
/// close_and_drain() coordination: senders take an in-flight ticket
/// (seq_cst RMW) before checking `closed`, so `close_and_drain` can set
/// `closed`, wait for the ticket count to hit zero, and then drain with
/// the guarantee that no concurrent push is still materializing.
class RingChannel final : public Channel {
 public:
  RingChannel(size_t capacity, ChannelKind kind);
  ~RingChannel() override;

  bool send(Record record) override;
  bool try_send(Record record) override;
  OfferResult offer(Record record, Overflow policy) override;
  std::optional<Record> receive() override;
  std::optional<Record> try_receive() override;
  std::optional<Record> receive_for(std::chrono::nanoseconds timeout) override;
  size_t drain_into(std::vector<Record>& out, size_t max) override;
  void close() override;
  bool closed() const override;
  std::vector<Record> close_and_drain() override;
  size_t size() const override;
  size_t capacity() const noexcept override { return capacity_; }
  uint64_t sent() const override;
  uint64_t received() const override;
  uint64_t dropped() const override;
  size_t send_waiters() const override;
  size_t receive_waiters() const override;
  ChannelKind kind() const noexcept override { return kind_; }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence{0};
    Record record;
  };

  bool push(Record& record);  ///< non-blocking; consumes `record` on success
  bool pop(Record& record);   ///< non-blocking; no counter updates
  /// push() wrapped in the in-flight ticket + closed check. Returns true
  /// when the record entered the ring; `rejected` reports a closed channel
  /// (as opposed to a full one).
  bool push_open(Record& record, bool& rejected);
  bool drained() const;  ///< closed, empty, and no send mid-publish
  void wake_senders();
  void wake_receivers();
  std::optional<Record> receive_until(
      const std::chrono::steady_clock::time_point* deadline);

  const ChannelKind kind_;
  const size_t capacity_;  // power of two (logical admission bound)
  /// Physical cell count: max(2, capacity_). A one-cell ring cannot
  /// disambiguate "occupied" (seq = pos + 1) from "recycled, free for the
  /// next lap" (seq = pos + cells) — they coincide when cells == 1 — so a
  /// capacity-1 ring runs on two cells with an explicit size gate in push().
  const size_t cells_n_;
  const uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;

  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> closed_{false};

  // Cold-path park pad: only touched after the bounded spin fails.
  mutable std::mutex park_mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::atomic<size_t> send_waiters_{0};
  std::atomic<size_t> receive_waiters_{0};
};

}  // namespace ff::stream
