#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "stream/data.hpp"

namespace ff::stream {

/// What a producer does when a bounded channel is full — the per-queue
/// knob of the concurrent Fig. 5 data plane. `Block` is lossless
/// backpressure (the EVPath-style transport default); the two lossy modes
/// serve monitoring taps that prefer freshness over completeness.
enum class Overflow : uint8_t {
  Block,       ///< wait until a consumer makes room (lossless)
  DropOldest,  ///< evict the oldest queued record to admit the new one
  KeepLatest,  ///< conflate: clear the queue, keep only the incoming record
};

const char* overflow_name(Overflow policy) noexcept;

/// A bounded multi-producer/multi-consumer channel of Records — the
/// in-process stand-in for the event-transport middleware the paper's
/// Fig. 5 workflow rides on (EVPath lineage). Blocking semantics with
/// backpressure: producers wait when the channel is full, consumers wait
/// when it is empty, and close() drains cleanly (producers may no longer
/// send; consumers see the remaining records, then nullopt).
class Channel {
 public:
  explicit Channel(size_t capacity);

  /// Blocking send. Returns false (without enqueueing) iff the channel was
  /// closed while waiting.
  bool send(Record record);

  /// Non-blocking send: false when full or closed.
  bool try_send(Record record);

  /// Overflow-policy send. `Block` behaves like send(); the lossy policies
  /// never block and report how many queued records they evicted.
  struct OfferResult {
    bool accepted = false;  ///< false only when the channel is closed
    size_t evicted = 0;     ///< records dropped to admit this one
  };
  OfferResult offer(Record record, Overflow policy);

  /// Blocking receive; nullopt once the channel is closed AND drained.
  std::optional<Record> receive();

  /// Non-blocking receive; nullopt when currently empty (check closed()
  /// to distinguish "not yet" from "never again").
  std::optional<Record> try_receive();

  /// Blocking receive with a timeout; nullopt on timeout or once the
  /// channel is closed and drained (check closed() to distinguish).
  std::optional<Record> receive_for(std::chrono::nanoseconds timeout);

  void close();
  bool closed() const;

  /// close() and atomically take every still-queued record (counted as
  /// received). Used by pipeline shutdown to drain without a consumer race.
  std::vector<Record> close_and_drain();

  size_t size() const;
  size_t capacity() const noexcept { return capacity_; }

  /// Lifetime counters (monotonic). `sent` counts accepted records,
  /// `received` records handed to consumers (incl. close_and_drain),
  /// `dropped` records evicted by lossy offer() policies — at quiescence
  /// sent() == received() + dropped() + size().
  uint64_t sent() const;
  uint64_t received() const;
  uint64_t dropped() const;

  /// Threads currently parked inside a blocking send()/offer(Block) or
  /// receive()/receive_for(). Test introspection: lets a test wait until a
  /// peer is genuinely blocked before it closes the channel, instead of
  /// sleeping and hoping.
  size_t send_waiters() const;
  size_t receive_waiters() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Record> queue_;
  bool closed_ = false;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t dropped_ = 0;
  size_t send_waiters_ = 0;
  size_t receive_waiters_ = 0;
};

}  // namespace ff::stream
