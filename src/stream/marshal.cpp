#include "stream/marshal.hpp"

#include <cstring>

#include "util/error.hpp"

namespace ff::stream {

namespace {

constexpr char kMagic[4] = {'F', 'F', 'B', '1'};

void put_u8(std::vector<uint8_t>& out, uint8_t value) { out.push_back(value); }

void put_u32(std::vector<uint8_t>& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void put_f64(std::vector<uint8_t>& out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool at_end() const { return offset_ >= bytes_.size(); }

  uint8_t u8() {
    need(1);
    return bytes_[offset_++];
  }
  uint32_t u32() {
    need(4);
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  uint64_t u64() {
    need(8);
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  double f64() {
    const uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  std::string string() {
    const uint32_t length = u32();
    need(length);  // validates before the allocation below

    std::string value(reinterpret_cast<const char*>(bytes_.data() + offset_), length);
    offset_ += length;
    return value;
  }

  /// Assert `count` bytes remain without consuming them.
  void need_ahead(size_t count) const { need(count); }

 private:
  void need(size_t count) const {
    if (count > bytes_.size() - offset_) {  // overflow-safe (offset_ <= size)
      throw ParseError("ffbin: truncated stream at offset " + std::to_string(offset_));
    }
  }
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
};

enum class Tag : uint8_t { Int = 1, Double = 2, String = 3, DoubleArray = 4 };

Tag tag_for(const std::string& type) {
  if (type == "int") return Tag::Int;
  if (type == "double") return Tag::Double;
  if (type == "string") return Tag::String;
  if (type == "double[]") return Tag::DoubleArray;
  throw ValidationError("ffbin: unsupported field type '" + type + "'");
}

}  // namespace

Encoder::Encoder(StreamSchema schema) : schema_(std::move(schema)) {
  for (char c : kMagic) buffer_.push_back(static_cast<uint8_t>(c));
  put_string(buffer_, schema_.name);
  put_u32(buffer_, static_cast<uint32_t>(schema_.version));
  put_u32(buffer_, static_cast<uint32_t>(schema_.fields.size()));
  for (const auto& field : schema_.fields) {
    put_string(buffer_, field.name);
    put_u8(buffer_, static_cast<uint8_t>(tag_for(field.type)));  // validates too
    put_string(buffer_, field.type);
  }
}

void Encoder::append(const Record& record) {
  validate_record(record, schema_);
  put_u64(buffer_, record.sequence);
  put_f64(buffer_, record.timestamp);
  put_u32(buffer_, static_cast<uint32_t>(record.values.size()));
  for (const Value& value : record.values) {
    put_u8(buffer_, static_cast<uint8_t>(value.index() + 1));
    switch (value.index()) {
      case 0: put_u64(buffer_, static_cast<uint64_t>(std::get<int64_t>(value))); break;
      case 1: put_f64(buffer_, std::get<double>(value)); break;
      case 2: put_string(buffer_, std::get<std::string>(value)); break;
      case 3: {
        const auto& array = std::get<std::vector<double>>(value);
        put_u32(buffer_, static_cast<uint32_t>(array.size()));
        for (double element : array) put_f64(buffer_, element);
        break;
      }
    }
  }
  ++count_;
}

DecodedStream decode_stream(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(reader.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw ParseError("ffbin: bad magic");
  }
  DecodedStream out;
  out.schema.name = reader.string();
  out.schema.version = static_cast<int>(reader.u32());
  const uint32_t field_count = reader.u32();
  for (uint32_t i = 0; i < field_count; ++i) {
    StreamSchema::Field field;
    field.name = reader.string();
    reader.u8();  // tag, redundant with the type string
    field.type = reader.string();
    out.schema.fields.push_back(std::move(field));
  }
  while (!reader.at_end()) {
    Record record;
    record.sequence = reader.u64();
    record.timestamp = reader.f64();
    const uint32_t value_count = reader.u32();
    for (uint32_t i = 0; i < value_count; ++i) {
      const uint8_t tag = reader.u8();
      switch (static_cast<Tag>(tag)) {
        case Tag::Int:
          record.values.emplace_back(static_cast<int64_t>(reader.u64()));
          break;
        case Tag::Double:
          record.values.emplace_back(reader.f64());
          break;
        case Tag::String:
          record.values.emplace_back(reader.string());
          break;
        case Tag::DoubleArray: {
          const uint32_t length = reader.u32();
          // Check the payload actually fits BEFORE reserving: a truncated or
          // corrupt stream must raise ParseError, not attempt a multi-GB
          // allocation off a garbage length prefix.
          reader.need_ahead(size_t{length} * 8);
          std::vector<double> array;
          array.reserve(length);
          for (uint32_t j = 0; j < length; ++j) array.push_back(reader.f64());
          record.values.emplace_back(std::move(array));
          break;
        }
        default:
          throw ParseError("ffbin: unknown type tag " + std::to_string(tag));
      }
    }
    validate_record(record, out.schema);
    out.records.push_back(std::move(record));
  }
  return out;
}

}  // namespace ff::stream
