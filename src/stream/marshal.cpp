#include "stream/marshal.hpp"

#include <cstring>

#include "util/error.hpp"

namespace ff::stream {

namespace {

constexpr char kMagic[4] = {'F', 'F', 'B', '1'};

void put_u8(std::vector<uint8_t>& out, uint8_t value) { out.push_back(value); }

void put_u32(std::vector<uint8_t>& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void put_f64(std::vector<uint8_t>& out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool at_end() const { return offset_ >= bytes_.size(); }

  uint8_t u8() {
    need(1);
    return bytes_[offset_++];
  }
  uint32_t u32() {
    need(4);
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  uint64_t u64() {
    need(8);
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(bytes_[offset_++]) << (8 * i);
    return value;
  }
  double f64() {
    const uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  std::string string() {
    const uint32_t length = u32();
    need(length);  // validates before the allocation below

    std::string value(reinterpret_cast<const char*>(bytes_.data() + offset_), length);
    offset_ += length;
    return value;
  }

  /// Assert `count` bytes remain without consuming them.
  void need_ahead(size_t count) const { need(count); }

 private:
  void need(size_t count) const {
    if (count > bytes_.size() - offset_) {  // overflow-safe (offset_ <= size)
      throw ParseError("ffbin: truncated stream at offset " + std::to_string(offset_));
    }
  }
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
};

enum class Tag : uint8_t { Int = 1, Double = 2, String = 3, DoubleArray = 4 };

Tag tag_for(const std::string& type) {
  if (type == "int") return Tag::Int;
  if (type == "double") return Tag::Double;
  if (type == "string") return Tag::String;
  if (type == "double[]") return Tag::DoubleArray;
  throw ValidationError("ffbin: unsupported field type '" + type + "'");
}

// --- frame codec primitives ----------------------------------------------
// The decode hot path reads through raw pointers with explicit bounds
// checks against the enclosing frame; fixed-width loads go through memcpy
// (alignment-safe) and byte-swap only on big-endian hosts.

constexpr char kFrameMagic[3] = {'F', 'F', 'W'};
constexpr uint8_t kFrameVersion = 0x01;

inline uint32_t load_u32(const uint8_t* p) noexcept {
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  value = __builtin_bswap32(value);
#endif
  return value;
}

inline uint64_t load_u64(const uint8_t* p) noexcept {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  value = __builtin_bswap64(value);
#endif
  return value;
}

inline double load_f64(const uint8_t* p) noexcept {
  const uint64_t bits = load_u64(p);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

const char* wire_format_name(WireFormat format) noexcept {
  switch (format) {
    case WireFormat::SelfDescribing: return "self-describing";
    case WireFormat::Binary: return "binary";
  }
  return "unknown";
}

WireFormat parse_wire_format(std::string_view name) {
  if (name == "self-describing") return WireFormat::SelfDescribing;
  if (name == "binary") return WireFormat::Binary;
  throw ValidationError("unknown wire format '" + std::string(name) +
                        "' (want self-describing or binary)");
}

Encoder::Encoder(StreamSchema schema) : schema_(std::move(schema)) {
  for (char c : kMagic) buffer_.push_back(static_cast<uint8_t>(c));
  put_string(buffer_, schema_.name);
  put_u32(buffer_, static_cast<uint32_t>(schema_.version));
  put_u32(buffer_, static_cast<uint32_t>(schema_.fields.size()));
  for (const auto& field : schema_.fields) {
    put_string(buffer_, field.name);
    put_u8(buffer_, static_cast<uint8_t>(tag_for(field.type)));  // validates too
    put_string(buffer_, field.type);
  }
}

void Encoder::append(const Record& record) {
  validate_record(record, schema_);
  put_u64(buffer_, record.sequence);
  put_f64(buffer_, record.timestamp);
  put_u32(buffer_, static_cast<uint32_t>(record.values.size()));
  for (const Value& value : record.values) {
    put_u8(buffer_, static_cast<uint8_t>(value.index() + 1));
    switch (value.index()) {
      case 0: put_u64(buffer_, static_cast<uint64_t>(std::get<int64_t>(value))); break;
      case 1: put_f64(buffer_, std::get<double>(value)); break;
      case 2: put_string(buffer_, std::get<std::string>(value)); break;
      case 3: {
        const auto& array = std::get<std::vector<double>>(value);
        put_u32(buffer_, static_cast<uint32_t>(array.size()));
        for (double element : array) put_f64(buffer_, element);
        break;
      }
    }
  }
  ++count_;
}

DecodedStream decode_stream(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(reader.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw ParseError("ffbin: bad magic");
  }
  DecodedStream out;
  out.schema.name = reader.string();
  out.schema.version = static_cast<int>(reader.u32());
  const uint32_t field_count = reader.u32();
  for (uint32_t i = 0; i < field_count; ++i) {
    StreamSchema::Field field;
    field.name = reader.string();
    reader.u8();  // tag, redundant with the type string
    field.type = reader.string();
    out.schema.fields.push_back(std::move(field));
  }
  while (!reader.at_end()) {
    Record record;
    record.sequence = reader.u64();
    record.timestamp = reader.f64();
    const uint32_t value_count = reader.u32();
    for (uint32_t i = 0; i < value_count; ++i) {
      const uint8_t tag = reader.u8();
      switch (static_cast<Tag>(tag)) {
        case Tag::Int:
          record.values.emplace_back(static_cast<int64_t>(reader.u64()));
          break;
        case Tag::Double:
          record.values.emplace_back(reader.f64());
          break;
        case Tag::String:
          record.values.emplace_back(reader.string());
          break;
        case Tag::DoubleArray: {
          const uint32_t length = reader.u32();
          // Check the payload actually fits BEFORE reserving: a truncated or
          // corrupt stream must raise ParseError, not attempt a multi-GB
          // allocation off a garbage length prefix.
          reader.need_ahead(size_t{length} * 8);
          std::vector<double> array;
          array.reserve(length);
          for (uint32_t j = 0; j < length; ++j) array.push_back(reader.f64());
          record.values.emplace_back(std::move(array));
          break;
        }
        default:
          throw ParseError("ffbin: unknown type tag " + std::to_string(tag));
      }
    }
    validate_record(record, out.schema);
    out.records.push_back(std::move(record));
  }
  return out;
}

// --- FrameEncoder / decode_frame_stream -----------------------------------

FrameEncoder::FrameEncoder(StreamSchema schema) : schema_(std::move(schema)) {
  field_kinds_.reserve(schema_.fields.size());
  for (const auto& field : schema_.fields) {
    field_kinds_.push_back(static_cast<uint8_t>(tag_for(field.type)));
  }
  for (char c : kFrameMagic) buffer_.push_back(static_cast<uint8_t>(c));
  put_u8(buffer_, kFrameVersion);
  const std::string key = schema_.key();
  if (key.size() > 0xffff) {
    throw ValidationError("ffw: schema key too long");
  }
  put_u8(buffer_, static_cast<uint8_t>(key.size() & 0xff));
  put_u8(buffer_, static_cast<uint8_t>(key.size() >> 8));
  buffer_.insert(buffer_.end(), key.begin(), key.end());
}

void FrameEncoder::append(const Record& record) {
  if (record.values.size() != field_kinds_.size()) {
    throw ValidationError("ffw: record has " +
                          std::to_string(record.values.size()) +
                          " values, schema '" + schema_.name + "' wants " +
                          std::to_string(field_kinds_.size()));
  }
  const size_t length_at = buffer_.size();
  put_u32(buffer_, 0);  // frame length, patched below
  const size_t payload_start = buffer_.size();
  put_u64(buffer_, record.sequence);
  put_f64(buffer_, record.timestamp);
  for (size_t i = 0; i < field_kinds_.size(); ++i) {
    const Value& value = record.values[i];
    if (value.index() + 1 != field_kinds_[i]) {
      throw ValidationError("ffw: field '" + schema_.fields[i].name +
                            "' does not match its schema type");
    }
    switch (static_cast<Tag>(field_kinds_[i])) {
      case Tag::Int:
        put_u64(buffer_, static_cast<uint64_t>(std::get<int64_t>(value)));
        break;
      case Tag::Double: put_f64(buffer_, std::get<double>(value)); break;
      case Tag::String: put_string(buffer_, std::get<std::string>(value)); break;
      case Tag::DoubleArray: {
        const auto& array = std::get<std::vector<double>>(value);
        put_u32(buffer_, static_cast<uint32_t>(array.size()));
        for (double element : array) put_f64(buffer_, element);
        break;
      }
    }
  }
  const size_t payload = buffer_.size() - payload_start;
  for (int i = 0; i < 4; ++i) {
    buffer_[length_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload >> (8 * i));
  }
  ++count_;
}

void decode_frame_stream_into(const std::vector<uint8_t>& bytes,
                              const StreamSchema& schema, DecodedStream& out) {
  std::vector<Tag> kinds;
  kinds.reserve(schema.fields.size());
  for (const auto& field : schema.fields) kinds.push_back(tag_for(field.type));

  const uint8_t* p = bytes.data();
  const uint8_t* const end = p + bytes.size();
  if (end - p < 4) throw ParseError("ffw: truncated header");
  if (std::memcmp(p, kFrameMagic, 3) != 0) throw ParseError("ffw: bad magic");
  if (p[3] != kFrameVersion) {
    throw ParseError("ffw: unsupported version " + std::to_string(p[3]));
  }
  p += 4;
  if (end - p < 2) throw ParseError("ffw: truncated header");
  const size_t key_length = static_cast<size_t>(p[0]) |
                            (static_cast<size_t>(p[1]) << 8);
  p += 2;
  if (static_cast<size_t>(end - p) < key_length) {
    throw ParseError("ffw: truncated schema key");
  }
  const std::string_view stream_key(reinterpret_cast<const char*>(p),
                                    key_length);
  p += key_length;
  const std::string expected_key = schema.key();
  if (stream_key != expected_key) {
    throw ParseError("ffw: schema key mismatch: stream says '" +
                     std::string(stream_key) + "', decoder holds '" +
                     expected_key + "'");
  }

  out.schema = schema;
  const size_t field_count = kinds.size();
  // Records already in `out` are recycled in place: their values vectors
  // keep their capacity across chunks, so a warm fixed-width decode does
  // no per-record allocation at all.
  size_t produced = 0;
  const auto next_slot = [&out, &produced]() -> Record& {
    Record& slot = produced < out.records.size() ? out.records[produced]
                                                 : out.records.emplace_back();
    ++produced;
    slot.values.clear();
    return slot;
  };

  // The length prefixes let us count frames in one cheap pass and reserve
  // the output exactly — no growth reallocations while decoding. A frame
  // that would fail the main loop's validation simply ends the count; the
  // main loop then raises the precise typed error.
  {
    const uint8_t* q = p;
    size_t frames = 0;
    while (static_cast<size_t>(end - q) >= 4) {
      const uint32_t length = load_u32(q);
      q += 4;
      if (static_cast<size_t>(end - q) < length) break;
      q += length;
      ++frames;
    }
    out.records.reserve(frames);
  }

  // Fast path: a schema of only 8-byte scalars (int/double) fixes every
  // frame's payload size, so one length comparison replaces the per-field
  // bounds checks.
  bool fixed_width = true;
  for (const Tag kind : kinds) {
    if (kind != Tag::Int && kind != Tag::Double) fixed_width = false;
  }
  const size_t fixed_payload = 16 + 8 * field_count;

  while (p < end) {
    if (end - p < 4) throw ParseError("ffw: truncated frame length");
    const uint32_t frame_length = load_u32(p);
    p += 4;
    if (static_cast<size_t>(end - p) < frame_length) {
      // Also catches a poisoned length prefix: we refuse before touching
      // (or allocating for) any of the frame's contents.
      throw ParseError("ffw: frame length overruns stream");
    }
    const uint8_t* const frame_end = p + frame_length;
    if (frame_length < 16) throw ParseError("ffw: frame too short");

    if (fixed_width && frame_length == fixed_payload) {
      Record& record = next_slot();
      record.sequence = load_u64(p);
      record.timestamp = load_f64(p + 8);  // raw bits: NaN payloads survive
      p += 16;
      record.values.reserve(field_count);
      for (size_t i = 0; i < field_count; ++i) {
        if (kinds[i] == Tag::Int) {
          record.values.emplace_back(static_cast<int64_t>(load_u64(p)));
        } else {
          record.values.emplace_back(load_f64(p));
        }
        p += 8;
      }
      continue;
    }

    Record& record = next_slot();
    record.sequence = load_u64(p);
    p += 8;
    record.timestamp = load_f64(p);  // raw bits: NaN payloads survive
    p += 8;
    record.values.reserve(field_count);
    for (size_t i = 0; i < field_count; ++i) {
      switch (kinds[i]) {
        case Tag::Int:
          if (frame_end - p < 8) throw ParseError("ffw: truncated int field");
          record.values.emplace_back(static_cast<int64_t>(load_u64(p)));
          p += 8;
          break;
        case Tag::Double:
          if (frame_end - p < 8) {
            throw ParseError("ffw: truncated double field");
          }
          record.values.emplace_back(load_f64(p));
          p += 8;
          break;
        case Tag::String: {
          if (frame_end - p < 4) {
            throw ParseError("ffw: truncated string length");
          }
          const uint32_t length = load_u32(p);
          p += 4;
          if (static_cast<size_t>(frame_end - p) < length) {
            throw ParseError("ffw: string length overruns frame");
          }
          record.values.emplace_back(
              std::string(reinterpret_cast<const char*>(p), length));
          p += length;
          break;
        }
        case Tag::DoubleArray: {
          if (frame_end - p < 4) {
            throw ParseError("ffw: truncated array length");
          }
          const uint32_t length = load_u32(p);
          p += 4;
          // Fit check BEFORE the allocation: a poisoned count must raise
          // ParseError, not attempt a multi-GB reserve.
          if (static_cast<size_t>(frame_end - p) < size_t{length} * 8) {
            throw ParseError("ffw: array length overruns frame");
          }
          std::vector<double> array(length);
          for (uint32_t j = 0; j < length; ++j) {
            array[j] = load_f64(p + size_t{j} * 8);
          }
          p += size_t{length} * 8;
          record.values.emplace_back(std::move(array));
          break;
        }
      }
    }
    if (p != frame_end) throw ParseError("ffw: trailing bytes in frame");
  }
  out.records.resize(produced);
}

DecodedStream decode_frame_stream(const std::vector<uint8_t>& bytes,
                                  const StreamSchema& schema) {
  DecodedStream out;
  decode_frame_stream_into(bytes, schema, out);
  return out;
}

}  // namespace ff::stream
