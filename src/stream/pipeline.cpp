#include "stream/pipeline.hpp"

#include <chrono>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::stream {

namespace {

Overflow parse_overflow(const std::string& name) {
  if (name == "block") return Overflow::Block;
  if (name == "drop-oldest") return Overflow::DropOldest;
  if (name == "keep-latest") return Overflow::KeepLatest;
  throw ValidationError("unknown overflow policy '" + name +
                        "' (want block, drop-oldest, or keep-latest)");
}

}  // namespace

StreamPipeline::StreamPipeline(size_t workers)
    : pool_(std::make_unique<ThreadPool>(workers)) {
  obs::trace_instant("stream", "stream.pipeline.start",
                     {{"workers", pool_->worker_count()}});
}

StreamPipeline::~StreamPipeline() { shutdown(); }

void StreamPipeline::install_queue(const std::string& queue,
                                   std::unique_ptr<SelectionPolicy> policy,
                                   QueueOptions options) {
  if (options.batch == 0) {
    throw ValidationError("StreamPipeline: batch must be >= 1");
  }
  auto pipe = std::make_shared<PipeQueue>();
  pipe->name = queue;
  pipe->channel = make_channel(options.channel, options.capacity);
  pipe->overflow = options.overflow;
  pipe->batch = options.batch;
  pipe->format = options.format;
  {
    std::lock_guard lock(mutex_);
    if (stopped_) throw StateError("StreamPipeline: install after shutdown");
    if (queues_.count(queue)) {
      throw ValidationError("StreamPipeline: queue '" + queue +
                            "' already exists");
    }
    queues_.emplace(queue, pipe);
  }
  // The sink runs on publisher threads under the queue's scheduler lock, so
  // releases enter the channel in policy order. Attached atomically with the
  // install: no release can bypass the channel.
  scheduler_.install_queue(queue, std::move(policy),
                           [this, pipe](const std::string&, Record record) {
                             offer(*pipe, std::move(record));
                             schedule_drain(pipe);
                           });
  obs::trace_instant("stream", "stream.pipeline.attach",
                     {{"queue", queue},
                      {"capacity", options.capacity},
                      {"overflow", overflow_name(options.overflow)},
                      {"channel", channel_kind_name(options.channel)}});
}

void StreamPipeline::remove_queue(const std::string& queue) {
  std::shared_ptr<PipeQueue> pipe;
  {
    std::lock_guard lock(mutex_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) {
      throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
    }
    pipe = it->second;
    queues_.erase(it);
  }
  // Stop new releases, then deliver what the channel still holds. In-flight
  // publishes still hold the PipeQueue alive through the sink's shared_ptr,
  // so this never races into a use-after-free; their releases after close
  // are counted as rejected.
  scheduler_.remove_queue(queue);
  pipe->channel->close();
  schedule_drain(pipe);
}

bool StreamPipeline::has_queue(const std::string& queue) const noexcept {
  std::lock_guard lock(mutex_);
  return queues_.count(queue) > 0;
}

void StreamPipeline::subscribe(DataScheduler::Consumer consumer) {
  if (!consumer) throw ValidationError("subscribe: null consumer");
  std::lock_guard lock(mutex_);
  auto next =
      std::make_shared<std::vector<DataScheduler::Consumer>>(*consumers_);
  next->push_back(std::move(consumer));
  consumers_ = std::move(next);
}

void StreamPipeline::register_schema(const std::string& queue,
                                     StreamSchema schema) {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
  }
  it->second->schema = std::make_shared<const StreamSchema>(std::move(schema));
}

std::shared_ptr<const StreamSchema> StreamPipeline::schema_of(
    const std::string& queue) const {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
  }
  return it->second->schema;
}

void StreamPipeline::set_wire_sink(const std::string& queue, WireSink sink) {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
  }
  if (sink && !it->second->schema) {
    throw StateError("StreamPipeline: queue '" + queue +
                     "' has no registered schema — register_schema() before "
                     "attaching a wire sink (the " +
                     wire_format_name(it->second->format) +
                     " codec marshals against it)");
  }
  it->second->wire_sink = std::move(sink);
  obs::trace_instant("stream", "stream.queue.wire",
                     {{"queue", queue},
                      {"format", wire_format_name(it->second->format)}});
}

void StreamPipeline::offer(PipeQueue& queue, Record record) {
  queue.released.fetch_add(1, std::memory_order_relaxed);
  const Channel::OfferResult result =
      queue.channel->offer(std::move(record), queue.overflow);
  if (!result.accepted) {
    queue.rejected.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (result.evicted > 0) {
    obs::trace_instant("stream", "stream.pipeline.drop",
                       {{"queue", queue.name}, {"count", result.evicted}});
  }
}

void StreamPipeline::schedule_drain(const std::shared_ptr<PipeQueue>& queue) {
  // Strand dispatch: at most one drain task per queue is queued or running,
  // so per-queue delivery stays ordered for any worker count.
  //
  // The fence orders the caller's (possibly relaxed) channel push before
  // the seq_cst exchange. Together with the store(false)+fence+size()
  // re-check in drain() this closes the handoff race for the lock-free
  // channels, which — unlike the mutex channel — provide no incidental
  // synchronization between a push and a subsequent size() probe: either
  // our exchange sees false (we schedule the drain ourselves) or it
  // happened before the running drain's store(false), in which case that
  // drain's re-check is fenced to observe our push. See DESIGN.md §3.5.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (queue->scheduled.exchange(true, std::memory_order_seq_cst)) return;
  pool_->post([this, queue] { drain(queue); });
}

void StreamPipeline::deliver(PipeQueue& queue, std::vector<Record>& batch,
                             const std::vector<DataScheduler::Consumer>& consumers,
                             const std::shared_ptr<const StreamSchema>& schema,
                             const WireSink& wire_sink) {
  queue.delivered.fetch_add(batch.size(), std::memory_order_relaxed);
  for (const Record& record : batch) {
    for (const auto& consumer : consumers) consumer(queue.name, record);
  }
  if (wire_sink && schema) {
    // Marshal the whole batch as one self-contained chunk (header +
    // records) with the queue's configured codec.
    std::vector<uint8_t> chunk;
    if (queue.format == WireFormat::Binary) {
      FrameEncoder encoder(*schema);
      for (const Record& record : batch) encoder.append(record);
      chunk = encoder.bytes();
    } else {
      Encoder encoder(*schema);
      for (const Record& record : batch) encoder.append(record);
      chunk = encoder.bytes();
    }
    wire_sink(queue.name, std::move(chunk));
  }
}

void StreamPipeline::drain(const std::shared_ptr<PipeQueue>& queue) {
  std::shared_ptr<const std::vector<DataScheduler::Consumer>> consumers;
  std::shared_ptr<const StreamSchema> schema;
  WireSink wire_sink;
  {
    std::lock_guard lock(mutex_);
    consumers = consumers_;
    schema = queue->schema;
    wire_sink = queue->wire_sink;
  }
  // One bulk pop per dispatch: the channel synchronization and the pool
  // handoff are paid once per batch instead of once per record. Per-queue
  // order is untouched — the strand serializes drains and drain_into is
  // FIFO.
  std::vector<Record> batch;
  batch.reserve(std::min(queue->batch, queue->channel->size()));
  const size_t taken = queue->channel->drain_into(batch, queue->batch);
  if (taken > 0) {
    deliver(*queue, batch, *consumers, schema, wire_sink);
    if (obs::tracing_enabled()) {
      obs::trace_instant("stream", "stream.queue.drain_batch",
                         {{"queue", queue->name}, {"count", taken}});
    }
  }
  if (obs::tracing_enabled()) {
    obs::trace_counter("stream", "stream.queue.depth",
                       static_cast<double>(queue->channel->size()),
                       {{"queue", queue->name}});
  }
  queue->scheduled.store(false, std::memory_order_seq_cst);
  // Re-arm if records remain (or raced in after the bulk pop). A producer
  // that saw scheduled==true before the store above relies on this fenced
  // re-check to get its record drained (see schedule_drain).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (queue->channel->size() > 0) schedule_drain(queue);
}

std::vector<std::shared_ptr<StreamPipeline::PipeQueue>>
StreamPipeline::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<PipeQueue>> queues;
  queues.reserve(queues_.size());
  for (const auto& [_, pipe] : queues_) queues.push_back(pipe);
  return queues;
}

void StreamPipeline::wait_quiescent() {
  while (true) {
    pool_->wait_idle();
    bool quiet = true;
    for (const auto& pipe : snapshot()) {
      if (pipe->channel->size() > 0 ||
          pipe->scheduled.load(std::memory_order_acquire)) {
        quiet = false;
        break;
      }
    }
    if (quiet) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void StreamPipeline::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  const auto queues = snapshot();
  // Close first: blocked producers wake (their offers are rejected and
  // counted), and nothing new enters the channels.
  for (const auto& pipe : queues) pipe->channel->close();
  // Drain what was accepted through the normal ordered path.
  for (const auto& pipe : queues) schedule_drain(pipe);
  pool_->wait_idle();
  // A publisher preempted between its accepted offer and schedule_drain can
  // in principle leave records behind with no drain scheduled; deliver them
  // inline (the strand is idle — wait_idle saw it finish).
  for (const auto& pipe : queues) {
    std::vector<Record> leftover = pipe->channel->close_and_drain();
    if (leftover.empty()) continue;
    std::shared_ptr<const std::vector<DataScheduler::Consumer>> consumers;
    std::shared_ptr<const StreamSchema> schema;
    WireSink wire_sink;
    {
      std::lock_guard lock(mutex_);
      consumers = consumers_;
      schema = pipe->schema;
      wire_sink = pipe->wire_sink;
    }
    deliver(*pipe, leftover, *consumers, schema, wire_sink);
  }
  pool_->wait_idle();  // inline delivery may have re-armed strands via consumers
  const Totals final_totals = totals();
  obs::trace_instant("stream", "stream.pipeline.stop",
                     {{"delivered", final_totals.delivered},
                      {"dropped", final_totals.dropped}});
  // The pool (and its worker threads) is joined by the destructor — after
  // this point it only ever runs no-op drains.
}

std::shared_ptr<StreamPipeline::PipeQueue> StreamPipeline::find_queue(
    const std::string& queue) const {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
  }
  return it->second;
}

StreamPipeline::QueueReport StreamPipeline::report(
    const std::string& queue) const {
  const std::shared_ptr<PipeQueue> pipe = find_queue(queue);
  QueueReport report;
  report.released = pipe->released.load(std::memory_order_relaxed);
  report.delivered = pipe->delivered.load(std::memory_order_relaxed);
  report.dropped = pipe->channel->dropped() +
                   pipe->rejected.load(std::memory_order_relaxed);
  report.depth = pipe->channel->size();
  report.overflow = pipe->overflow;
  report.channel = pipe->channel->kind();
  report.format = pipe->format;
  report.batch = pipe->batch;
  return report;
}

StreamPipeline::Totals StreamPipeline::totals() const {
  Totals totals;
  for (const auto& pipe : snapshot()) {
    totals.delivered += pipe->delivered.load(std::memory_order_relaxed);
    totals.dropped += pipe->channel->dropped() +
                      pipe->rejected.load(std::memory_order_relaxed);
  }
  return totals;
}

void PolicyFactory::handle_install(StreamPipeline& pipeline,
                                   const Json& message) const {
  const Json& install = message["install"];
  const std::string queue = install["queue"].as_string();
  const std::string kind = install["kind"].as_string();
  const Json args = install.contains("args") ? install["args"] : Json::object();
  QueueOptions options;
  options.capacity =
      static_cast<size_t>(install.get_or("capacity", int64_t{256}));
  options.overflow = parse_overflow(install.get_or("overflow", "block"));
  if (install.contains("batch")) {
    const Json& batch = install["batch"];
    if (!batch.is_int() || batch.as_int() < 1) {
      throw ValidationError("install: batch must be an integer >= 1");
    }
    options.batch = static_cast<size_t>(batch.as_int());
  }
  options.channel = parse_channel_kind(install.get_or("channel", "spsc"));
  options.format = parse_wire_format(install.get_or("format", "self-describing"));
  obs::trace_instant("stream", "stream.policy.install",
                     {{"queue", queue}, {"kind", kind}});
  pipeline.install_queue(queue, build(kind, args), options);
}

InstrumentSource::InstrumentSource(StreamPipeline& pipeline,
                                   Generator generator, Options options) {
  if (!generator) throw ValidationError("InstrumentSource: null generator");
  thread_ = std::thread([this, &pipeline, generator = std::move(generator),
                         options = std::move(options)] {
    uint64_t index = 0;
    while (std::optional<Record> record = generator(index)) {
      pipeline.publish(*record);
      published_.fetch_add(1, std::memory_order_relaxed);
      ++index;
      if (options.punctuate_every > 0 && index % options.punctuate_every == 0) {
        pipeline.punctuate(options.punctuation);
      }
    }
    obs::trace_instant("stream", "stream.source.done", {{"records", index}});
  });
}

InstrumentSource::~InstrumentSource() { join(); }

void InstrumentSource::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace ff::stream
