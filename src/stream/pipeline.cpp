#include "stream/pipeline.hpp"

#include <chrono>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::stream {

namespace {

/// Records delivered per drain task before the queue's strand yields its
/// worker — keeps a busy queue from starving the others when workers are
/// scarcer than queues.
constexpr size_t kDrainBatch = 64;

Overflow parse_overflow(const std::string& name) {
  if (name == "block") return Overflow::Block;
  if (name == "drop-oldest") return Overflow::DropOldest;
  if (name == "keep-latest") return Overflow::KeepLatest;
  throw ValidationError("unknown overflow policy '" + name +
                        "' (want block, drop-oldest, or keep-latest)");
}

}  // namespace

StreamPipeline::StreamPipeline(size_t workers)
    : pool_(std::make_unique<ThreadPool>(workers)) {
  obs::trace_instant("stream", "stream.pipeline.start",
                     {{"workers", pool_->worker_count()}});
}

StreamPipeline::~StreamPipeline() { shutdown(); }

void StreamPipeline::install_queue(const std::string& queue,
                                   std::unique_ptr<SelectionPolicy> policy,
                                   QueueOptions options) {
  auto pipe = std::make_shared<PipeQueue>();
  pipe->name = queue;
  pipe->channel = std::make_unique<Channel>(options.capacity);
  pipe->overflow = options.overflow;
  {
    std::lock_guard lock(mutex_);
    if (stopped_) throw StateError("StreamPipeline: install after shutdown");
    if (queues_.count(queue)) {
      throw ValidationError("StreamPipeline: queue '" + queue +
                            "' already exists");
    }
    queues_.emplace(queue, pipe);
  }
  // The sink runs on publisher threads under the queue's scheduler lock, so
  // releases enter the channel in policy order. Attached atomically with the
  // install: no release can bypass the channel.
  scheduler_.install_queue(queue, std::move(policy),
                           [this, pipe](const std::string&, Record record) {
                             offer(*pipe, std::move(record));
                             schedule_drain(pipe);
                           });
  obs::trace_instant("stream", "stream.pipeline.attach",
                     {{"queue", queue},
                      {"capacity", options.capacity},
                      {"overflow", overflow_name(options.overflow)}});
}

void StreamPipeline::remove_queue(const std::string& queue) {
  std::shared_ptr<PipeQueue> pipe;
  {
    std::lock_guard lock(mutex_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) {
      throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
    }
    pipe = it->second;
    queues_.erase(it);
  }
  // Stop new releases, then deliver what the channel still holds. In-flight
  // publishes still hold the PipeQueue alive through the sink's shared_ptr,
  // so this never races into a use-after-free; their releases after close
  // are counted as rejected.
  scheduler_.remove_queue(queue);
  pipe->channel->close();
  schedule_drain(pipe);
}

bool StreamPipeline::has_queue(const std::string& queue) const noexcept {
  std::lock_guard lock(mutex_);
  return queues_.count(queue) > 0;
}

void StreamPipeline::subscribe(DataScheduler::Consumer consumer) {
  if (!consumer) throw ValidationError("subscribe: null consumer");
  std::lock_guard lock(mutex_);
  auto next =
      std::make_shared<std::vector<DataScheduler::Consumer>>(*consumers_);
  next->push_back(std::move(consumer));
  consumers_ = std::move(next);
}

void StreamPipeline::offer(PipeQueue& queue, Record record) {
  queue.released.fetch_add(1, std::memory_order_relaxed);
  const Channel::OfferResult result =
      queue.channel->offer(std::move(record), queue.overflow);
  if (!result.accepted) {
    queue.rejected.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (result.evicted > 0) {
    obs::trace_instant("stream", "stream.pipeline.drop",
                       {{"queue", queue.name}, {"count", result.evicted}});
  }
}

void StreamPipeline::schedule_drain(const std::shared_ptr<PipeQueue>& queue) {
  // Strand dispatch: at most one drain task per queue is queued or running,
  // so per-queue delivery stays ordered for any worker count.
  if (queue->scheduled.exchange(true, std::memory_order_acq_rel)) return;
  pool_->post([this, queue] { drain(queue); });
}

void StreamPipeline::drain(const std::shared_ptr<PipeQueue>& queue) {
  std::shared_ptr<const std::vector<DataScheduler::Consumer>> consumers;
  {
    std::lock_guard lock(mutex_);
    consumers = consumers_;
  }
  size_t processed = 0;
  while (processed < kDrainBatch) {
    std::optional<Record> record = queue->channel->try_receive();
    if (!record) break;
    ++processed;
    queue->delivered.fetch_add(1, std::memory_order_relaxed);
    for (const auto& consumer : *consumers) consumer(queue->name, *record);
  }
  if (obs::tracing_enabled()) {
    obs::trace_counter("stream", "stream.queue.depth",
                       static_cast<double>(queue->channel->size()),
                       {{"queue", queue->name}});
  }
  queue->scheduled.store(false, std::memory_order_release);
  // Re-arm if records remain (or raced in after the last try_receive). A
  // producer that saw scheduled==true before the store above relies on this
  // re-check to get its record drained.
  if (queue->channel->size() > 0) schedule_drain(queue);
}

std::vector<std::shared_ptr<StreamPipeline::PipeQueue>>
StreamPipeline::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<PipeQueue>> queues;
  queues.reserve(queues_.size());
  for (const auto& [_, pipe] : queues_) queues.push_back(pipe);
  return queues;
}

void StreamPipeline::wait_quiescent() {
  while (true) {
    pool_->wait_idle();
    bool quiet = true;
    for (const auto& pipe : snapshot()) {
      if (pipe->channel->size() > 0 ||
          pipe->scheduled.load(std::memory_order_acquire)) {
        quiet = false;
        break;
      }
    }
    if (quiet) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void StreamPipeline::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  const auto queues = snapshot();
  // Close first: blocked producers wake (their offers are rejected and
  // counted), and nothing new enters the channels.
  for (const auto& pipe : queues) pipe->channel->close();
  // Drain what was accepted through the normal ordered path.
  for (const auto& pipe : queues) schedule_drain(pipe);
  pool_->wait_idle();
  // A publisher preempted between its accepted offer and schedule_drain can
  // in principle leave records behind with no drain scheduled; deliver them
  // inline (the strand is idle — wait_idle saw it finish).
  for (const auto& pipe : queues) {
    std::vector<Record> leftover = pipe->channel->close_and_drain();
    if (leftover.empty()) continue;
    std::shared_ptr<const std::vector<DataScheduler::Consumer>> consumers;
    {
      std::lock_guard lock(mutex_);
      consumers = consumers_;
    }
    for (Record& record : leftover) {
      pipe->delivered.fetch_add(1, std::memory_order_relaxed);
      for (const auto& consumer : *consumers) consumer(pipe->name, record);
    }
  }
  pool_->wait_idle();  // inline delivery may have re-armed strands via consumers
  const Totals final_totals = totals();
  obs::trace_instant("stream", "stream.pipeline.stop",
                     {{"delivered", final_totals.delivered},
                      {"dropped", final_totals.dropped}});
  // The pool (and its worker threads) is joined by the destructor — after
  // this point it only ever runs no-op drains.
}

StreamPipeline::QueueReport StreamPipeline::report(
    const std::string& queue) const {
  std::shared_ptr<PipeQueue> pipe;
  {
    std::lock_guard lock(mutex_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) {
      throw NotFoundError("StreamPipeline: no queue '" + queue + "'");
    }
    pipe = it->second;
  }
  QueueReport report;
  report.released = pipe->released.load(std::memory_order_relaxed);
  report.delivered = pipe->delivered.load(std::memory_order_relaxed);
  report.dropped = pipe->channel->dropped() +
                   pipe->rejected.load(std::memory_order_relaxed);
  report.depth = pipe->channel->size();
  report.overflow = pipe->overflow;
  return report;
}

StreamPipeline::Totals StreamPipeline::totals() const {
  Totals totals;
  for (const auto& pipe : snapshot()) {
    totals.delivered += pipe->delivered.load(std::memory_order_relaxed);
    totals.dropped += pipe->channel->dropped() +
                      pipe->rejected.load(std::memory_order_relaxed);
  }
  return totals;
}

void PolicyFactory::handle_install(StreamPipeline& pipeline,
                                   const Json& message) const {
  const Json& install = message["install"];
  const std::string queue = install["queue"].as_string();
  const std::string kind = install["kind"].as_string();
  const Json args = install.contains("args") ? install["args"] : Json::object();
  QueueOptions options;
  options.capacity =
      static_cast<size_t>(install.get_or("capacity", int64_t{256}));
  options.overflow = parse_overflow(install.get_or("overflow", "block"));
  obs::trace_instant("stream", "stream.policy.install",
                     {{"queue", queue}, {"kind", kind}});
  pipeline.install_queue(queue, build(kind, args), options);
}

InstrumentSource::InstrumentSource(StreamPipeline& pipeline,
                                   Generator generator, Options options) {
  if (!generator) throw ValidationError("InstrumentSource: null generator");
  thread_ = std::thread([this, &pipeline, generator = std::move(generator),
                         options = std::move(options)] {
    uint64_t index = 0;
    while (std::optional<Record> record = generator(index)) {
      pipeline.publish(*record);
      published_.fetch_add(1, std::memory_order_relaxed);
      ++index;
      if (options.punctuate_every > 0 && index % options.punctuate_every == 0) {
        pipeline.punctuate(options.punctuation);
      }
    }
    obs::trace_instant("stream", "stream.source.done", {{"records", index}});
  });
}

InstrumentSource::~InstrumentSource() { join(); }

void InstrumentSource::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace ff::stream
