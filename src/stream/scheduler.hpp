#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stream/policy.hpp"

namespace ff::stream {

class StreamPipeline;

/// The data-scheduling component of the Fig. 5 workflow: sits between the
/// instrument (source) and downstream consumers, implementing a set of
/// *virtual data queues* — "the data scheduler implements a number of
/// virtual data queues, each defined by its own selection policy".
///
/// - publish() feeds a record to every installed queue's policy.
/// - control() delivers a punctuation/control message, either to one queue
///   or broadcast; it can also *install* and *activate* policies at
///   runtime, including policies "unknown at code-generation time"
///   (registered in the PolicyFactory below).
/// - Consumers subscribe per queue; releases are delivered synchronously on
///   the publishing thread unless a queue has a sink (see set_queue_sink),
///   in which case its releases flow into the sink — how StreamPipeline
///   (stream/pipeline.hpp) reroutes them into bounded channels drained by
///   worker threads.
///
/// Thread safety: every method may be called concurrently from any thread.
/// The queue registry is guarded by one mutex; each virtual queue has its
/// own mutex serializing its policy, stats, and delivery. Policy
/// invocations for one queue are therefore totally ordered, and all of one
/// call's releases are delivered (to the sink or the subscribers) under the
/// queue's lock, so per-queue release order equals policy-invocation order
/// — the ordering the punctuation guarantee of the concurrent plane builds
/// on. Two rules for callers:
///   - a consumer/sink may install/remove/activate queues, but must not
///     re-enter publish()/control()/punctuate() (the per-queue mutex is not
///     recursive);
///   - publish() racing remove_queue() may still deliver to the removed
///     queue (the snapshot keeps it alive — never a use-after-free).
class DataScheduler {
 public:
  using Consumer = std::function<void(const std::string& queue, const Record&)>;
  /// Per-queue delivery override; receives releases in policy order.
  using Sink = std::function<void(const std::string& queue, Record record)>;

  /// Install a virtual queue with a policy. Active on install. A non-null
  /// `sink` is attached atomically, so no release can slip past it.
  void install_queue(const std::string& queue,
                     std::unique_ptr<SelectionPolicy> policy, Sink sink = nullptr);
  void remove_queue(const std::string& queue);
  bool has_queue(const std::string& queue) const noexcept;
  std::vector<std::string> queue_names() const;

  /// Selectively enable/disable a queue ("policies can be selectively
  /// invoked using input from the control channel").
  void set_active(const std::string& queue, bool active);
  bool is_active(const std::string& queue) const;

  void subscribe(Consumer consumer);

  /// Route one queue's releases into `sink` instead of the subscriber
  /// list (pass nullptr to restore synchronous delivery).
  void set_queue_sink(const std::string& queue, Sink sink);

  /// Feed one record from the instrument into all active queues.
  void publish(const Record& record);

  /// Feed a run of records, in order, into all active queues. Equivalent
  /// to publish() once per record but amortizes the registry snapshot and
  /// the per-queue lock over the whole batch — the producer half of the
  /// batched hot path. Per-queue policy order is the batch order.
  void publish_batch(const std::vector<Record>& records);

  /// Control-channel message for one queue (punctuation argument forwarded
  /// to its policy).
  void control(const std::string& queue, const Json& argument);
  /// Broadcast punctuation to every active queue.
  void punctuate(const Json& argument);

  struct QueueStats {
    uint64_t arrivals = 0;
    uint64_t releases = 0;
  };
  QueueStats stats(const std::string& queue) const;

 private:
  struct VirtualQueue {
    mutable std::mutex mutex;  // serializes policy, stats, active, sink
    std::unique_ptr<SelectionPolicy> policy;
    bool active = true;
    QueueStats stats;
    Sink sink;
  };
  using QueueRef = std::pair<std::string, std::shared_ptr<VirtualQueue>>;

  /// Releases records under entry.mutex (held by the caller).
  void deliver_locked(const std::string& queue, VirtualQueue& entry,
                      std::vector<Record> released);
  std::shared_ptr<VirtualQueue> require(const std::string& queue) const;
  std::vector<QueueRef> snapshot() const;

  mutable std::mutex mutex_;  // guards queues_ and consumers_
  std::map<std::string, std::shared_ptr<VirtualQueue>> queues_;
  /// Copy-on-write so publish() can read the list without holding mutex_.
  std::shared_ptr<const std::vector<Consumer>> consumers_ =
      std::make_shared<std::vector<Consumer>>();
};

/// Registry for policies that arrive *after* code generation: a remote
/// steering process names a policy kind plus arguments, and the factory
/// builds it. This is the runtime-specialization half of Section V-C.
class PolicyFactory {
 public:
  using Builder = std::function<std::unique_ptr<SelectionPolicy>(const Json& args)>;

  /// A factory preloaded with the built-in policies:
  /// forward-all, sliding-window-count {capacity}, sliding-window-time
  /// {horizon}, direct-selection {max_queue?}, sample-every {stride}.
  static PolicyFactory with_builtins();

  void register_kind(const std::string& kind, Builder builder);
  bool knows(const std::string& kind) const noexcept;
  std::unique_ptr<SelectionPolicy> build(const std::string& kind,
                                         const Json& args) const;

  /// Handle a control-channel install message:
  ///   {"install": {"queue": "q", "kind": "sliding-window-count",
  ///                "args": {"capacity": 8}}}
  void handle_install(DataScheduler& scheduler, const Json& message) const;

  /// Same message, but the queue lands on the concurrent plane: optional
  /// transport keys ride next to "kind"/"args" — "capacity" (bounded
  /// channel size), "overflow" ("block", "drop-oldest", "keep-latest"),
  /// "batch" (records per strand drain, ≥ 1), "channel" ("mutex", "spsc",
  /// "mpmc"), and "format" ("self-describing", "binary" — the wire-tap
  /// codec). Defined in stream/pipeline.cpp.
  void handle_install(StreamPipeline& pipeline, const Json& message) const;

 private:
  std::map<std::string, Builder> builders_;
};

}  // namespace ff::stream
