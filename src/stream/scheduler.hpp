#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stream/policy.hpp"

namespace ff::stream {

/// The data-scheduling component of the Fig. 5 workflow: sits between the
/// instrument (source) and downstream consumers, implementing a set of
/// *virtual data queues* — "the data scheduler implements a number of
/// virtual data queues, each defined by its own selection policy".
///
/// - publish() feeds a record to every installed queue's policy.
/// - control() delivers a punctuation/control message, either to one queue
///   or broadcast; it can also *install* and *activate* policies at
///   runtime, including policies "unknown at code-generation time"
///   (registered in the PolicyFactory below).
/// - Consumers subscribe per queue; releases are delivered synchronously.
class DataScheduler {
 public:
  using Consumer = std::function<void(const std::string& queue, const Record&)>;

  /// Install a virtual queue with a policy. Active on install.
  void install_queue(const std::string& queue, std::unique_ptr<SelectionPolicy> policy);
  void remove_queue(const std::string& queue);
  bool has_queue(const std::string& queue) const noexcept;
  std::vector<std::string> queue_names() const;

  /// Selectively enable/disable a queue ("policies can be selectively
  /// invoked using input from the control channel").
  void set_active(const std::string& queue, bool active);
  bool is_active(const std::string& queue) const;

  void subscribe(Consumer consumer);

  /// Feed one record from the instrument into all active queues.
  void publish(const Record& record);

  /// Control-channel message for one queue (punctuation argument forwarded
  /// to its policy).
  void control(const std::string& queue, const Json& argument);
  /// Broadcast punctuation to every active queue.
  void punctuate(const Json& argument);

  struct QueueStats {
    uint64_t arrivals = 0;
    uint64_t releases = 0;
  };
  QueueStats stats(const std::string& queue) const;

 private:
  struct VirtualQueue {
    std::unique_ptr<SelectionPolicy> policy;
    bool active = true;
    QueueStats stats;
  };

  void deliver(const std::string& queue, VirtualQueue& entry,
               std::vector<Record> released);
  VirtualQueue& require(const std::string& queue);
  const VirtualQueue& require(const std::string& queue) const;

  std::map<std::string, VirtualQueue> queues_;
  std::vector<Consumer> consumers_;
};

/// Registry for policies that arrive *after* code generation: a remote
/// steering process names a policy kind plus arguments, and the factory
/// builds it. This is the runtime-specialization half of Section V-C.
class PolicyFactory {
 public:
  using Builder = std::function<std::unique_ptr<SelectionPolicy>(const Json& args)>;

  /// A factory preloaded with the built-in policies:
  /// forward-all, sliding-window-count {capacity}, sliding-window-time
  /// {horizon}, direct-selection {max_queue?}, sample-every {stride}.
  static PolicyFactory with_builtins();

  void register_kind(const std::string& kind, Builder builder);
  bool knows(const std::string& kind) const noexcept;
  std::unique_ptr<SelectionPolicy> build(const std::string& kind,
                                         const Json& args) const;

  /// Handle a control-channel install message:
  ///   {"install": {"queue": "q", "kind": "sliding-window-count",
  ///                "args": {"capacity": 8}}}
  void handle_install(DataScheduler& scheduler, const Json& message) const;

 private:
  std::map<std::string, Builder> builders_;
};

}  // namespace ff::stream
