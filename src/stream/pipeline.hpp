#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stream/channel.hpp"
#include "stream/marshal.hpp"
#include "stream/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace ff::stream {

/// Per-queue transport configuration on the concurrent plane.
struct QueueOptions {
  size_t capacity = 256;                ///< bounded channel size
  Overflow overflow = Overflow::Block;  ///< producer behaviour when full
  /// Records one strand dispatch delivers before yielding its worker. The
  /// whole batch is taken from the channel in one bulk pop, so raising
  /// this amortizes the pool handoff; per-queue delivery order is
  /// unaffected (the strand still serializes drains).
  size_t batch = 64;
  /// Channel implementation. The pipeline's per-queue scheduler lock
  /// serializes producers, so the lock-free single-producer ring is safe
  /// and is the default hot path; `Mutex` restores the PR-4 transport.
  ChannelKind channel = ChannelKind::Spsc;
  /// Codec used by this queue's wire tap (see set_wire_sink). `Binary`
  /// requires a schema registered via register_schema.
  WireFormat format = WireFormat::SelfDescribing;
};

/// The Fig. 5 data plane with real threads: a thread-safe DataScheduler
/// whose virtual queues each drain through their own bounded Channel into
/// ordered consumer dispatch on a shared util::ThreadPool.
///
///   instrument threads ──publish()──▶ DataScheduler (policies, per-queue
///   lock) ──releases──▶ per-queue bounded Channel ──▶ strand drain task on
///   the worker pool ──▶ subscribed consumers
///
/// Guarantees:
///   - *Per-queue order.* Consumers observe one queue's releases in exactly
///     the order its policy released them: releases enter the channel under
///     the queue's scheduler lock, the channel is FIFO, and at most one
///     drain task per queue runs at a time (a strand), whatever the worker
///     count. Release order is therefore bit-identical across 1/2/4/8
///     workers.
///   - *Punctuation order.* control()/punctuate() run the policy under the
///     same per-queue lock as publish(), so a queue observes a control
///     message strictly after every record published causally before it
///     (same-thread program order; cross-thread via the lock).
///   - *Backpressure.* With Overflow::Block a full channel blocks the
///     publisher until workers catch up — end-to-end flow control, zero
///     drops. The lossy policies never block and count evictions instead.
///   - *Clean shutdown.* shutdown() closes every channel, drains what they
///     still hold through the normal consumer path, waits for the pool to
///     go idle, and only then joins the workers. Nothing accepted by a
///     channel is lost.
///
/// Consumers run on pool workers; a consumer may publish() back into the
/// pipeline (different queue) or install/remove queues, but must not call
/// shutdown() from inside a delivery.
class StreamPipeline {
 public:
  explicit StreamPipeline(size_t workers);
  ~StreamPipeline();  // implies shutdown()

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  size_t worker_count() const noexcept { return pool_->worker_count(); }

  /// Install a virtual queue whose releases ride the concurrent plane.
  void install_queue(const std::string& queue,
                     std::unique_ptr<SelectionPolicy> policy,
                     QueueOptions options = {});
  /// Remove a queue, draining already-released records to consumers first.
  void remove_queue(const std::string& queue);
  bool has_queue(const std::string& queue) const noexcept;

  /// Consumers see (queue, record) in per-queue release order. Subscribe
  /// before records flow; concurrent subscription is safe but late
  /// subscribers miss earlier deliveries.
  void subscribe(DataScheduler::Consumer consumer);

  /// Declare the record schema flowing through `queue`. Required before a
  /// wire sink can be attached (the codecs marshal against it); consumers
  /// that only take Records never need it.
  void register_schema(const std::string& queue, StreamSchema schema);
  /// The schema registered for `queue`, if any.
  std::shared_ptr<const StreamSchema> schema_of(const std::string& queue) const;

  /// A wire tap: after each drain batch the records are marshalled with
  /// the queue's configured WireFormat into one self-contained chunk
  /// (header + frames, independently decodable) and handed to the sink on
  /// the strand — the "forwarding component" half of Fig. 5, feeding a
  /// downstream transport. Throws StateError if no schema is registered.
  using WireSink = std::function<void(const std::string& queue,
                                      std::vector<uint8_t> chunk)>;
  void set_wire_sink(const std::string& queue, WireSink sink);

  /// Control plane passthrough (all thread-safe; see DataScheduler).
  void publish(const Record& record) { scheduler_.publish(record); }
  void publish_batch(const std::vector<Record>& records) {
    scheduler_.publish_batch(records);
  }
  void control(const std::string& queue, const Json& argument) {
    scheduler_.control(queue, argument);
  }
  void punctuate(const Json& argument) { scheduler_.punctuate(argument); }
  void set_active(const std::string& queue, bool active) {
    scheduler_.set_active(queue, active);
  }

  /// The underlying scheduler, for stats() and advanced control-plane use.
  DataScheduler& scheduler() noexcept { return scheduler_; }

  /// Stop the plane: no further releases enter the channels; everything
  /// already accepted is delivered; workers join. Idempotent.
  void shutdown();

  /// Block until every channel is empty and no drain task is running —
  /// i.e. every record released so far has reached the consumers. Safe to
  /// call while producers are paused (not racing new publishes).
  void wait_quiescent();

  struct QueueReport {
    uint64_t released = 0;   ///< records the policy released into the channel
    uint64_t delivered = 0;  ///< records handed to consumers
    uint64_t dropped = 0;    ///< evicted by the overflow policy (+ rejected at shutdown)
    size_t depth = 0;        ///< records currently queued in the channel
    Overflow overflow = Overflow::Block;
    ChannelKind channel = ChannelKind::Spsc;
    WireFormat format = WireFormat::SelfDescribing;
    size_t batch = 0;
  };
  QueueReport report(const std::string& queue) const;

  struct Totals {
    uint64_t delivered = 0;
    uint64_t dropped = 0;
  };
  Totals totals() const;

 private:
  struct PipeQueue {
    std::string name;
    std::unique_ptr<Channel> channel;
    Overflow overflow = Overflow::Block;
    size_t batch = 64;                     ///< records per strand dispatch
    WireFormat format = WireFormat::SelfDescribing;
    std::atomic<uint64_t> released{0};
    std::atomic<uint64_t> delivered{0};
    std::atomic<uint64_t> rejected{0};     ///< offers refused (closed channel)
    std::atomic<bool> scheduled{false};    ///< a drain task is queued/running
    // Wire-tap state; guarded by the pipeline mutex (read once per drain).
    std::shared_ptr<const StreamSchema> schema;
    WireSink wire_sink;
  };

  void offer(PipeQueue& queue, Record record);
  void schedule_drain(const std::shared_ptr<PipeQueue>& queue);
  void drain(const std::shared_ptr<PipeQueue>& queue);
  void deliver(PipeQueue& queue, std::vector<Record>& batch,
               const std::vector<DataScheduler::Consumer>& consumers,
               const std::shared_ptr<const StreamSchema>& schema,
               const WireSink& wire_sink);
  std::shared_ptr<PipeQueue> find_queue(const std::string& queue) const;
  std::vector<std::shared_ptr<PipeQueue>> snapshot() const;

  DataScheduler scheduler_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mutex_;  // guards queues_ registry + stopped_
  std::map<std::string, std::shared_ptr<PipeQueue>> queues_;
  std::shared_ptr<const std::vector<DataScheduler::Consumer>> consumers_ =
      std::make_shared<std::vector<DataScheduler::Consumer>>();
  bool stopped_ = false;
};

/// The instrument producer stage: a dedicated thread feeding a pipeline
/// from a generator, with optional periodic punctuation — the "source" box
/// of the Fig. 5 workflow as a reusable component.
class InstrumentSource {
 public:
  /// `generator(i)` returns the i-th record, or nullopt to end the stream.
  using Generator = std::function<std::optional<Record>(uint64_t index)>;

  struct Options {
    uint64_t punctuate_every = 0;  ///< broadcast punctuation each N records (0 = never)
    Json punctuation = Json::object();
  };

  InstrumentSource(StreamPipeline& pipeline, Generator generator,
                   Options options);
  InstrumentSource(StreamPipeline& pipeline, Generator generator)
      : InstrumentSource(pipeline, std::move(generator), Options{}) {}
  ~InstrumentSource();  // implies join()

  InstrumentSource(const InstrumentSource&) = delete;
  InstrumentSource& operator=(const InstrumentSource&) = delete;

  /// Wait for the generator to finish. Does NOT shut the pipeline down —
  /// several sources can feed one plane.
  void join();

  uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> published_{0};
  std::thread thread_;
};

}  // namespace ff::stream
