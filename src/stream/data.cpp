#include "stream/data.hpp"

#include "util/error.hpp"

namespace ff::stream {

std::string_view value_type_name(const Value& value) noexcept {
  switch (value.index()) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "string";
    case 3: return "double[]";
  }
  return "?";
}

core::SchemaDescriptor StreamSchema::to_descriptor() const {
  core::SchemaDescriptor descriptor;
  descriptor.name = name;
  descriptor.version = version;
  descriptor.container = "ffbin";
  for (const Field& field : fields) {
    descriptor.fields.push_back({field.name, field.type});
  }
  return descriptor;
}

StreamSchema StreamSchema::from_descriptor(const core::SchemaDescriptor& descriptor) {
  StreamSchema schema;
  schema.name = descriptor.name;
  schema.version = descriptor.version;
  for (const auto& field : descriptor.fields) {
    schema.fields.push_back({field.name, field.type});
  }
  return schema;
}

void validate_record(const Record& record, const StreamSchema& schema) {
  if (record.values.size() != schema.fields.size()) {
    throw ValidationError("record for '" + schema.key() + "' has " +
                          std::to_string(record.values.size()) + " values, schema has " +
                          std::to_string(schema.fields.size()) + " fields");
  }
  for (size_t i = 0; i < record.values.size(); ++i) {
    const std::string_view got = value_type_name(record.values[i]);
    if (got != schema.fields[i].type) {
      throw ValidationError("record field '" + schema.fields[i].name + "' is " +
                            std::string(got) + ", schema says " +
                            schema.fields[i].type);
    }
  }
}

}  // namespace ff::stream
