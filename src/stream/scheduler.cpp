#include "stream/scheduler.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::stream {

void DataScheduler::install_queue(const std::string& queue,
                                  std::unique_ptr<SelectionPolicy> policy,
                                  Sink sink) {
  if (!policy) throw ValidationError("install_queue: null policy");
  auto entry = std::make_shared<VirtualQueue>();
  entry->policy = std::move(policy);
  entry->sink = std::move(sink);
  {
    std::lock_guard lock(mutex_);
    if (queues_.count(queue)) {
      throw ValidationError("install_queue: queue '" + queue + "' already exists");
    }
    queues_.emplace(queue, std::move(entry));
  }
  obs::trace_instant("stream", "stream.queue.install", {{"queue", queue}});
}

void DataScheduler::remove_queue(const std::string& queue) {
  {
    std::lock_guard lock(mutex_);
    if (queues_.erase(queue) == 0) {
      throw NotFoundError("remove_queue: no queue '" + queue + "'");
    }
  }
  obs::trace_instant("stream", "stream.queue.remove", {{"queue", queue}});
}

bool DataScheduler::has_queue(const std::string& queue) const noexcept {
  std::lock_guard lock(mutex_);
  return queues_.count(queue) > 0;
}

std::vector<std::string> DataScheduler::queue_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, _] : queues_) names.push_back(name);
  return names;
}

std::shared_ptr<DataScheduler::VirtualQueue> DataScheduler::require(
    const std::string& queue) const {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) throw NotFoundError("no queue '" + queue + "'");
  return it->second;
}

std::vector<DataScheduler::QueueRef> DataScheduler::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<QueueRef> queues;
  queues.reserve(queues_.size());
  for (const auto& [name, entry] : queues_) queues.emplace_back(name, entry);
  return queues;
}

void DataScheduler::set_active(const std::string& queue, bool active) {
  const auto entry = require(queue);
  {
    std::lock_guard lock(entry->mutex);
    entry->active = active;
  }
  obs::trace_instant("stream", "stream.queue.active",
                     {{"queue", queue}, {"active", active}});
}

bool DataScheduler::is_active(const std::string& queue) const {
  const auto entry = require(queue);
  std::lock_guard lock(entry->mutex);
  return entry->active;
}

void DataScheduler::subscribe(Consumer consumer) {
  if (!consumer) throw ValidationError("subscribe: null consumer");
  std::lock_guard lock(mutex_);
  auto next = std::make_shared<std::vector<Consumer>>(*consumers_);
  next->push_back(std::move(consumer));
  consumers_ = std::move(next);
}

void DataScheduler::set_queue_sink(const std::string& queue, Sink sink) {
  const auto entry = require(queue);
  std::lock_guard lock(entry->mutex);
  entry->sink = std::move(sink);
}

void DataScheduler::deliver_locked(const std::string& queue,
                                   VirtualQueue& entry,
                                   std::vector<Record> released) {
  entry.stats.releases += released.size();
  if (!released.empty()) {
    obs::trace_instant("stream", "stream.release",
                       {{"queue", queue}, {"count", released.size()}});
  }
  if (entry.sink) {
    for (Record& record : released) entry.sink(queue, std::move(record));
    return;
  }
  std::shared_ptr<const std::vector<Consumer>> consumers;
  {
    std::lock_guard lock(mutex_);
    consumers = consumers_;
  }
  for (const Record& record : released) {
    for (const Consumer& consumer : *consumers) consumer(queue, record);
  }
}

void DataScheduler::publish(const Record& record) {
  for (const auto& [name, entry] : snapshot()) {
    std::lock_guard lock(entry->mutex);
    if (!entry->active) continue;
    ++entry->stats.arrivals;
    deliver_locked(name, *entry, entry->policy->on_item(record));
    if (obs::tracing_enabled()) {
      // Backlog = records the policy is still holding (arrived, unreleased).
      obs::trace_counter(
          "stream", "stream.queue.backlog",
          static_cast<double>(entry->stats.arrivals - entry->stats.releases),
          {{"queue", name}});
    }
  }
}

void DataScheduler::publish_batch(const std::vector<Record>& records) {
  if (records.empty()) return;
  for (const auto& [name, entry] : snapshot()) {
    std::lock_guard lock(entry->mutex);
    if (!entry->active) continue;
    for (const Record& record : records) {
      ++entry->stats.arrivals;
      deliver_locked(name, *entry, entry->policy->on_item(record));
    }
    if (obs::tracing_enabled()) {
      obs::trace_counter(
          "stream", "stream.queue.backlog",
          static_cast<double>(entry->stats.arrivals - entry->stats.releases),
          {{"queue", name}});
    }
  }
}

void DataScheduler::control(const std::string& queue, const Json& argument) {
  const auto entry = require(queue);
  obs::trace_instant("stream", "stream.control", {{"queue", queue}});
  std::lock_guard lock(entry->mutex);
  deliver_locked(queue, *entry, entry->policy->on_punctuation(argument));
}

void DataScheduler::punctuate(const Json& argument) {
  obs::trace_instant("stream", "stream.punctuate");
  for (const auto& [name, entry] : snapshot()) {
    std::lock_guard lock(entry->mutex);
    if (!entry->active) continue;
    deliver_locked(name, *entry, entry->policy->on_punctuation(argument));
  }
}

DataScheduler::QueueStats DataScheduler::stats(const std::string& queue) const {
  const auto entry = require(queue);
  std::lock_guard lock(entry->mutex);
  return entry->stats;
}

PolicyFactory PolicyFactory::with_builtins() {
  PolicyFactory factory;
  factory.register_kind("forward-all", [](const Json&) {
    return std::make_unique<ForwardAllPolicy>();
  });
  factory.register_kind("sliding-window-count", [](const Json& args) {
    return std::make_unique<SlidingWindowCountPolicy>(
        static_cast<size_t>(args["capacity"].as_int()));
  });
  factory.register_kind("sliding-window-time", [](const Json& args) {
    return std::make_unique<SlidingWindowTimePolicy>(args["horizon"].as_double());
  });
  factory.register_kind("direct-selection", [](const Json& args) {
    return std::make_unique<DirectSelectionPolicy>(
        static_cast<size_t>(args.get_or("max_queue", int64_t{4096})));
  });
  factory.register_kind("sample-every", [](const Json& args) {
    return std::make_unique<SampleEveryNPolicy>(
        static_cast<size_t>(args["stride"].as_int()));
  });
  return factory;
}

void PolicyFactory::register_kind(const std::string& kind, Builder builder) {
  if (!builder) throw ValidationError("register_kind: null builder");
  builders_[kind] = std::move(builder);
}

bool PolicyFactory::knows(const std::string& kind) const noexcept {
  return builders_.count(kind) > 0;
}

std::unique_ptr<SelectionPolicy> PolicyFactory::build(const std::string& kind,
                                                      const Json& args) const {
  auto it = builders_.find(kind);
  if (it == builders_.end()) {
    throw NotFoundError("PolicyFactory: unknown policy kind '" + kind + "'");
  }
  return it->second(args);
}

void PolicyFactory::handle_install(DataScheduler& scheduler,
                                   const Json& message) const {
  const Json& install = message["install"];
  const std::string queue = install["queue"].as_string();
  const std::string kind = install["kind"].as_string();
  const Json args = install.contains("args") ? install["args"] : Json::object();
  obs::trace_instant("stream", "stream.policy.install",
                     {{"queue", queue}, {"kind", kind}});
  scheduler.install_queue(queue, build(kind, args));
}

}  // namespace ff::stream
