#pragma once

#include "skel/generator.hpp"
#include "stream/data.hpp"

namespace ff::stream {

/// Model-driven generation of the *communication* half of the Fig. 5
/// subgraph. Given a stream schema, emit the source of the collection and
/// forwarding components (marshal/unmarshal glue plus channel plumbing).
/// The selection policy is deliberately NOT generated — it is installed at
/// runtime through the control channel — so "code which does not change
/// often (the communication components)" is reused, while "code which
/// needs to change at runtime (data scheduling)" stays late-bound.
///
/// Artifacts (paths relative to the generated component root):
///   comm/<name>_marshal.cpp   per-field encode/decode glue
///   comm/<name>_source.cpp    instrument-side collection loop
///   comm/<name>_sink.cpp      consumer-side forwarding loop
///   comm/README.md            regeneration notes
std::vector<skel::Artifact> generate_comm_code(const StreamSchema& schema);

/// The Skel model document the generator renders from (exposed for tests
/// and for documenting the customization surface).
Json comm_model(const StreamSchema& schema);

/// Count the source lines of a generated artifact set (regeneration cost
/// metric used by the Fig. 5 bench).
size_t generated_loc(const std::vector<skel::Artifact>& artifacts);

}  // namespace ff::stream
