#pragma once

#include <cstdint>
#include <vector>

#include "stream/data.hpp"

namespace ff::stream {

/// Self-describing binary marshalling for stream records, in the spirit of
/// FFS ("given sufficient data description and marshalling support,
/// complete a priori knowledge is not necessary even in high-performance
/// binary data exchanges" — paper Section V-C).
///
/// Wire layout (little-endian):
///   stream header:  magic "FFB1", schema blob (name, version, fields)
///   per record:     sequence u64, timestamp f64, field count u32,
///                   then per field: type tag u8 + payload
///
/// A decoder needs only the bytes: the header reconstructs the schema, so
/// a receiver compiled without the producer's schema can still unmarshal —
/// that is what makes the communication components *generated, reusable*
/// code rather than per-format hand work.
class Encoder {
 public:
  explicit Encoder(StreamSchema schema);

  /// Append one record (validated against the schema).
  void append(const Record& record);

  size_t records_encoded() const noexcept { return count_; }
  /// The full stream so far (header + records).
  const std::vector<uint8_t>& bytes() const noexcept { return buffer_; }

 private:
  StreamSchema schema_;
  std::vector<uint8_t> buffer_;
  size_t count_ = 0;
};

/// Decode a full stream produced by Encoder. Throws ParseError on any
/// corruption (bad magic, truncation, unknown type tag).
struct DecodedStream {
  StreamSchema schema;
  std::vector<Record> records;
};
DecodedStream decode_stream(const std::vector<uint8_t>& bytes);

}  // namespace ff::stream
