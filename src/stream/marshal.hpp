#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "stream/data.hpp"

namespace ff::stream {

/// Which codec a queue's wire tap uses. `SelfDescribing` is the Encoder /
/// decode_stream pair below — the schema travels in the header, so a
/// receiver needs only the bytes. `Binary` is the FrameEncoder /
/// decode_frame_stream pair — length-prefixed fixed-layout frames that
/// assume the receiver already holds the schema (the FFS "complete a
/// priori knowledge" fast path), roughly an order of magnitude quicker to
/// decode.
enum class WireFormat : uint8_t { SelfDescribing, Binary };

const char* wire_format_name(WireFormat format) noexcept;

/// Parse "self-describing" / "binary"; throws ValidationError otherwise.
WireFormat parse_wire_format(std::string_view name);

/// Self-describing binary marshalling for stream records, in the spirit of
/// FFS ("given sufficient data description and marshalling support,
/// complete a priori knowledge is not necessary even in high-performance
/// binary data exchanges" — paper Section V-C).
///
/// Wire layout (little-endian):
///   stream header:  magic "FFB1", schema blob (name, version, fields)
///   per record:     sequence u64, timestamp f64, field count u32,
///                   then per field: type tag u8 + payload
///
/// A decoder needs only the bytes: the header reconstructs the schema, so
/// a receiver compiled without the producer's schema can still unmarshal —
/// that is what makes the communication components *generated, reusable*
/// code rather than per-format hand work.
class Encoder {
 public:
  explicit Encoder(StreamSchema schema);

  /// Append one record (validated against the schema).
  void append(const Record& record);

  size_t records_encoded() const noexcept { return count_; }
  /// The full stream so far (header + records).
  const std::vector<uint8_t>& bytes() const noexcept { return buffer_; }

 private:
  StreamSchema schema_;
  std::vector<uint8_t> buffer_;
  size_t count_ = 0;
};

/// Decode a full stream produced by Encoder. Throws ParseError on any
/// corruption (bad magic, truncation, unknown type tag).
struct DecodedStream {
  StreamSchema schema;
  std::vector<Record> records;
};
DecodedStream decode_stream(const std::vector<uint8_t>& bytes);

/// The binary frame codec: the `format: "binary"` wire for queues whose
/// consumer has the schema registered a priori.
///
/// Wire layout (little-endian throughout):
///   stream header:  magic 'F' 'F' 'W', version byte 0x01,
///                   u16 schema-key length + key bytes ("name:vN")
///   per frame:      u32 payload length, then the payload:
///                     sequence u64, timestamp f64 (raw IEEE-754 bits —
///                     NaN payloads and infinities survive bit-exactly),
///                     then each field in schema order with NO per-value
///                     type tag: int → i64, double → f64,
///                     string → u32 length + bytes,
///                     double[] → u32 count + count × f64
///
/// Because the layout is schema-driven there is nothing to re-validate per
/// record on decode, which is where the speedup over the self-describing
/// path comes from. Every length is bounds-checked against the enclosing
/// frame before any allocation, and a frame whose payload does not end
/// exactly where its length prefix said is rejected — corruption raises
/// ParseError, never garbage records.
class FrameEncoder {
 public:
  explicit FrameEncoder(StreamSchema schema);

  /// Append one record as a frame (validated against the schema).
  void append(const Record& record);

  size_t records_encoded() const noexcept { return count_; }
  /// The full stream so far (header + frames).
  const std::vector<uint8_t>& bytes() const noexcept { return buffer_; }

 private:
  StreamSchema schema_;
  std::vector<uint8_t> field_kinds_;  // resolved type tags, schema order
  std::vector<uint8_t> buffer_;
  size_t count_ = 0;
};

/// Decode a frame stream produced by FrameEncoder. The caller supplies the
/// schema (that is the contract of the binary format); the header's schema
/// key must match `schema.key()` or decoding fails. Throws ParseError on
/// bad magic, unknown version, key mismatch, or any truncated / poisoned
/// frame. A stream cut exactly at a frame boundary decodes to the clean
/// whole-record prefix.
DecodedStream decode_frame_stream(const std::vector<uint8_t>& bytes,
                                  const StreamSchema& schema);

/// Steady-state variant for chunk-at-a-time consumers (the wire-sink
/// path): decodes into `out`, reusing its record and value buffers so a
/// fixed-width schema decodes with zero allocations per chunk once warm.
/// `out` is fully overwritten (schema + records, sized to this stream's
/// frame count). On ParseError the contents of `out` are unspecified.
void decode_frame_stream_into(const std::vector<uint8_t>& bytes,
                              const StreamSchema& schema, DecodedStream& out);

}  // namespace ff::stream
