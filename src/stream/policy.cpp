#include "stream/policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ff::stream {

SlidingWindowCountPolicy::SlidingWindowCountPolicy(size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw ValidationError("SlidingWindowCountPolicy: capacity must be > 0");
  }
}

std::string SlidingWindowCountPolicy::name() const {
  return "sliding-window-count(" + std::to_string(capacity_) + ")";
}

std::vector<Record> SlidingWindowCountPolicy::on_item(const Record& record) {
  window_.push_back(record);
  if (window_.size() > capacity_) window_.pop_front();
  return {};
}

std::vector<Record> SlidingWindowCountPolicy::on_punctuation(const Json&) {
  return {window_.begin(), window_.end()};
}

SlidingWindowTimePolicy::SlidingWindowTimePolicy(double horizon) : horizon_(horizon) {
  if (horizon <= 0) throw ValidationError("SlidingWindowTimePolicy: horizon must be > 0");
}

std::string SlidingWindowTimePolicy::name() const {
  return "sliding-window-time(" + std::to_string(horizon_) + "s)";
}

std::vector<Record> SlidingWindowTimePolicy::on_item(const Record& record) {
  window_.push_back(record);
  const double cutoff = record.timestamp - horizon_;
  while (!window_.empty() && window_.front().timestamp < cutoff) {
    window_.pop_front();
  }
  return {};
}

std::vector<Record> SlidingWindowTimePolicy::on_punctuation(const Json&) {
  return {window_.begin(), window_.end()};
}

DirectSelectionPolicy::DirectSelectionPolicy(size_t max_queue)
    : max_queue_(max_queue) {
  if (max_queue == 0) throw ValidationError("DirectSelectionPolicy: max_queue > 0");
}

std::vector<Record> DirectSelectionPolicy::on_item(const Record& record) {
  queue_.push_back(record);
  if (queue_.size() > max_queue_) queue_.pop_front();  // bounded: drop oldest
  return {};
}

std::vector<Record> DirectSelectionPolicy::on_punctuation(const Json& argument) {
  std::vector<Record> released;
  if (!argument.is_object()) return released;
  if (argument.get_or("flush", false)) {
    released.assign(queue_.begin(), queue_.end());
    queue_.clear();
    return released;
  }
  if (argument.contains("drop_before")) {
    const auto cutoff = static_cast<uint64_t>(argument["drop_before"].as_int());
    while (!queue_.empty() && queue_.front().sequence < cutoff) queue_.pop_front();
  }
  if (argument.contains("select")) {
    for (const Json& wanted : argument["select"].as_array()) {
      const auto sequence = static_cast<uint64_t>(wanted.as_int());
      auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Record& r) {
        return r.sequence == sequence;
      });
      if (it != queue_.end()) {
        released.push_back(*it);
        queue_.erase(it);
      }
    }
  }
  return released;
}

SampleEveryNPolicy::SampleEveryNPolicy(size_t stride) : stride_(stride) {
  if (stride == 0) throw ValidationError("SampleEveryNPolicy: stride must be > 0");
}

std::string SampleEveryNPolicy::name() const {
  return "sample-every(" + std::to_string(stride_) + ")";
}

std::vector<Record> SampleEveryNPolicy::on_item(const Record& record) {
  const bool take = (seen_ % stride_) == 0;
  ++seen_;
  if (take) return {record};
  return {};
}

}  // namespace ff::stream
