#include "stream/channel.hpp"

#include "util/error.hpp"

namespace ff::stream {

const char* overflow_name(Overflow policy) noexcept {
  switch (policy) {
    case Overflow::Block: return "block";
    case Overflow::DropOldest: return "drop-oldest";
    case Overflow::KeepLatest: return "keep-latest";
  }
  return "unknown";
}

Channel::Channel(size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ValidationError("Channel: capacity must be > 0");
}

bool Channel::send(Record record) {
  std::unique_lock lock(mutex_);
  ++send_waiters_;
  not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  --send_waiters_;
  if (closed_) return false;
  queue_.push_back(std::move(record));
  ++sent_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool Channel::try_send(Record record) {
  {
    std::lock_guard lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(record));
    ++sent_;
  }
  not_empty_.notify_one();
  return true;
}

Channel::OfferResult Channel::offer(Record record, Overflow policy) {
  if (policy == Overflow::Block) {
    return OfferResult{send(std::move(record)), 0};
  }
  OfferResult result;
  {
    std::lock_guard lock(mutex_);
    if (closed_) return result;
    if (queue_.size() >= capacity_) {
      if (policy == Overflow::DropOldest) {
        queue_.pop_front();
        result.evicted = 1;
      } else {  // KeepLatest: conflate to the incoming record
        result.evicted = queue_.size();
        queue_.clear();
      }
      dropped_ += result.evicted;
    }
    queue_.push_back(std::move(record));
    ++sent_;
    result.accepted = true;
  }
  not_empty_.notify_one();
  return result;
}

std::optional<Record> Channel::receive() {
  std::unique_lock lock(mutex_);
  ++receive_waiters_;
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  --receive_waiters_;
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Record record = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  lock.unlock();
  not_full_.notify_one();
  return record;
}

std::optional<Record> Channel::try_receive() {
  std::optional<Record> record;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    record = std::move(queue_.front());
    queue_.pop_front();
    ++received_;
  }
  not_full_.notify_one();
  return record;
}

std::optional<Record> Channel::receive_for(std::chrono::nanoseconds timeout) {
  std::unique_lock lock(mutex_);
  ++receive_waiters_;
  const bool ready = not_empty_.wait_for(
      lock, timeout, [this] { return closed_ || !queue_.empty(); });
  --receive_waiters_;
  if (!ready || queue_.empty()) return std::nullopt;  // timeout, or drained
  Record record = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  lock.unlock();
  not_full_.notify_one();
  return record;
}

void Channel::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::vector<Record> Channel::close_and_drain() {
  std::vector<Record> remaining;
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    remaining.reserve(queue_.size());
    while (!queue_.empty()) {
      remaining.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++received_;
    }
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  return remaining;
}

bool Channel::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

size_t Channel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

uint64_t Channel::sent() const {
  std::lock_guard lock(mutex_);
  return sent_;
}

uint64_t Channel::received() const {
  std::lock_guard lock(mutex_);
  return received_;
}

uint64_t Channel::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

size_t Channel::send_waiters() const {
  std::lock_guard lock(mutex_);
  return send_waiters_;
}

size_t Channel::receive_waiters() const {
  std::lock_guard lock(mutex_);
  return receive_waiters_;
}

}  // namespace ff::stream
