#include "stream/channel.hpp"

#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ff::stream {

namespace {

/// How many failed lock-free attempts a blocking call makes before parking.
/// On a single-core host spinning only steals the timeslice the peer needs
/// to make progress, so the budget collapses to a single attempt.
int spin_budget() noexcept {
  static const int budget = std::thread::hardware_concurrency() > 1 ? 128 : 1;
  return budget;
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

size_t round_up_pow2(size_t value) noexcept {
  size_t rounded = 1;
  while (rounded < value) rounded <<= 1;
  return rounded;
}

}  // namespace

const char* overflow_name(Overflow policy) noexcept {
  switch (policy) {
    case Overflow::Block: return "block";
    case Overflow::DropOldest: return "drop-oldest";
    case Overflow::KeepLatest: return "keep-latest";
  }
  return "unknown";
}

const char* channel_kind_name(ChannelKind kind) noexcept {
  switch (kind) {
    case ChannelKind::Mutex: return "mutex";
    case ChannelKind::Spsc: return "spsc";
    case ChannelKind::Mpmc: return "mpmc";
  }
  return "unknown";
}

ChannelKind parse_channel_kind(std::string_view name) {
  if (name == "mutex") return ChannelKind::Mutex;
  if (name == "spsc") return ChannelKind::Spsc;
  if (name == "mpmc") return ChannelKind::Mpmc;
  throw ValidationError("unknown channel kind '" + std::string(name) +
                        "' (want mutex, spsc, or mpmc)");
}

std::unique_ptr<Channel> make_channel(ChannelKind kind, size_t capacity) {
  if (kind == ChannelKind::Mutex) {
    return std::make_unique<MutexChannel>(capacity);
  }
  return std::make_unique<RingChannel>(capacity, kind);
}

// --- MutexChannel ---------------------------------------------------------

MutexChannel::MutexChannel(size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ValidationError("Channel: capacity must be > 0");
}

bool MutexChannel::send(Record record) {
  std::unique_lock lock(mutex_);
  ++send_waiters_;
  not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  --send_waiters_;
  if (closed_) return false;
  queue_.push_back(std::move(record));
  ++sent_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool MutexChannel::try_send(Record record) {
  {
    std::lock_guard lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(record));
    ++sent_;
  }
  not_empty_.notify_one();
  return true;
}

Channel::OfferResult MutexChannel::offer(Record record, Overflow policy) {
  if (policy == Overflow::Block) {
    return OfferResult{send(std::move(record)), 0};
  }
  OfferResult result;
  {
    std::lock_guard lock(mutex_);
    if (closed_) return result;
    if (queue_.size() >= capacity_) {
      if (policy == Overflow::DropOldest) {
        queue_.pop_front();
        result.evicted = 1;
      } else {  // KeepLatest: conflate to the incoming record
        result.evicted = queue_.size();
        queue_.clear();
      }
      dropped_ += result.evicted;
    }
    queue_.push_back(std::move(record));
    ++sent_;
    result.accepted = true;
  }
  not_empty_.notify_one();
  return result;
}

std::optional<Record> MutexChannel::receive() {
  std::unique_lock lock(mutex_);
  ++receive_waiters_;
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  --receive_waiters_;
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Record record = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  lock.unlock();
  not_full_.notify_one();
  return record;
}

std::optional<Record> MutexChannel::try_receive() {
  std::optional<Record> record;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    record = std::move(queue_.front());
    queue_.pop_front();
    ++received_;
  }
  not_full_.notify_one();
  return record;
}

std::optional<Record> MutexChannel::receive_for(
    std::chrono::nanoseconds timeout) {
  std::unique_lock lock(mutex_);
  ++receive_waiters_;
  const bool ready = not_empty_.wait_for(
      lock, timeout, [this] { return closed_ || !queue_.empty(); });
  --receive_waiters_;
  if (!ready || queue_.empty()) return std::nullopt;  // timeout, or drained
  Record record = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  lock.unlock();
  not_full_.notify_one();
  return record;
}

size_t MutexChannel::drain_into(std::vector<Record>& out, size_t max) {
  size_t taken = 0;
  {
    std::lock_guard lock(mutex_);
    while (taken < max && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++taken;
    }
    received_ += taken;
  }
  if (taken > 0) not_full_.notify_all();  // several slots may have freed
  return taken;
}

void MutexChannel::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::vector<Record> MutexChannel::close_and_drain() {
  std::vector<Record> remaining;
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    remaining.reserve(queue_.size());
    while (!queue_.empty()) {
      remaining.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++received_;
    }
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  return remaining;
}

bool MutexChannel::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

size_t MutexChannel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

uint64_t MutexChannel::sent() const {
  std::lock_guard lock(mutex_);
  return sent_;
}

uint64_t MutexChannel::received() const {
  std::lock_guard lock(mutex_);
  return received_;
}

uint64_t MutexChannel::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

size_t MutexChannel::send_waiters() const {
  std::lock_guard lock(mutex_);
  return send_waiters_;
}

size_t MutexChannel::receive_waiters() const {
  std::lock_guard lock(mutex_);
  return receive_waiters_;
}

// --- RingChannel ----------------------------------------------------------

RingChannel::RingChannel(size_t capacity, ChannelKind kind)
    : kind_(kind),
      capacity_(round_up_pow2(capacity)),
      cells_n_(std::max<size_t>(2, capacity_)),
      mask_(cells_n_ - 1),
      cells_(nullptr) {
  if (capacity == 0) throw ValidationError("Channel: capacity must be > 0");
  if (capacity > (size_t{1} << 30)) {
    throw ValidationError("Channel: ring capacity too large");
  }
  if (kind != ChannelKind::Spsc && kind != ChannelKind::Mpmc) {
    throw ValidationError("RingChannel: kind must be spsc or mpmc");
  }
  cells_ = std::make_unique<Cell[]>(cells_n_);
  for (uint64_t i = 0; i < cells_n_; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

RingChannel::~RingChannel() = default;

bool RingChannel::push(Record& record) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    if (capacity_ != cells_n_ &&
        pos - dequeue_pos_.load(std::memory_order_acquire) >= capacity_) {
      // Capacity-1 ring: the physical ring has a spare cell (see cells_n_),
      // so fullness is gated on the logical position distance instead of
      // the cell sequence.
      return false;
    }
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq - pos);
    if (dif == 0) {
      if (kind_ == ChannelKind::Spsc) {
        // Single producer: nobody else advances enqueue_pos, a plain
        // store claims the cell.
        enqueue_pos_.store(pos + 1, std::memory_order_relaxed);
      } else if (!enqueue_pos_.compare_exchange_weak(
                     pos, pos + 1, std::memory_order_relaxed)) {
        continue;  // lost the claim race; pos was reloaded by the CAS
      }
      cell.record = std::move(record);
      cell.sequence.store(pos + 1, std::memory_order_release);
      return true;
    }
    if (dif < 0) return false;  // cell not yet recycled: ring is full
    pos = enqueue_pos_.load(std::memory_order_relaxed);
  }
}

bool RingChannel::pop(Record& record) {
  // Always multi-consumer: real consumers, lossy-eviction producers, and
  // close_and_drain all pop through this CAS protocol.
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq - (pos + 1));
    if (dif == 0) {
      if (!dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
        continue;
      }
      record = std::move(cell.record);
      cell.record = Record{};  // release payload memory eagerly
      cell.sequence.store(pos + cells_n_, std::memory_order_release);
      return true;
    }
    if (dif < 0) return false;  // cell not yet published: ring is empty
    pos = dequeue_pos_.load(std::memory_order_relaxed);
  }
}

bool RingChannel::push_open(Record& record, bool& rejected) {
  // The seq_cst ticket RMW orders this send against close_and_drain: if we
  // read `closed == false` below, the closer's subsequent in-flight read is
  // guaranteed to observe our ticket and wait for this push to land.
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (closed_.load(std::memory_order_seq_cst)) {
    in_flight_.fetch_sub(1, std::memory_order_release);
    rejected = true;
    // A receiver may be parked waiting on "closed && in_flight == 0";
    // aborted sends must not leave it asleep.
    wake_receivers();
    return false;
  }
  rejected = false;
  const bool pushed = push(record);
  in_flight_.fetch_sub(1, std::memory_order_release);
  if (pushed) {
    sent_.fetch_add(1, std::memory_order_relaxed);
    wake_receivers();
  }
  return pushed;
}

bool RingChannel::drained() const {
  if (!closed_.load(std::memory_order_acquire)) return false;
  if (size() != 0) return false;
  // A send that won the race against close() may still be materializing
  // its record; don't report "drained" until it lands or aborts.
  return in_flight_.load(std::memory_order_seq_cst) == 0;
}

void RingChannel::wake_senders() {
  // Eventcount handshake (waker side): make the pop visible, then look for
  // parked senders. Pairs with the fence after the waiter registers.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (send_waiters_.load(std::memory_order_relaxed) == 0) return;
  { std::lock_guard lock(park_mutex_); }
  not_full_.notify_all();
}

void RingChannel::wake_receivers() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (receive_waiters_.load(std::memory_order_relaxed) == 0) return;
  { std::lock_guard lock(park_mutex_); }
  not_empty_.notify_all();
}

bool RingChannel::send(Record record) {
  for (;;) {
    bool rejected = false;
    for (int spin = spin_budget(); spin > 0; --spin) {
      if (push_open(record, rejected)) return true;
      if (rejected) return false;
      cpu_relax();
    }
    // Park until space frees or the channel closes, then retry.
    std::unique_lock lock(park_mutex_);
    send_waiters_.fetch_add(1, std::memory_order_seq_cst);
    // Eventcount handshake (waiter side): registration must be ordered
    // before the final re-check, or a concurrent pop could miss us.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (obs::tracing_enabled()) {
      obs::trace_instant("stream", "stream.channel.park", {{"role", "send"}});
    }
    not_full_.wait(lock, [this] {
      return closed_.load(std::memory_order_acquire) || size() < capacity_;
    });
    send_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool RingChannel::try_send(Record record) {
  bool rejected = false;
  return push_open(record, rejected);
}

Channel::OfferResult RingChannel::offer(Record record, Overflow policy) {
  if (policy == Overflow::Block) {
    return OfferResult{send(std::move(record)), 0};
  }
  OfferResult result;
  for (;;) {
    bool rejected = false;
    if (push_open(record, rejected)) {
      result.accepted = true;
      return result;
    }
    if (rejected) return result;  // closed: not accepted
    // Full: evict per policy, then retry. Eviction pops race real
    // consumers safely (the pop protocol is multi-consumer); each round
    // either pushes or removes a record, so the loop makes progress even
    // when other producers keep refilling the ring.
    Record discard;
    if (policy == Overflow::DropOldest) {
      if (pop(discard)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        ++result.evicted;
        wake_senders();
      }
    } else {  // KeepLatest: conflate — drain everything, then push
      size_t evicted_now = 0;
      while (pop(discard)) ++evicted_now;
      if (evicted_now > 0) {
        dropped_.fetch_add(evicted_now, std::memory_order_relaxed);
        result.evicted += evicted_now;
        wake_senders();
      }
    }
  }
}

std::optional<Record> RingChannel::receive_until(
    const std::chrono::steady_clock::time_point* deadline) {
  Record record;
  for (int spin = spin_budget(); spin > 0; --spin) {
    if (pop(record)) {
      received_.fetch_add(1, std::memory_order_relaxed);
      wake_senders();
      return record;
    }
    if (drained()) return std::nullopt;
    cpu_relax();
  }
  std::unique_lock lock(park_mutex_);
  receive_waiters_.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (pop(record)) {
      receive_waiters_.fetch_sub(1, std::memory_order_relaxed);
      lock.unlock();
      received_.fetch_add(1, std::memory_order_relaxed);
      wake_senders();
      return record;
    }
    if (drained()) break;
    if (obs::tracing_enabled()) {
      obs::trace_instant("stream", "stream.channel.park",
                         {{"role", "receive"}});
    }
    if (deadline == nullptr) {
      not_empty_.wait(lock);
    } else if (not_empty_.wait_until(lock, *deadline) ==
               std::cv_status::timeout) {
      // One last look: a push may have landed exactly at the deadline.
      if (!pop(record)) break;
      receive_waiters_.fetch_sub(1, std::memory_order_relaxed);
      lock.unlock();
      received_.fetch_add(1, std::memory_order_relaxed);
      wake_senders();
      return record;
    }
  }
  receive_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<Record> RingChannel::receive() { return receive_until(nullptr); }

std::optional<Record> RingChannel::try_receive() {
  Record record;
  if (!pop(record)) return std::nullopt;
  received_.fetch_add(1, std::memory_order_relaxed);
  wake_senders();
  return record;
}

std::optional<Record> RingChannel::receive_for(
    std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  return receive_until(&deadline);
}

size_t RingChannel::drain_into(std::vector<Record>& out, size_t max) {
  size_t taken = 0;
  Record record;
  while (taken < max && pop(record)) {
    out.push_back(std::move(record));
    ++taken;
  }
  if (taken > 0) {
    received_.fetch_add(taken, std::memory_order_relaxed);
    wake_senders();  // one wake amortized over the whole batch
  }
  return taken;
}

void RingChannel::close() {
  closed_.store(true, std::memory_order_seq_cst);
  { std::lock_guard lock(park_mutex_); }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::vector<Record> RingChannel::close_and_drain() {
  close();
  // Wait out in-flight sends: any push that read `closed == false` holds a
  // ticket (see push_open), so once the count hits zero every record that
  // will ever enter the ring is fully published.
  while (in_flight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  std::vector<Record> remaining;
  remaining.reserve(size());
  Record record;
  while (pop(record)) {
    remaining.push_back(std::move(record));
    received_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_senders();
  return remaining;
}

bool RingChannel::closed() const {
  return closed_.load(std::memory_order_acquire);
}

size_t RingChannel::size() const {
  // Load dequeue first so a racing pop cannot make the difference go
  // negative; claimed-but-unpublished cells count as queued.
  const uint64_t tail = dequeue_pos_.load(std::memory_order_acquire);
  const uint64_t head = enqueue_pos_.load(std::memory_order_acquire);
  return head >= tail ? static_cast<size_t>(head - tail) : 0;
}

uint64_t RingChannel::sent() const {
  return sent_.load(std::memory_order_acquire);
}

uint64_t RingChannel::received() const {
  return received_.load(std::memory_order_acquire);
}

uint64_t RingChannel::dropped() const {
  return dropped_.load(std::memory_order_acquire);
}

size_t RingChannel::send_waiters() const {
  return send_waiters_.load(std::memory_order_acquire);
}

size_t RingChannel::receive_waiters() const {
  return receive_waiters_.load(std::memory_order_acquire);
}

}  // namespace ff::stream
