#include "stream/channel.hpp"

#include "util/error.hpp"

namespace ff::stream {

Channel::Channel(size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ValidationError("Channel: capacity must be > 0");
}

bool Channel::send(Record record) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(std::move(record));
  ++sent_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool Channel::try_send(Record record) {
  {
    std::lock_guard lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(record));
    ++sent_;
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Record> Channel::receive() {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Record record = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  lock.unlock();
  not_full_.notify_one();
  return record;
}

std::optional<Record> Channel::try_receive() {
  std::optional<Record> record;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    record = std::move(queue_.front());
    queue_.pop_front();
    ++received_;
  }
  not_full_.notify_one();
  return record;
}

void Channel::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

size_t Channel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

uint64_t Channel::sent() const {
  std::lock_guard lock(mutex_);
  return sent_;
}

uint64_t Channel::received() const {
  std::lock_guard lock(mutex_);
  return received_;
}

}  // namespace ff::stream
