#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "stream/data.hpp"

namespace ff::stream {

/// A data-scheduling (selection) policy: decides, per virtual queue, which
/// queued records are released downstream and when. Policies own a bounded
/// buffer of pending records; the scheduler feeds arrivals and punctuation
/// marks in, and collects releases.
///
/// Releases happen at two moments: on arrival (on_item) and on punctuation
/// (on_punctuation) — the paper's "control input (or 'data punctuation'
/// input, signaling abstract divisions between groups of data)".
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;
  virtual std::string name() const = 0;
  /// A record arrived; return the records to forward now.
  virtual std::vector<Record> on_item(const Record& record) = 0;
  /// A punctuation/control mark arrived; `argument` is policy-specific.
  virtual std::vector<Record> on_punctuation(const Json& argument) = 0;
};

/// Forward every record immediately — the workflow's initial policy.
class ForwardAllPolicy final : public SelectionPolicy {
 public:
  std::string name() const override { return "forward-all"; }
  std::vector<Record> on_item(const Record& record) override { return {record}; }
  std::vector<Record> on_punctuation(const Json&) override { return {}; }
};

/// Keep the most recent `capacity` records; release the whole window on
/// each punctuation (sliding window by item count).
class SlidingWindowCountPolicy final : public SelectionPolicy {
 public:
  explicit SlidingWindowCountPolicy(size_t capacity);
  std::string name() const override;
  std::vector<Record> on_item(const Record& record) override;
  std::vector<Record> on_punctuation(const Json&) override;

 private:
  size_t capacity_;
  std::deque<Record> window_;
};

/// Keep records newer than `horizon` (by record timestamp, relative to the
/// newest arrival); release the window on punctuation (sliding window by
/// time).
class SlidingWindowTimePolicy final : public SelectionPolicy {
 public:
  explicit SlidingWindowTimePolicy(double horizon);
  std::string name() const override;
  std::vector<Record> on_item(const Record& record) override;
  std::vector<Record> on_punctuation(const Json&) override;

 private:
  double horizon_;
  std::deque<Record> window_;
};

/// Queue everything; punctuation carries explicit selection — "direct
/// selection of queued data items": {"select": [sequence, ...]} releases
/// those records (and drops them from the queue), {"drop_before": seq}
/// trims, {"flush": true} releases everything.
class DirectSelectionPolicy final : public SelectionPolicy {
 public:
  explicit DirectSelectionPolicy(size_t max_queue = 4096);
  std::string name() const override { return "direct-selection"; }
  std::vector<Record> on_item(const Record& record) override;
  std::vector<Record> on_punctuation(const Json& argument) override;
  size_t queued() const noexcept { return queue_.size(); }

 private:
  size_t max_queue_;
  std::deque<Record> queue_;
};

/// Forward every Nth record (systematic sampling for monitoring taps).
class SampleEveryNPolicy final : public SelectionPolicy {
 public:
  explicit SampleEveryNPolicy(size_t stride);
  std::string name() const override;
  std::vector<Record> on_item(const Record& record) override;
  std::vector<Record> on_punctuation(const Json&) override { return {}; }

 private:
  size_t stride_;
  size_t seen_ = 0;
};

}  // namespace ff::stream
