#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/metadata_catalog.hpp"

namespace ff::stream {

/// A field value inside a stream record. The small closed set mirrors what
/// high-performance binary event systems (FFS/EVPath lineage, paper refs
/// [33]-[36]) marshal natively.
using Value = std::variant<int64_t, double, std::string, std::vector<double>>;

std::string_view value_type_name(const Value& value) noexcept;

/// The stream-level schema: ordered, typed fields. Convertible to the
/// catalog's SchemaDescriptor so stream schemas participate in the same
/// metadata ecosystem as file formats.
struct StreamSchema {
  std::string name;
  int version = 1;
  struct Field {
    std::string name;
    std::string type;  // "int", "double", "string", "double[]"
    bool operator==(const Field&) const = default;
  };
  std::vector<Field> fields;

  std::string key() const { return name + ":v" + std::to_string(version); }
  core::SchemaDescriptor to_descriptor() const;
  static StreamSchema from_descriptor(const core::SchemaDescriptor& descriptor);
  bool operator==(const StreamSchema&) const = default;
};

/// One data item flowing through the graph: a sequence number, a logical
/// timestamp, and its field values (positionally matching the schema).
struct Record {
  uint64_t sequence = 0;
  double timestamp = 0;
  std::vector<Value> values;

  bool operator==(const Record&) const = default;
};

/// Validate a record against a schema (arity and types). Throws
/// ValidationError naming the offending field.
void validate_record(const Record& record, const StreamSchema& schema);

}  // namespace ff::stream
