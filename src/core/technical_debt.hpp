#pragma once

#include <string>
#include <vector>

#include "core/component.hpp"

namespace ff::core {

/// A reuse context: what is different between the original use and the new
/// one. Each changed dimension triggers interventions whose nature (manual
/// vs automatable) depends on the component's gauge tiers — this is the
/// paper's framing of technical debt as "human effort needed to repurpose".
struct ReuseContext {
  bool new_machine = false;      // different scheduler / filesystem / account
  bool new_dataset = false;      // same shapes, different data
  bool new_data_format = false;  // format differs from the original
  bool new_team = false;         // consumers without tribal knowledge
  bool new_scale = false;        // more nodes / bigger inputs
  bool new_policy = false;       // behavioural variation (e.g. selection rule)
};

/// One unit of work required to reuse a component in a new context.
struct Intervention {
  std::string description;
  Gauge gauge;              // which gauge's tier determined the outcome
  bool manual = true;       // false when metadata makes it automatable
  double cost_minutes = 0;  // nominal human minutes when manual, else 0
};

/// All interventions needed to reuse `component` in `context`, given its
/// current gauge profile. Raising tiers converts manual entries to
/// automated ones (or removes them).
std::vector<Intervention> interventions_for(const Component& component,
                                            const ReuseContext& context);

struct DebtSummary {
  size_t manual_count = 0;
  size_t automated_count = 0;
  double manual_minutes = 0;
};

DebtSummary summarize(const std::vector<Intervention>& interventions);

/// Debt for a whole set of components under one context.
DebtSummary debt_for(const std::vector<Component>& components,
                     const ReuseContext& context);

/// Render an intervention list as an aligned report for terminal output.
std::string render_interventions(const std::vector<Intervention>& interventions);

}  // namespace ff::core
