#include "core/gauge.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::core {

namespace {

struct TierInfo {
  std::string_view name;
  std::string_view description;
};

constexpr std::array<TierInfo, 5> kAccessTiers = {{
    {"Unknown", "nothing captured about how the data is reached"},
    {"Protocol", "basic access protocol identified (POSIX file, socket, queue)"},
    {"Interface", "I/O library interface identified (CSV reader, HDF5, ADIOS, SQL)"},
    {"QueryModel", "query capabilities captured (linear scan, random access, SQL)"},
    {"MachineActionable", "access ontology fully mapped; adapters can be generated"},
}};

constexpr std::array<TierInfo, 5> kSchemaTiers = {{
    {"Unknown", "no schema information captured"},
    {"ByteStream", "data treated as an opaque byte stream"},
    {"Format", "container format identified (CSV, JSON, HDF5, ADIOS, custom binary)"},
    {"TypedStructure", "field names, types, and shapes captured"},
    {"SelfDescribing", "schema embedded and versioned; conversions automatable"},
}};

constexpr std::array<TierInfo, 5> kSemanticsTiers = {{
    {"Unknown", "no semantics of intended use captured"},
    {"Ordering", "ordering and windowing requirements captured"},
    {"DataFusion", "element-vs-window consumption and fusion rules captured"},
    {"FormatEvolution", "format version lineage and conversions captured"},
    {"DatasetSemantics", "dataset-level intent captured (labels, cohorts, splits)"},
}};

constexpr std::array<TierInfo, 5> kGranularityTiers = {{
    {"Unknown", "component boundaries not captured"},
    {"BlackBox", "entire operation described as a single opaque component"},
    {"Configured", "build/launch/execute configuration made explicit as templates"},
    {"IoSemantics", "per-component I/O semantics captured (e.g. 'first precious')"},
    {"Composable", "components can be re-partitioned and re-composed by tools"},
}};

constexpr std::array<TierInfo, 5> kCustomizabilityTiers = {{
    {"Unknown", "customization points not captured"},
    {"FixedScript", "configuration hard-coded inside the artifact"},
    {"ExposedVariables", "relevant variables identified and exposed"},
    {"Model", "machine-actionable model drives regeneration (Skel)"},
    {"ParameterRelations", "relationships between parameters captured"},
}};

constexpr std::array<TierInfo, 5> kProvenanceTiers = {{
    {"Unknown", "no provenance captured"},
    {"Logs", "raw per-execution logs retained"},
    {"ComponentRecords", "structured per-component execution records"},
    {"CampaignKnowledge", "executions linked to their campaign context"},
    {"Exportable", "export policies decide what provenance ships on reuse"},
}};

const std::array<TierInfo, 5>& ladder(Gauge gauge) {
  switch (gauge) {
    case Gauge::DataAccess: return kAccessTiers;
    case Gauge::DataSchema: return kSchemaTiers;
    case Gauge::DataSemantics: return kSemanticsTiers;
    case Gauge::SoftwareGranularity: return kGranularityTiers;
    case Gauge::SoftwareCustomizability: return kCustomizabilityTiers;
    case Gauge::SoftwareProvenance: return kProvenanceTiers;
  }
  throw Error("ladder: invalid gauge");
}

}  // namespace

size_t tier_count(Gauge gauge) noexcept { return ladder(gauge).size(); }

std::string_view gauge_name(Gauge gauge) noexcept {
  switch (gauge) {
    case Gauge::DataAccess: return "Data Access";
    case Gauge::DataSchema: return "Data Schema";
    case Gauge::DataSemantics: return "Data Semantics";
    case Gauge::SoftwareGranularity: return "Software Granularity";
    case Gauge::SoftwareCustomizability: return "Software Customizability";
    case Gauge::SoftwareProvenance: return "Software Provenance";
  }
  return "?";
}

std::string_view gauge_key(Gauge gauge) noexcept {
  switch (gauge) {
    case Gauge::DataAccess: return "access";
    case Gauge::DataSchema: return "schema";
    case Gauge::DataSemantics: return "semantics";
    case Gauge::SoftwareGranularity: return "granularity";
    case Gauge::SoftwareCustomizability: return "customizability";
    case Gauge::SoftwareProvenance: return "provenance";
  }
  return "?";
}

bool is_data_gauge(Gauge gauge) noexcept {
  return gauge == Gauge::DataAccess || gauge == Gauge::DataSchema ||
         gauge == Gauge::DataSemantics;
}

std::string_view tier_name(Gauge gauge, uint8_t tier) {
  const auto& tiers = ladder(gauge);
  if (tier >= tiers.size()) {
    throw NotFoundError("tier_name: tier " + std::to_string(tier) +
                        " out of range for gauge " + std::string(gauge_name(gauge)));
  }
  return tiers[tier].name;
}

std::string_view tier_description(Gauge gauge, uint8_t tier) {
  const auto& tiers = ladder(gauge);
  if (tier >= tiers.size()) {
    throw NotFoundError("tier_description: tier " + std::to_string(tier) +
                        " out of range for gauge " + std::string(gauge_name(gauge)));
  }
  return tiers[tier].description;
}

uint8_t tier_from_name(Gauge gauge, std::string_view name) {
  const auto& tiers = ladder(gauge);
  const std::string wanted = to_lower(name);
  for (size_t i = 0; i < tiers.size(); ++i) {
    if (to_lower(tiers[i].name) == wanted) return static_cast<uint8_t>(i);
  }
  throw NotFoundError("tier_from_name: no tier '" + std::string(name) +
                      "' in gauge " + std::string(gauge_name(gauge)));
}

Gauge gauge_from_key(std::string_view key) {
  const std::string wanted = to_lower(key);
  for (Gauge gauge : kAllGauges) {
    if (wanted == gauge_key(gauge) || wanted == to_lower(gauge_name(gauge))) {
      return gauge;
    }
  }
  throw NotFoundError("gauge_from_key: unknown gauge '" + std::string(key) + "'");
}

}  // namespace ff::core
