#include "core/gauge_profile.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::core {

void GaugeProfile::set_tier(Gauge gauge, uint8_t tier) {
  if (tier >= tier_count(gauge)) {
    throw ValidationError("GaugeProfile: tier " + std::to_string(tier) +
                          " out of range for " + std::string(gauge_name(gauge)));
  }
  tiers_[static_cast<size_t>(gauge)] = tier;
}

void GaugeProfile::raise_to(Gauge gauge, uint8_t tier) {
  if (tier > this->tier(gauge)) set_tier(gauge, tier);
}

void GaugeProfile::set_evidence(Gauge gauge, std::string note) {
  evidence_[static_cast<size_t>(gauge)] = std::move(note);
}

const std::string& GaugeProfile::evidence(Gauge gauge) const {
  return evidence_[static_cast<size_t>(gauge)];
}

bool GaugeProfile::dominates(const GaugeProfile& other) const noexcept {
  for (size_t i = 0; i < kGaugeCount; ++i) {
    if (tiers_[i] < other.tiers_[i]) return false;
  }
  return true;
}

bool GaugeProfile::meets(const GaugeProfile& required) const noexcept {
  for (Gauge gauge : kAllGauges) {
    if (required.tier(gauge) > 0 && tier(gauge) < required.tier(gauge)) return false;
  }
  return true;
}

uint8_t GaugeProfile::min_tier() const noexcept {
  return *std::min_element(tiers_.begin(), tiers_.end());
}

uint8_t GaugeProfile::min_data_tier() const noexcept {
  uint8_t lowest = 255;
  for (Gauge gauge : kAllGauges) {
    if (is_data_gauge(gauge)) lowest = std::min(lowest, tier(gauge));
  }
  return lowest;
}

uint8_t GaugeProfile::min_software_tier() const noexcept {
  uint8_t lowest = 255;
  for (Gauge gauge : kAllGauges) {
    if (!is_data_gauge(gauge)) lowest = std::min(lowest, tier(gauge));
  }
  return lowest;
}

int GaugeProfile::total_progress() const noexcept {
  int total = 0;
  for (uint8_t t : tiers_) total += t;
  return total;
}

Json GaugeProfile::to_json() const {
  Json out = Json::object();
  for (Gauge gauge : kAllGauges) {
    Json entry = Json::object();
    entry["tier"] = static_cast<int64_t>(tier(gauge));
    entry["name"] = std::string(tier_name(gauge, tier(gauge)));
    if (!evidence(gauge).empty()) entry["evidence"] = evidence(gauge);
    out[std::string(gauge_key(gauge))] = std::move(entry);
  }
  return out;
}

GaugeProfile GaugeProfile::from_json(const Json& json) {
  GaugeProfile profile;
  for (Gauge gauge : kAllGauges) {
    const std::string key{gauge_key(gauge)};
    if (!json.contains(key)) continue;
    const Json& entry = json[key];
    if (entry.is_int()) {
      profile.set_tier(gauge, static_cast<uint8_t>(entry.as_int()));
    } else if (entry.is_string()) {
      profile.set_tier(gauge, tier_from_name(gauge, entry.as_string()));
    } else {
      profile.set_tier(gauge, static_cast<uint8_t>(entry["tier"].as_int()));
      if (entry.contains("evidence")) {
        profile.set_evidence(gauge, entry["evidence"].as_string());
      }
    }
  }
  return profile;
}

std::string GaugeProfile::render() const {
  std::string out;
  for (Gauge gauge : kAllGauges) {
    out += pad_right(std::string(gauge_name(gauge)), 26);
    out += "tier " + std::to_string(tier(gauge)) + " (" +
           std::string(tier_name(gauge, tier(gauge))) + ")";
    if (!evidence(gauge).empty()) out += "  — " + evidence(gauge);
    out += '\n';
  }
  return out;
}

GaugeProfile make_profile(uint8_t access, uint8_t schema, uint8_t semantics,
                          uint8_t granularity, uint8_t customizability,
                          uint8_t provenance) {
  GaugeProfile profile;
  profile.set_tier(Gauge::DataAccess, access);
  profile.set_tier(Gauge::DataSchema, schema);
  profile.set_tier(Gauge::DataSemantics, semantics);
  profile.set_tier(Gauge::SoftwareGranularity, granularity);
  profile.set_tier(Gauge::SoftwareCustomizability, customizability);
  profile.set_tier(Gauge::SoftwareProvenance, provenance);
  return profile;
}

GaugeProfile fairflow_self_profile() {
  GaugeProfile profile;
  profile.set_tier(Gauge::DataAccess,
                   static_cast<uint8_t>(DataAccessTier::Interface));
  profile.set_evidence(Gauge::DataAccess,
                       "CSV/JSON/JSONL via util/table + util/json; "
                       "binary stream marshalling in stream/marshal");
  profile.set_tier(Gauge::DataSchema,
                   static_cast<uint8_t>(DataSchemaTier::TypedStructure));
  profile.set_evidence(Gauge::DataSchema,
                       "stream::StreamSchema field names/types; trace event "
                       "fields typed in docs/trace_schema.md");
  profile.set_tier(Gauge::DataSemantics,
                   static_cast<uint8_t>(DataSemanticsTier::DataFusion));
  profile.set_evidence(Gauge::DataSemantics,
                       "per-port ConsumptionSemantics; windowed vs "
                       "element-wise stream policies");
  profile.set_tier(Gauge::SoftwareGranularity,
                   static_cast<uint8_t>(GranularityTier::IoSemantics));
  profile.set_evidence(Gauge::SoftwareGranularity,
                       "subsystem libraries with explicit ports and "
                       "component descriptors (core/component)");
  profile.set_tier(Gauge::SoftwareCustomizability,
                   static_cast<uint8_t>(CustomizabilityTier::Model));
  profile.set_evidence(Gauge::SoftwareCustomizability,
                       "Skel-style models drive generation "
                       "(skel/model + skel/generator)");
  profile.set_tier(Gauge::SoftwareProvenance,
                   static_cast<uint8_t>(ProvenanceTier::Exportable));
  profile.set_evidence(Gauge::SoftwareProvenance,
                       "structured trace layer (src/obs/) with documented "
                       "JSONL/Chrome export, schema enforced by trace_lint "
                       "(docs/trace_schema.md)");
  return profile;
}

}  // namespace ff::core
