#include "core/component.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::core {

std::string_view component_kind_name(ComponentKind kind) noexcept {
  switch (kind) {
    case ComponentKind::CodeFragment: return "code-fragment";
    case ComponentKind::Executable: return "executable";
    case ComponentKind::BundledWorkflow: return "bundled-workflow";
    case ComponentKind::InternalService: return "internal-service";
  }
  return "?";
}

ComponentKind component_kind_from_name(std::string_view name) {
  const std::string wanted = to_lower(name);
  for (ComponentKind kind : {ComponentKind::CodeFragment, ComponentKind::Executable,
                             ComponentKind::BundledWorkflow,
                             ComponentKind::InternalService}) {
    if (wanted == component_kind_name(kind)) return kind;
  }
  throw NotFoundError("unknown component kind '" + std::string(name) + "'");
}

std::string_view consumption_name(ConsumptionSemantics semantics) noexcept {
  switch (semantics) {
    case ConsumptionSemantics::Unknown: return "unknown";
    case ConsumptionSemantics::ElementWise: return "element-wise";
    case ConsumptionSemantics::Windowed: return "windowed";
    case ConsumptionSemantics::WholeDataset: return "whole-dataset";
    case ConsumptionSemantics::FirstPrecious: return "first-precious";
  }
  return "?";
}

ConsumptionSemantics consumption_from_name(std::string_view name) {
  const std::string wanted = to_lower(name);
  for (ConsumptionSemantics semantics :
       {ConsumptionSemantics::Unknown, ConsumptionSemantics::ElementWise,
        ConsumptionSemantics::Windowed, ConsumptionSemantics::WholeDataset,
        ConsumptionSemantics::FirstPrecious}) {
    if (wanted == consumption_name(semantics)) return semantics;
  }
  throw NotFoundError("unknown consumption semantics '" + std::string(name) + "'");
}

Json Port::to_json() const {
  Json out = Json::object();
  out["name"] = name;
  out["direction"] = direction == PortDirection::Input ? "in" : "out";
  if (!schema.empty()) out["schema"] = schema;
  if (!access.empty()) out["access"] = access;
  if (semantics != ConsumptionSemantics::Unknown) {
    out["semantics"] = std::string(consumption_name(semantics));
  }
  return out;
}

Port Port::from_json(const Json& json) {
  Port port;
  port.name = json["name"].as_string();
  const std::string direction = json.get_or("direction", "in");
  port.direction = (direction == "out") ? PortDirection::Output : PortDirection::Input;
  port.schema = json.get_or("schema", "");
  port.access = json.get_or("access", "");
  if (json.contains("semantics")) {
    port.semantics = consumption_from_name(json["semantics"].as_string());
  }
  return port;
}

Json ConfigVariable::to_json() const {
  Json out = Json::object();
  out["name"] = name;
  out["type"] = type;
  out["default"] = default_value;
  out["exposed"] = exposed;
  if (!description.empty()) out["description"] = description;
  return out;
}

ConfigVariable ConfigVariable::from_json(const Json& json) {
  ConfigVariable variable;
  variable.name = json["name"].as_string();
  variable.type = json.get_or("type", "string");
  if (json.contains("default")) variable.default_value = json["default"];
  variable.exposed = json.get_or("exposed", false);
  variable.description = json.get_or("description", "");
  return variable;
}

void Component::add_port(Port port) {
  if (has_port(port.name)) {
    throw ValidationError("Component '" + id_ + "': duplicate port '" + port.name + "'");
  }
  ports_.push_back(std::move(port));
}

const Port& Component::port(std::string_view name) const {
  for (const auto& port : ports_) {
    if (port.name == name) return port;
  }
  throw NotFoundError("Component '" + id_ + "': no port '" + std::string(name) + "'");
}

bool Component::has_port(std::string_view name) const noexcept {
  return std::any_of(ports_.begin(), ports_.end(),
                     [&](const Port& p) { return p.name == name; });
}

std::vector<Port> Component::input_ports() const {
  std::vector<Port> out;
  for (const auto& port : ports_) {
    if (port.direction == PortDirection::Input) out.push_back(port);
  }
  return out;
}

std::vector<Port> Component::output_ports() const {
  std::vector<Port> out;
  for (const auto& port : ports_) {
    if (port.direction == PortDirection::Output) out.push_back(port);
  }
  return out;
}

void Component::add_config(ConfigVariable variable) {
  for (const auto& existing : config_) {
    if (existing.name == variable.name) {
      throw ValidationError("Component '" + id_ + "': duplicate config variable '" +
                            variable.name + "'");
    }
  }
  config_.push_back(std::move(variable));
}

const ConfigVariable& Component::config_variable(std::string_view name) const {
  for (const auto& variable : config_) {
    if (variable.name == name) return variable;
  }
  throw NotFoundError("Component '" + id_ + "': no config variable '" +
                      std::string(name) + "'");
}

size_t Component::exposed_config_count() const noexcept {
  return static_cast<size_t>(std::count_if(
      config_.begin(), config_.end(),
      [](const ConfigVariable& v) { return v.exposed; }));
}

Json Component::to_json() const {
  Json out = Json::object();
  out["id"] = id_;
  out["kind"] = std::string(component_kind_name(kind_));
  if (!description_.empty()) out["description"] = description_;
  out["gauges"] = profile_.to_json();
  Json ports = Json::array();
  for (const auto& port : ports_) ports.push_back(port.to_json());
  out["ports"] = std::move(ports);
  Json config = Json::array();
  for (const auto& variable : config_) config.push_back(variable.to_json());
  out["config"] = std::move(config);
  return out;
}

Component Component::from_json(const Json& json) {
  Component component(json["id"].as_string(),
                      component_kind_from_name(json.get_or("kind", "executable")));
  component.set_description(json.get_or("description", ""));
  if (json.contains("gauges")) {
    component.profile() = GaugeProfile::from_json(json["gauges"]);
  }
  if (json.contains("ports")) {
    for (const auto& port : json["ports"].as_array()) {
      component.add_port(Port::from_json(port));
    }
  }
  if (json.contains("config")) {
    for (const auto& variable : json["config"].as_array()) {
      component.add_config(ConfigVariable::from_json(variable));
    }
  }
  return component;
}

}  // namespace ff::core
