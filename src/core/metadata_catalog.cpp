#include "core/metadata_catalog.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::core {

Json SchemaDescriptor::to_json() const {
  Json out = Json::object();
  out["name"] = name;
  out["version"] = static_cast<int64_t>(version);
  out["container"] = container;
  Json field_list = Json::array();
  for (const auto& field : fields) {
    Json f = Json::object();
    f["name"] = field.name;
    f["type"] = field.type;
    field_list.push_back(std::move(f));
  }
  out["fields"] = std::move(field_list);
  return out;
}

SchemaDescriptor SchemaDescriptor::from_json(const Json& json) {
  SchemaDescriptor schema;
  schema.name = json["name"].as_string();
  schema.version = static_cast<int>(json.get_or("version", 1));
  schema.container = json.get_or("container", "");
  if (json.contains("fields")) {
    for (const auto& field : json["fields"].as_array()) {
      schema.fields.push_back(
          Field{field["name"].as_string(), field.get_or("type", "string")});
    }
  }
  return schema;
}

// ---------------------------------------------------------------- queries

struct CatalogQuery::Node {
  enum class Kind { And, Or, Not, Compare } kind = Kind::Compare;
  // And/Or/Not children:
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
  // Compare:
  std::string field;  // gauge key, "kind", or "id"
  std::string op;     // ">=", "<=", ">", "<", "==", "!="
  std::string value;  // raw value text (tier name, number, or string)
};

namespace {

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) { next_token(); }

  std::shared_ptr<const CatalogQuery::Node> parse() {
    auto node = parse_or();
    if (!token_.empty()) fail("unexpected trailing token '" + token_ + "'");
    return node;
  }

 private:
  using Node = CatalogQuery::Node;

  [[noreturn]] void fail(const std::string& message) {
    throw ParseError("catalog query: " + message);
  }

  void next_token() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    token_.clear();
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (c == '(' || c == ')') {
      token_ = c;
      ++pos_;
      return;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) token_ += text_[pos_++];
      if (pos_ >= text_.size()) fail("unterminated quoted string");
      ++pos_;
      quoted_ = true;
      return;
    }
    quoted_ = false;
    if (std::string_view("<>=!").find(c) != std::string_view::npos) {
      token_ += text_[pos_++];
      if (pos_ < text_.size() && text_[pos_] == '=') token_ += text_[pos_++];
      return;
    }
    while (pos_ < text_.size()) {
      const char t = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(t)) ||
          std::string_view("()<>=!").find(t) != std::string_view::npos) {
        break;
      }
      token_ += t;
      ++pos_;
    }
  }

  bool accept_keyword(std::string_view keyword) {
    if (!quoted_ && to_lower(token_) == keyword) {
      next_token();
      return true;
    }
    return false;
  }

  std::shared_ptr<const Node> parse_or() {
    auto left = parse_and();
    while (accept_keyword("or")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Or;
      node->left = left;
      node->right = parse_and();
      left = node;
    }
    return left;
  }

  std::shared_ptr<const Node> parse_and() {
    auto left = parse_unary();
    while (accept_keyword("and")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::And;
      node->left = left;
      node->right = parse_unary();
      left = node;
    }
    return left;
  }

  std::shared_ptr<const Node> parse_unary() {
    if (accept_keyword("not")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Not;
      node->left = parse_unary();
      return node;
    }
    if (!quoted_ && token_ == "(") {
      next_token();
      auto node = parse_or();
      if (quoted_ || token_ != ")") fail("expected ')'");
      next_token();
      return node;
    }
    return parse_comparison();
  }

  std::shared_ptr<const Node> parse_comparison() {
    if (token_.empty()) fail("expected a field name");
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::Compare;
    node->field = to_lower(token_);
    next_token();
    static const std::vector<std::string> kOps = {">=", "<=", "==", "!=", ">", "<"};
    if (std::find(kOps.begin(), kOps.end(), token_) == kOps.end()) {
      fail("expected a comparison operator, got '" + token_ + "'");
    }
    node->op = token_;
    next_token();
    if (token_.empty()) fail("expected a value");
    node->value = token_;
    next_token();
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string token_;
  bool quoted_ = false;
};

bool compare_int(int64_t lhs, const std::string& op, int64_t rhs) {
  if (op == ">=") return lhs >= rhs;
  if (op == "<=") return lhs <= rhs;
  if (op == ">") return lhs > rhs;
  if (op == "<") return lhs < rhs;
  if (op == "==") return lhs == rhs;
  return lhs != rhs;
}

bool compare_string(const std::string& lhs, const std::string& op,
                    const std::string& rhs) {
  if (op == "==") return lhs == rhs;
  if (op == "!=") return lhs != rhs;
  throw ParseError("catalog query: operator '" + op + "' requires a numeric field");
}

bool evaluate(const CatalogQuery::Node& node, const Component& component) {
  using Kind = CatalogQuery::Node::Kind;
  switch (node.kind) {
    case Kind::And:
      return evaluate(*node.left, component) && evaluate(*node.right, component);
    case Kind::Or:
      return evaluate(*node.left, component) || evaluate(*node.right, component);
    case Kind::Not:
      return !evaluate(*node.left, component);
    case Kind::Compare:
      break;
  }
  if (node.field == "kind") {
    return compare_string(std::string(component_kind_name(component.kind())),
                          node.op, to_lower(node.value));
  }
  if (node.field == "id") {
    return compare_string(component.id(), node.op, node.value);
  }
  const Gauge gauge = gauge_from_key(node.field);
  int64_t wanted = 0;
  if (is_integer(node.value)) {
    wanted = std::stoll(node.value);
  } else {
    wanted = tier_from_name(gauge, node.value);
  }
  return compare_int(component.profile().tier(gauge), node.op, wanted);
}

}  // namespace

CatalogQuery CatalogQuery::parse(std::string_view text) {
  CatalogQuery query;
  query.root_ = QueryParser(text).parse();
  query.text_ = std::string(text);
  return query;
}

bool CatalogQuery::matches(const Component& component) const {
  return evaluate(*root_, component);
}

// ---------------------------------------------------------------- catalog

void MetadataCatalog::put_component(Component component) {
  const std::string id = component.id();
  components_.insert_or_assign(id, std::move(component));
}

bool MetadataCatalog::has_component(std::string_view id) const noexcept {
  return components_.count(std::string(id)) > 0;
}

const Component& MetadataCatalog::component(std::string_view id) const {
  auto it = components_.find(std::string(id));
  if (it == components_.end()) {
    throw NotFoundError("catalog: no component '" + std::string(id) + "'");
  }
  return it->second;
}

std::vector<std::string> MetadataCatalog::component_ids() const {
  std::vector<std::string> ids;
  for (const auto& [id, _] : components_) ids.push_back(id);
  return ids;
}

void MetadataCatalog::put_schema(SchemaDescriptor schema) {
  const std::string key = schema.key();
  auto it = schemas_.find(key);
  if (it != schemas_.end() && !(it->second == schema)) {
    throw ValidationError("catalog: schema '" + key +
                          "' already registered with different contents");
  }
  schemas_.insert_or_assign(key, std::move(schema));
}

bool MetadataCatalog::has_schema(std::string_view key) const noexcept {
  return schemas_.count(std::string(key)) > 0;
}

const SchemaDescriptor& MetadataCatalog::schema(std::string_view key) const {
  auto it = schemas_.find(std::string(key));
  if (it == schemas_.end()) {
    throw NotFoundError("catalog: no schema '" + std::string(key) + "'");
  }
  return it->second;
}

std::vector<std::string> MetadataCatalog::schema_keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, _] : schemas_) keys.push_back(key);
  return keys;
}

bool MetadataCatalog::convertible(std::string_view from_key,
                                  std::string_view to_key) const {
  const SchemaDescriptor& from = schema(from_key);
  const SchemaDescriptor& to = schema(to_key);
  if (from.name == to.name) return true;  // version evolution path
  // Container transcoding: identical logical fields, different container.
  auto sorted_fields = [](const SchemaDescriptor& s) {
    auto fields = s.fields;
    std::sort(fields.begin(), fields.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return fields;
  };
  return !from.fields.empty() && sorted_fields(from) == sorted_fields(to);
}

std::vector<std::string> MetadataCatalog::query(const CatalogQuery& query) const {
  std::vector<std::string> out;
  for (const auto& [id, component] : components_) {
    if (query.matches(component)) out.push_back(id);
  }
  return out;
}

void MetadataCatalog::annotate(std::string_view component_id, std::string_view key,
                               Json value) {
  if (!has_component(component_id)) {
    throw NotFoundError("catalog: no component '" + std::string(component_id) + "'");
  }
  annotations_[std::string(component_id) + "/" + std::string(key)] = std::move(value);
}

const Json* MetadataCatalog::annotation(std::string_view component_id,
                                        std::string_view key) const {
  auto it = annotations_.find(std::string(component_id) + "/" + std::string(key));
  return it == annotations_.end() ? nullptr : &it->second;
}

Json MetadataCatalog::to_json() const {
  Json out = Json::object();
  Json comps = Json::array();
  for (const auto& [_, component] : components_) comps.push_back(component.to_json());
  out["components"] = std::move(comps);
  Json schemas = Json::array();
  for (const auto& [_, schema] : schemas_) schemas.push_back(schema.to_json());
  out["schemas"] = std::move(schemas);
  Json notes = Json::object();
  for (const auto& [key, value] : annotations_) notes[key] = value;
  out["annotations"] = std::move(notes);
  return out;
}

MetadataCatalog MetadataCatalog::from_json(const Json& json) {
  MetadataCatalog catalog;
  if (json.contains("components")) {
    for (const auto& component : json["components"].as_array()) {
      catalog.put_component(Component::from_json(component));
    }
  }
  if (json.contains("schemas")) {
    for (const auto& schema : json["schemas"].as_array()) {
      catalog.put_schema(SchemaDescriptor::from_json(schema));
    }
  }
  if (json.contains("annotations")) {
    for (const auto& [key, value] : json["annotations"].as_object()) {
      catalog.annotations_[key] = value;
    }
  }
  return catalog;
}

}  // namespace ff::core
