#pragma once

#include <string>
#include <vector>

#include "core/technical_debt.hpp"
#include "core/workflow_graph.hpp"

namespace ff::core {

/// A recommended next step on one gauge ladder for one component, with the
/// concrete automation it would unlock (derived from the debt model: which
/// manual interventions become automatic at the next tier).
struct Recommendation {
  std::string component_id;
  Gauge gauge;
  uint8_t current_tier = 0;
  uint8_t recommended_tier = 0;
  std::string rationale;
  double manual_minutes_saved = 0;  // across the assessed reuse contexts
};

/// The full assessment of a workflow: per-component debt under a set of
/// reuse contexts, aggregate weakest-link profile, and an upgrade plan
/// ordered by saved manual effort.
struct AssessmentReport {
  std::string workflow_name;
  GaugeProfile aggregate;
  DebtSummary total_debt;
  std::vector<Recommendation> recommendations;

  std::string render() const;
  /// Machine-consumable form (for dashboards, CI gates on reusability
  /// regressions, and cross-tool exchange).
  Json to_json() const;
};

/// Assess `workflow` against the given reuse contexts (typically the
/// scenarios the team expects: new machine, new dataset, new team...).
/// For every component and gauge, it simulates raising that gauge one tier
/// and measures the manual minutes saved across all contexts; positive
/// savings become recommendations, sorted descending.
AssessmentReport assess(const WorkflowGraph& workflow,
                        const std::vector<ReuseContext>& contexts);

}  // namespace ff::core
