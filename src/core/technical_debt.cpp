#include "core/technical_debt.hpp"

#include "util/strings.hpp"

namespace ff::core {

namespace {

/// Nominal cost constants (human minutes). Absolute values are arbitrary
/// but consistent, so *relative* debt between configurations is meaningful
/// — exactly the role the paper assigns to gauges (progress tracking, not
/// cross-workflow scoring).
constexpr double kEditScriptMinutes = 8;
constexpr double kReverseEngineerFormatMinutes = 120;
constexpr double kWriteConverterMinutes = 240;
constexpr double kAskAuthorMinutes = 30;
constexpr double kRetuneScaleMinutes = 45;
constexpr double kRewritePolicyMinutes = 90;
constexpr double kCurateFailuresMinutes = 25;

void add(std::vector<Intervention>& out, std::string description, Gauge gauge,
         bool manual, double minutes) {
  out.push_back(Intervention{std::move(description), gauge, manual,
                             manual ? minutes : 0.0});
}

}  // namespace

std::vector<Intervention> interventions_for(const Component& component,
                                            const ReuseContext& context) {
  std::vector<Intervention> out;
  const GaugeProfile& profile = component.profile();

  if (context.new_machine) {
    // Porting: depends on customizability (is machine config exposed?) and
    // granularity (are launch templates explicit?).
    const auto custom = profile.tier(Gauge::SoftwareCustomizability);
    if (custom >= static_cast<uint8_t>(CustomizabilityTier::Model)) {
      add(out, "regenerate launch artifacts from model for new machine",
          Gauge::SoftwareCustomizability, false, 0);
    } else if (custom >= static_cast<uint8_t>(CustomizabilityTier::ExposedVariables)) {
      add(out, "edit exposed machine variables (account, queue, walltime)",
          Gauge::SoftwareCustomizability, true, kEditScriptMinutes);
    } else {
      // Hard-coded values: every non-exposed config variable is a hand edit.
      const size_t hidden =
          component.config().size() - component.exposed_config_count();
      const double minutes =
          kEditScriptMinutes * static_cast<double>(hidden == 0 ? 1 : hidden);
      add(out, "hand-edit hard-coded machine settings across scripts",
          Gauge::SoftwareCustomizability, true, minutes);
    }
    if (profile.tier(Gauge::SoftwareGranularity) <
        static_cast<uint8_t>(GranularityTier::Configured)) {
      add(out, "reconstruct undocumented build/launch procedure",
          Gauge::SoftwareGranularity, true, kAskAuthorMinutes);
    }
  }

  if (context.new_dataset) {
    const auto access = profile.tier(Gauge::DataAccess);
    if (access >= static_cast<uint8_t>(DataAccessTier::Interface)) {
      add(out, "point declared data interface at new dataset",
          Gauge::DataAccess, false, 0);
    } else if (access >= static_cast<uint8_t>(DataAccessTier::Protocol)) {
      add(out, "adjust data paths for new dataset", Gauge::DataAccess, true,
          kEditScriptMinutes);
    } else {
      add(out, "discover how inputs are located and named (ask the author)",
          Gauge::DataAccess, true, kAskAuthorMinutes);
    }
  }

  if (context.new_data_format) {
    const auto schema = profile.tier(Gauge::DataSchema);
    if (schema >= static_cast<uint8_t>(DataSchemaTier::TypedStructure)) {
      add(out, "generate format converter from typed schema",
          Gauge::DataSchema, false, 0);
    } else if (schema >= static_cast<uint8_t>(DataSchemaTier::Format)) {
      add(out, "write converter against documented container format",
          Gauge::DataSchema, true, kWriteConverterMinutes / 2);
    } else {
      add(out, "reverse-engineer undocumented data format",
          Gauge::DataSchema, true, kReverseEngineerFormatMinutes);
      add(out, "write and test one-off converter", Gauge::DataSchema, true,
          kWriteConverterMinutes);
    }
    if (profile.tier(Gauge::DataSemantics) <
        static_cast<uint8_t>(DataSemanticsTier::Ordering)) {
      add(out, "determine ordering/windowing requirements empirically",
          Gauge::DataSemantics, true, kAskAuthorMinutes);
    } else {
      add(out, "apply captured ordering/windowing constraints",
          Gauge::DataSemantics, false, 0);
    }
  }

  if (context.new_team) {
    if (profile.tier(Gauge::SoftwareProvenance) >=
        static_cast<uint8_t>(ProvenanceTier::Exportable)) {
      add(out, "ship exportable provenance bundle with component",
          Gauge::SoftwareProvenance, false, 0);
    } else if (profile.tier(Gauge::SoftwareProvenance) >=
               static_cast<uint8_t>(ProvenanceTier::ComponentRecords)) {
      add(out, "curate execution records for hand-off",
          Gauge::SoftwareProvenance, true, kCurateFailuresMinutes);
    } else {
      add(out, "walk new team through prior runs and failure lore",
          Gauge::SoftwareProvenance, true, kAskAuthorMinutes * 2);
    }
  }

  if (context.new_scale) {
    const auto custom = profile.tier(Gauge::SoftwareCustomizability);
    if (custom >= static_cast<uint8_t>(CustomizabilityTier::ParameterRelations)) {
      add(out, "solve captured parameter relations for new scale",
          Gauge::SoftwareCustomizability, false, 0);
    } else if (custom >= static_cast<uint8_t>(CustomizabilityTier::Model)) {
      add(out, "update model scale fields and regenerate",
          Gauge::SoftwareCustomizability, true, kEditScriptMinutes / 2);
    } else {
      add(out, "re-derive partitioning and resource division by hand",
          Gauge::SoftwareCustomizability, true, kRetuneScaleMinutes);
    }
  }

  if (context.new_policy) {
    if (profile.tier(Gauge::SoftwareGranularity) >=
        static_cast<uint8_t>(GranularityTier::Composable)) {
      add(out, "install new policy component at runtime",
          Gauge::SoftwareGranularity, false, 0);
    } else if (profile.tier(Gauge::SoftwareGranularity) >=
               static_cast<uint8_t>(GranularityTier::IoSemantics)) {
      add(out, "swap policy module and regenerate glue",
          Gauge::SoftwareGranularity, true, kEditScriptMinutes);
    } else {
      add(out, "rewrite embedded policy logic inside component",
          Gauge::SoftwareGranularity, true, kRewritePolicyMinutes);
    }
  }

  return out;
}

DebtSummary summarize(const std::vector<Intervention>& interventions) {
  DebtSummary summary;
  for (const auto& intervention : interventions) {
    if (intervention.manual) {
      ++summary.manual_count;
      summary.manual_minutes += intervention.cost_minutes;
    } else {
      ++summary.automated_count;
    }
  }
  return summary;
}

DebtSummary debt_for(const std::vector<Component>& components,
                     const ReuseContext& context) {
  DebtSummary total;
  for (const auto& component : components) {
    const DebtSummary summary = summarize(interventions_for(component, context));
    total.manual_count += summary.manual_count;
    total.automated_count += summary.automated_count;
    total.manual_minutes += summary.manual_minutes;
  }
  return total;
}

std::string render_interventions(const std::vector<Intervention>& interventions) {
  std::string out;
  for (const auto& intervention : interventions) {
    out += intervention.manual ? "  [manual " : "  [auto   ";
    out += intervention.manual
               ? pad_left(format_fixed(intervention.cost_minutes, 0), 4) + "m] "
               : "    ] ";
    out += intervention.description;
    out += "  (" + std::string(gauge_name(intervention.gauge)) + ")\n";
  }
  return out;
}

}  // namespace ff::core
