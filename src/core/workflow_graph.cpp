#include "core/workflow_graph.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ff::core {

Json Edge::to_json() const {
  Json out = Json::object();
  out["from"] = from_component + "." + from_port;
  out["to"] = to_component + "." + to_port;
  return out;
}

Edge Edge::from_json(const Json& json) {
  auto parse_endpoint = [](const std::string& text) {
    const size_t dot = text.rfind('.');
    if (dot == std::string::npos) {
      throw ParseError("Edge: endpoint '" + text + "' must be component.port");
    }
    return std::pair{text.substr(0, dot), text.substr(dot + 1)};
  };
  Edge edge;
  auto [fc, fp] = parse_endpoint(json["from"].as_string());
  auto [tc, tp] = parse_endpoint(json["to"].as_string());
  edge.from_component = std::move(fc);
  edge.from_port = std::move(fp);
  edge.to_component = std::move(tc);
  edge.to_port = std::move(tp);
  return edge;
}

void WorkflowGraph::add_component(Component component) {
  const std::string id = component.id();
  if (id.empty()) throw ValidationError("WorkflowGraph: component id must be non-empty");
  auto [it, inserted] = components_.emplace(id, std::move(component));
  (void)it;
  if (!inserted) {
    throw ValidationError("WorkflowGraph: duplicate component '" + id + "'");
  }
}

bool WorkflowGraph::has_component(std::string_view id) const noexcept {
  return components_.count(std::string(id)) > 0;
}

const Component& WorkflowGraph::component(std::string_view id) const {
  auto it = components_.find(std::string(id));
  if (it == components_.end()) {
    throw NotFoundError("WorkflowGraph: no component '" + std::string(id) + "'");
  }
  return it->second;
}

Component& WorkflowGraph::component(std::string_view id) {
  auto it = components_.find(std::string(id));
  if (it == components_.end()) {
    throw NotFoundError("WorkflowGraph: no component '" + std::string(id) + "'");
  }
  return it->second;
}

std::vector<std::string> WorkflowGraph::component_ids() const {
  std::vector<std::string> ids;
  ids.reserve(components_.size());
  for (const auto& [id, _] : components_) ids.push_back(id);
  return ids;
}

bool WorkflowGraph::connect(std::string_view from_component, std::string_view from_port,
                            std::string_view to_component, std::string_view to_port) {
  const Component& producer = component(from_component);
  const Component& consumer = component(to_component);
  const Port& out_port = producer.port(from_port);
  const Port& in_port = consumer.port(to_port);
  if (out_port.direction != PortDirection::Output) {
    throw ValidationError("connect: '" + std::string(from_port) + "' is not an output port");
  }
  if (in_port.direction != PortDirection::Input) {
    throw ValidationError("connect: '" + std::string(to_port) + "' is not an input port");
  }
  edges_.push_back(Edge{std::string(from_component), std::string(from_port),
                        std::string(to_component), std::string(to_port)});
  // Schema compatibility is advisory: either side may simply not know its
  // schema yet (tier below Format), which is not an error in this model.
  if (!out_port.schema.empty() && !in_port.schema.empty() &&
      out_port.schema != in_port.schema) {
    return false;
  }
  return true;
}

std::vector<Edge> WorkflowGraph::edges_from(std::string_view component_id) const {
  std::vector<Edge> out;
  for (const auto& edge : edges_) {
    if (edge.from_component == component_id) out.push_back(edge);
  }
  return out;
}

std::vector<Edge> WorkflowGraph::edges_into(std::string_view component_id) const {
  std::vector<Edge> out;
  for (const auto& edge : edges_) {
    if (edge.to_component == component_id) out.push_back(edge);
  }
  return out;
}

std::vector<std::string> WorkflowGraph::topological_order() const {
  std::map<std::string, size_t> in_degree;
  for (const auto& [id, _] : components_) in_degree[id] = 0;
  for (const auto& edge : edges_) ++in_degree[edge.to_component];

  std::deque<std::string> ready;
  for (const auto& [id, degree] : in_degree) {
    if (degree == 0) ready.push_back(id);
  }
  std::vector<std::string> order;
  order.reserve(components_.size());
  while (!ready.empty()) {
    std::string id = std::move(ready.front());
    ready.pop_front();
    for (const auto& edge : edges_) {
      if (edge.from_component != id) continue;
      if (--in_degree[edge.to_component] == 0) ready.push_back(edge.to_component);
    }
    order.push_back(std::move(id));
  }
  if (order.size() != components_.size()) {
    throw StateError("WorkflowGraph '" + name_ + "': cycle detected");
  }
  return order;
}

bool WorkflowGraph::has_cycle() const noexcept {
  try {
    topological_order();
    return false;
  } catch (const StateError&) {
    return true;
  }
}

std::vector<std::string> WorkflowGraph::sources() const {
  std::set<std::string> has_input;
  for (const auto& edge : edges_) has_input.insert(edge.to_component);
  std::vector<std::string> out;
  for (const auto& [id, _] : components_) {
    if (!has_input.count(id)) out.push_back(id);
  }
  return out;
}

std::vector<std::string> WorkflowGraph::sinks() const {
  std::set<std::string> has_output;
  for (const auto& edge : edges_) has_output.insert(edge.from_component);
  std::vector<std::string> out;
  for (const auto& [id, _] : components_) {
    if (!has_output.count(id)) out.push_back(id);
  }
  return out;
}

std::string WorkflowGraph::structural_signature(std::string_view component_id) const {
  const Component& node = component(component_id);
  std::vector<std::string> schemas;
  for (const auto& port : node.ports()) {
    schemas.push_back((port.direction == PortDirection::Input ? "i:" : "o:") +
                      port.schema);
  }
  std::sort(schemas.begin(), schemas.end());
  return std::string(component_kind_name(node.kind())) + "/in" +
         std::to_string(edges_into(component_id).size()) + "/out" +
         std::to_string(edges_from(component_id).size()) + "/" +
         join(schemas, ",");
}

std::vector<std::vector<std::string>> WorkflowGraph::repeated_roles(
    size_t min_group) const {
  std::map<std::string, std::vector<std::string>> by_signature;
  for (const auto& [id, _] : components_) {
    by_signature[structural_signature(id)].push_back(id);
  }
  std::vector<std::vector<std::string>> groups;
  for (auto& [signature, ids] : by_signature) {
    if (ids.size() >= min_group) groups.push_back(std::move(ids));
  }
  return groups;
}

namespace {

bool extend_match(const WorkflowGraph& graph, const WorkflowGraph& pattern,
                  const std::vector<std::string>& pattern_ids, size_t depth,
                  std::map<std::string, std::string>& assignment,
                  std::set<std::string>& used,
                  std::vector<std::map<std::string, std::string>>& results) {
  if (depth == pattern_ids.size()) {
    // All nodes assigned; verify every pattern edge maps to a graph edge.
    for (const auto& pattern_edge : pattern.edges()) {
      const std::string& from = assignment.at(pattern_edge.from_component);
      const std::string& to = assignment.at(pattern_edge.to_component);
      bool found = false;
      for (const auto& graph_edge : graph.edges()) {
        if (graph_edge.from_component == from && graph_edge.to_component == to) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    results.push_back(assignment);
    return true;
  }
  const std::string& pattern_id = pattern_ids[depth];
  const ComponentKind wanted = pattern.component(pattern_id).kind();
  for (const std::string& candidate : graph.component_ids()) {
    if (used.count(candidate)) continue;
    if (graph.component(candidate).kind() != wanted) continue;
    assignment[pattern_id] = candidate;
    used.insert(candidate);
    extend_match(graph, pattern, pattern_ids, depth + 1, assignment, used, results);
    used.erase(candidate);
    assignment.erase(pattern_id);
  }
  return false;
}

}  // namespace

std::vector<std::map<std::string, std::string>> WorkflowGraph::find_pattern(
    const WorkflowGraph& pattern) const {
  std::vector<std::map<std::string, std::string>> results;
  std::vector<std::string> pattern_ids = pattern.component_ids();
  std::map<std::string, std::string> assignment;
  std::set<std::string> used;
  extend_match(*this, pattern, pattern_ids, 0, assignment, used, results);
  return results;
}

GaugeProfile WorkflowGraph::aggregate_profile() const {
  if (components_.empty()) return GaugeProfile{};
  GaugeProfile lowest = make_profile(4, 4, 4, 4, 4, 4);
  for (const auto& [_, node] : components_) {
    for (Gauge gauge : kAllGauges) {
      if (node.profile().tier(gauge) < lowest.tier(gauge)) {
        lowest.set_tier(gauge, node.profile().tier(gauge));
      }
    }
  }
  return lowest;
}

WorkflowGraph WorkflowGraph::collapse(const std::vector<std::string>& member_ids,
                                      const std::string& bundle_id) const {
  if (member_ids.empty()) {
    throw ValidationError("collapse: member set must be non-empty");
  }
  std::set<std::string> members(member_ids.begin(), member_ids.end());
  for (const std::string& id : members) {
    if (!has_component(id)) {
      throw ValidationError("collapse: unknown member '" + id + "'");
    }
  }
  if (has_component(bundle_id) && !members.count(bundle_id)) {
    throw ValidationError("collapse: bundle id '" + bundle_id +
                          "' collides with a surviving component");
  }

  WorkflowGraph out(name_);
  Component bundle(bundle_id, ComponentKind::BundledWorkflow);
  bundle.set_description("bundle of: " + join(member_ids, ", "));
  // Weakest-link profile over the members.
  GaugeProfile lowest = make_profile(4, 4, 4, 4, 4, 4);
  for (const std::string& id : members) {
    for (Gauge gauge : kAllGauges) {
      lowest.set_tier(gauge,
                      std::min(lowest.tier(gauge), component(id).profile().tier(gauge)));
    }
  }
  bundle.profile() = lowest;

  // Boundary ports: any member port touched by an edge crossing the
  // boundary becomes a bundle port, named member.port to stay unique.
  auto boundary_port_name = [](const Edge& edge, bool incoming) {
    return incoming ? edge.to_component + "." + edge.to_port
                    : edge.from_component + "." + edge.from_port;
  };
  std::vector<Edge> new_edges;
  std::set<std::string> bundle_ports;
  for (const Edge& edge : edges_) {
    const bool from_inside = members.count(edge.from_component) > 0;
    const bool to_inside = members.count(edge.to_component) > 0;
    if (from_inside && to_inside) continue;  // internal: absorbed
    if (!from_inside && !to_inside) {
      new_edges.push_back(edge);
      continue;
    }
    if (to_inside) {
      const std::string port_name = boundary_port_name(edge, true);
      if (bundle_ports.insert("i:" + port_name).second) {
        Port port = component(edge.to_component).port(edge.to_port);
        port.name = port_name;
        bundle.add_port(std::move(port));
      }
      new_edges.push_back(Edge{edge.from_component, edge.from_port, bundle_id,
                               port_name});
    } else {
      const std::string port_name = boundary_port_name(edge, false);
      if (bundle_ports.insert("o:" + port_name).second) {
        Port port = component(edge.from_component).port(edge.from_port);
        port.name = port_name;
        bundle.add_port(std::move(port));
      }
      new_edges.push_back(Edge{bundle_id, port_name, edge.to_component,
                               edge.to_port});
    }
  }

  out.add_component(std::move(bundle));
  for (const auto& [id, node] : components_) {
    if (!members.count(id)) out.add_component(node);
  }
  for (const Edge& edge : new_edges) {
    out.connect(edge.from_component, edge.from_port, edge.to_component,
                edge.to_port);
  }
  if (out.has_cycle()) {
    throw ValidationError(
        "collapse: members are not convex — collapsing would create a cycle "
        "through '" + bundle_id + "'");
  }
  return out;
}

Json WorkflowGraph::to_json() const {
  Json out = Json::object();
  out["name"] = name_;
  Json nodes = Json::array();
  for (const auto& [_, node] : components_) nodes.push_back(node.to_json());
  out["components"] = std::move(nodes);
  Json links = Json::array();
  for (const auto& edge : edges_) links.push_back(edge.to_json());
  out["edges"] = std::move(links);
  return out;
}

WorkflowGraph WorkflowGraph::from_json(const Json& json) {
  WorkflowGraph graph(json.get_or("name", "workflow"));
  for (const auto& node : json["components"].as_array()) {
    graph.add_component(Component::from_json(node));
  }
  if (json.contains("edges")) {
    for (const auto& link : json["edges"].as_array()) {
      Edge edge = Edge::from_json(link);
      graph.connect(edge.from_component, edge.from_port, edge.to_component,
                    edge.to_port);
    }
  }
  return graph;
}

WorkflowGraph collection_selection_forwarding_pattern() {
  WorkflowGraph pattern("collection-selection-forwarding");
  Component source("source", ComponentKind::Executable);
  source.add_port(Port{"out", PortDirection::Output, "", "", ConsumptionSemantics::Unknown});
  Component scheduler("scheduler", ComponentKind::InternalService);
  scheduler.add_port(Port{"in", PortDirection::Input, "", "", ConsumptionSemantics::Unknown});
  scheduler.add_port(Port{"out", PortDirection::Output, "", "", ConsumptionSemantics::Unknown});
  Component sink("sink", ComponentKind::Executable);
  sink.add_port(Port{"in", PortDirection::Input, "", "", ConsumptionSemantics::Unknown});
  pattern.add_component(std::move(source));
  pattern.add_component(std::move(scheduler));
  pattern.add_component(std::move(sink));
  pattern.connect("source", "out", "scheduler", "in");
  pattern.connect("scheduler", "out", "sink", "in");
  return pattern;
}

}  // namespace ff::core
