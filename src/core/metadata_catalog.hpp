#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "util/json.hpp"

namespace ff::core {

/// A schema descriptor registered in the catalog: named, versioned, with
/// typed fields. This is the metadata the DataSchema gauge's TypedStructure
/// tier requires, and what automated format conversion keys off.
struct SchemaDescriptor {
  std::string name;     // "genotype_matrix"
  int version = 1;
  std::string container;  // "csv", "tsv", "json", "ffbin" (stream marshalling)
  struct Field {
    std::string name;
    std::string type;  // "int", "double", "string"
    bool operator==(const Field&) const = default;
  };
  std::vector<Field> fields;

  std::string key() const { return name + ":v" + std::to_string(version); }
  Json to_json() const;
  static SchemaDescriptor from_json(const Json& json);
  bool operator==(const SchemaDescriptor&) const = default;
};

/// The metadata catalog of the paper's Section III: components and schema
/// descriptors with their gauge metadata, made *machine-actionable* via a
/// small query language:
///
///   granularity >= Configured and schema >= 2
///   kind == executable or customizability >= Model
///   (access >= Interface) and not (provenance < Logs)
///
/// Grammar:  expr := or ; or := and ('or' and)* ; and := unary ('and' unary)*
///           unary := 'not' unary | '(' expr ')' | comparison
///           comparison := field op value
///           field := gauge key | 'kind' | 'id'
///           op := '>=' '<=' '>' '<' '==' '!='
///           value := integer | tier name | identifier-or-quoted-string
class CatalogQuery {
 public:
  /// Parse a query; throws ParseError on malformed input.
  static CatalogQuery parse(std::string_view text);

  bool matches(const Component& component) const;
  const std::string& text() const noexcept { return text_; }

  struct Node;  // public so the implementation's parser can build trees

 private:
  CatalogQuery() = default;
  std::shared_ptr<const Node> root_;
  std::string text_;
};

class MetadataCatalog {
 public:
  /// Register or replace a component entry.
  void put_component(Component component);
  bool has_component(std::string_view id) const noexcept;
  const Component& component(std::string_view id) const;
  size_t component_count() const noexcept { return components_.size(); }
  std::vector<std::string> component_ids() const;

  /// Register a schema descriptor (keyed name:vN). Throws ValidationError
  /// on duplicate key with differing contents.
  void put_schema(SchemaDescriptor schema);
  bool has_schema(std::string_view key) const noexcept;
  const SchemaDescriptor& schema(std::string_view key) const;
  std::vector<std::string> schema_keys() const;

  /// True when a conversion path exists between two registered schemas:
  /// same name (version evolution) or identical field sets under different
  /// containers (container transcoding). This is the automatable-format-
  /// conversion predicate the DataSemantics FormatEvolution tier enables.
  bool convertible(std::string_view from_key, std::string_view to_key) const;

  /// All components matching a parsed query, sorted by id.
  std::vector<std::string> query(const CatalogQuery& query) const;
  std::vector<std::string> query(std::string_view query_text) const {
    return query(CatalogQuery::parse(query_text));
  }

  /// Attach free-form annotation metadata to an entry.
  void annotate(std::string_view component_id, std::string_view key, Json value);
  const Json* annotation(std::string_view component_id, std::string_view key) const;

  Json to_json() const;
  static MetadataCatalog from_json(const Json& json);

 private:
  std::map<std::string, Component> components_;
  std::map<std::string, SchemaDescriptor> schemas_;
  std::map<std::string, Json> annotations_;  // "component/key" -> value
};

}  // namespace ff::core
