#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ff::core {

/// The six gauge properties of Box I in the paper: three data gauges
/// (Access, Schema, Semantics) and three software gauges (Granularity,
/// Customizability, Provenance). Each gauge is a ladder of tiers of
/// increasing metadata explicitness; a workflow component carries one tier
/// per gauge (its GaugeProfile).
enum class Gauge : uint8_t {
  DataAccess = 0,
  DataSchema = 1,
  DataSemantics = 2,
  SoftwareGranularity = 3,
  SoftwareCustomizability = 4,
  SoftwareProvenance = 5,
};

inline constexpr size_t kGaugeCount = 6;

inline constexpr std::array<Gauge, kGaugeCount> kAllGauges = {
    Gauge::DataAccess,          Gauge::DataSchema,
    Gauge::DataSemantics,       Gauge::SoftwareGranularity,
    Gauge::SoftwareCustomizability, Gauge::SoftwareProvenance,
};

/// Tier ladders, lowest first, following Fig. 1 of the paper. Tier 0 is
/// always "Unknown" — nothing captured. The paper stresses these ladders are
/// not exhaustive; the model below treats them as orderable named stages so
/// new tiers can be appended without touching consumers.

enum class DataAccessTier : uint8_t {
  Unknown = 0,        // nothing known about how data is reached
  Protocol = 1,       // basic protocol known (POSIX file, zeroMQ queue, ...)
  Interface = 2,      // I/O library interface known (CSV, HDF5, ADIOS, SQL)
  QueryModel = 3,     // query capabilities captured (linear, random, SQL)
  MachineActionable = 4,  // full ontology mapping; new adapters generatable
};

enum class DataSchemaTier : uint8_t {
  Unknown = 0,
  ByteStream = 1,     // opaque string of bytes
  Format = 2,         // container format identified (CSV, JSON, ADIOS, HDF5)
  TypedStructure = 3, // field names/types/shape captured
  SelfDescribing = 4, // schema embedded and versioned; conversion automatable
};

enum class DataSemanticsTier : uint8_t {
  Unknown = 0,
  Ordering = 1,        // ordering/windowing requirements captured
  DataFusion = 2,      // element-vs-window consumption, fusion rules
  FormatEvolution = 3, // version lineage; downgrade/upgrade conversions
  DatasetSemantics = 4,// dataset-level intent (labels, cohorts, splits)
};

enum class GranularityTier : uint8_t {
  Unknown = 0,
  BlackBox = 1,        // whole pipeline as one opaque component
  Configured = 2,      // build/launch/execute templates made explicit
  IoSemantics = 3,     // per-component I/O semantics ("first precious", ...)
  Composable = 4,      // components re-partitionable by tools
};

enum class CustomizabilityTier : uint8_t {
  Unknown = 0,
  FixedScript = 1,     // hard-coded values inside the artifact
  ExposedVariables = 2,// relevant variables identified and exposed
  Model = 3,           // machine-actionable model (Skel) drives generation
  ParameterRelations = 4,  // inter-variable relationships captured
};

enum class ProvenanceTier : uint8_t {
  Unknown = 0,
  Logs = 1,            // raw per-execution logs exist
  ComponentRecords = 2,// structured per-component execution records
  CampaignKnowledge = 3,  // executions linked to campaign context
  Exportable = 4,      // export policies: what provenance ships with reuse
};

/// Number of tiers in each gauge's ladder (all 5 in this model: 0..4).
size_t tier_count(Gauge gauge) noexcept;

std::string_view gauge_name(Gauge gauge) noexcept;
/// Short names used in serialized profiles: "access", "schema", "semantics",
/// "granularity", "customizability", "provenance".
std::string_view gauge_key(Gauge gauge) noexcept;
/// True for DataAccess/DataSchema/DataSemantics.
bool is_data_gauge(Gauge gauge) noexcept;

/// Human-readable tier name for a (gauge, tier) pair, e.g.
/// (DataAccess, 2) -> "Interface".
std::string_view tier_name(Gauge gauge, uint8_t tier);

/// Reverse lookup of tier_name; case-insensitive. Throws NotFoundError.
uint8_t tier_from_name(Gauge gauge, std::string_view name);

/// Parse a gauge from its key or full name. Throws NotFoundError.
Gauge gauge_from_key(std::string_view key);

/// One-line description of what reaching this tier means, for reports.
std::string_view tier_description(Gauge gauge, uint8_t tier);

}  // namespace ff::core
