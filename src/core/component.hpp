#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/gauge_profile.hpp"
#include "util/json.hpp"

namespace ff::core {

/// The granularity scale of reusable components from the paper's Software
/// Granularity gauge: "a code fragment, an individual executable code, a
/// bundled workflow, or an internal service".
enum class ComponentKind : uint8_t {
  CodeFragment,
  Executable,
  BundledWorkflow,
  InternalService,
};

std::string_view component_kind_name(ComponentKind kind) noexcept;
ComponentKind component_kind_from_name(std::string_view name);

/// Direction of a data port.
enum class PortDirection : uint8_t { Input, Output };

/// How a component consumes elements on an input port — the I/O semantics
/// that the Granularity gauge's IoSemantics tier captures. "FirstPrecious"
/// is the paper's example: the first element read seeds delta calculations
/// against all subsequent elements, so replays must preserve it.
enum class ConsumptionSemantics : uint8_t {
  Unknown,
  ElementWise,
  Windowed,
  WholeDataset,
  FirstPrecious,
};

std::string_view consumption_name(ConsumptionSemantics semantics) noexcept;
ConsumptionSemantics consumption_from_name(std::string_view name);

/// A typed data port. `schema` names a schema descriptor in the catalog
/// (may be empty when the component's DataSchema tier is below Format).
struct Port {
  std::string name;
  PortDirection direction = PortDirection::Input;
  std::string schema;       // e.g. "csv:genotype_matrix_v2", "" when unknown
  std::string access;       // e.g. "posix-file", "channel", "" when unknown
  ConsumptionSemantics semantics = ConsumptionSemantics::Unknown;

  Json to_json() const;
  static Port from_json(const Json& json);
  bool operator==(const Port&) const = default;
};

/// A configuration variable the component exposes — the unit of the
/// Customizability gauge. `exposed=false` models values that exist but are
/// hard-coded (FixedScript tier); a Skel model can only act on exposed ones.
struct ConfigVariable {
  std::string name;
  std::string type;                  // "int", "double", "string", "path", "bool"
  Json default_value;
  bool exposed = false;
  std::string description;

  Json to_json() const;
  static ConfigVariable from_json(const Json& json);
  bool operator==(const ConfigVariable&) const = default;
};

/// A workflow component: the unit to which gauge profiles attach.
class Component {
 public:
  Component() = default;
  Component(std::string id, ComponentKind kind) : id_(std::move(id)), kind_(kind) {}

  const std::string& id() const noexcept { return id_; }
  ComponentKind kind() const noexcept { return kind_; }
  void set_kind(ComponentKind kind) noexcept { kind_ = kind; }

  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

  GaugeProfile& profile() noexcept { return profile_; }
  const GaugeProfile& profile() const noexcept { return profile_; }

  const std::vector<Port>& ports() const noexcept { return ports_; }
  void add_port(Port port);
  /// Throws NotFoundError.
  const Port& port(std::string_view name) const;
  bool has_port(std::string_view name) const noexcept;
  std::vector<Port> input_ports() const;
  std::vector<Port> output_ports() const;

  const std::vector<ConfigVariable>& config() const noexcept { return config_; }
  void add_config(ConfigVariable variable);
  const ConfigVariable& config_variable(std::string_view name) const;
  size_t exposed_config_count() const noexcept;

  Json to_json() const;
  static Component from_json(const Json& json);

 private:
  std::string id_;
  ComponentKind kind_ = ComponentKind::Executable;
  std::string description_;
  GaugeProfile profile_;
  std::vector<Port> ports_;
  std::vector<ConfigVariable> config_;
};

}  // namespace ff::core
