#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "util/json.hpp"

namespace ff::core {

/// A data-flow edge: producer component/port -> consumer component/port.
struct Edge {
  std::string from_component;
  std::string from_port;
  std::string to_component;
  std::string to_port;

  Json to_json() const;
  static Edge from_json(const Json& json);
  bool operator==(const Edge&) const = default;
};

/// A directed data-flow graph of Components. Section V-C of the paper views
/// a workflow this way to find repeated subgraphs (e.g. the collection /
/// selection / forwarding pattern) that are candidates for encapsulation
/// and generation.
class WorkflowGraph {
 public:
  explicit WorkflowGraph(std::string name = "workflow") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Add a component; id must be unique (throws ValidationError).
  void add_component(Component component);
  bool has_component(std::string_view id) const noexcept;
  const Component& component(std::string_view id) const;
  Component& component(std::string_view id);
  std::vector<std::string> component_ids() const;
  size_t component_count() const noexcept { return components_.size(); }

  /// Connect an output port to an input port. Validates both endpoints
  /// exist with correct directions; warns (returns false) on schema
  /// mismatch between declared port schemas — the caller decides whether a
  /// conversion step is needed.
  bool connect(std::string_view from_component, std::string_view from_port,
               std::string_view to_component, std::string_view to_port);

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  std::vector<Edge> edges_from(std::string_view component_id) const;
  std::vector<Edge> edges_into(std::string_view component_id) const;

  /// Component ids in topological order; throws StateError on a cycle.
  std::vector<std::string> topological_order() const;
  bool has_cycle() const noexcept;

  /// Components with no incoming / outgoing edges.
  std::vector<std::string> sources() const;
  std::vector<std::string> sinks() const;

  /// Structural signature of a component in context: kind, in/out degree,
  /// and sorted port schemas. Components with equal signatures are
  /// structurally interchangeable roles.
  std::string structural_signature(std::string_view component_id) const;

  /// Groups of >= min_group components sharing a structural signature —
  /// the repeated-subgraph candidates the paper's model uses to propose
  /// encapsulations.
  std::vector<std::vector<std::string>> repeated_roles(size_t min_group = 2) const;

  /// Find occurrences of a small pattern graph inside this graph. Pattern
  /// nodes match graph nodes with the same ComponentKind; pattern edges
  /// must map to graph edges. Returns one map (pattern id -> graph id) per
  /// occurrence. Exponential in pattern size, fine for patterns of <= ~6.
  std::vector<std::map<std::string, std::string>> find_pattern(
      const WorkflowGraph& pattern) const;

  /// Element-wise minimum gauge profile across all components — the
  /// "weakest link" reusability context of the whole workflow.
  GaugeProfile aggregate_profile() const;

  /// Re-partition granularity (the Composable tier in action): collapse
  /// the induced subgraph over `member_ids` into a single BundledWorkflow
  /// component named `bundle_id`. Edges crossing the boundary become ports
  /// on the bundle (named after the inner port they wrap); internal edges
  /// disappear. The bundle's gauge profile is the members' element-wise
  /// minimum. Throws ValidationError if members are empty/unknown, or if
  /// the collapse would create a cycle through the bundle.
  WorkflowGraph collapse(const std::vector<std::string>& member_ids,
                         const std::string& bundle_id) const;

  Json to_json() const;
  static WorkflowGraph from_json(const Json& json);

 private:
  std::string name_;
  std::map<std::string, Component> components_;
  std::vector<Edge> edges_;
};

/// The canonical collection/selection/forwarding pattern of Section V-C:
/// source (Executable) -> scheduler (InternalService) -> sink (Executable).
WorkflowGraph collection_selection_forwarding_pattern();

}  // namespace ff::core
