#include "core/assessment.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ff::core {

namespace {

double manual_minutes(const Component& component,
                      const std::vector<ReuseContext>& contexts) {
  double total = 0;
  for (const auto& context : contexts) {
    total += summarize(interventions_for(component, context)).manual_minutes;
  }
  return total;
}

}  // namespace

AssessmentReport assess(const WorkflowGraph& workflow,
                        const std::vector<ReuseContext>& contexts) {
  AssessmentReport report;
  report.workflow_name = workflow.name();
  report.aggregate = workflow.aggregate_profile();

  for (const auto& id : workflow.component_ids()) {
    const Component& component = workflow.component(id);
    for (const auto& context : contexts) {
      const DebtSummary summary = summarize(interventions_for(component, context));
      report.total_debt.manual_count += summary.manual_count;
      report.total_debt.automated_count += summary.automated_count;
      report.total_debt.manual_minutes += summary.manual_minutes;
    }

    const double baseline = manual_minutes(component, contexts);
    for (Gauge gauge : kAllGauges) {
      const uint8_t current = component.profile().tier(gauge);
      if (static_cast<size_t>(current) + 1 >= tier_count(gauge)) continue;
      Component upgraded = component;
      upgraded.profile().set_tier(gauge, static_cast<uint8_t>(current + 1));
      const double saved = baseline - manual_minutes(upgraded, contexts);
      if (saved <= 0) continue;
      Recommendation recommendation;
      recommendation.component_id = id;
      recommendation.gauge = gauge;
      recommendation.current_tier = current;
      recommendation.recommended_tier = static_cast<uint8_t>(current + 1);
      recommendation.rationale =
          "raise " + std::string(gauge_name(gauge)) + " to '" +
          std::string(tier_name(gauge, current + 1)) + "': " +
          std::string(tier_description(gauge, current + 1));
      recommendation.manual_minutes_saved = saved;
      report.recommendations.push_back(std::move(recommendation));
    }
  }

  std::stable_sort(report.recommendations.begin(), report.recommendations.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.manual_minutes_saved > b.manual_minutes_saved;
                   });
  return report;
}

Json AssessmentReport::to_json() const {
  Json out = Json::object();
  out["workflow"] = workflow_name;
  out["aggregate"] = aggregate.to_json();
  Json debt = Json::object();
  debt["manual_steps"] = static_cast<int64_t>(total_debt.manual_count);
  debt["automated_steps"] = static_cast<int64_t>(total_debt.automated_count);
  debt["manual_minutes"] = total_debt.manual_minutes;
  out["debt"] = std::move(debt);
  Json plan = Json::array();
  for (const Recommendation& recommendation : recommendations) {
    Json entry = Json::object();
    entry["component"] = recommendation.component_id;
    entry["gauge"] = std::string(gauge_key(recommendation.gauge));
    entry["from_tier"] = static_cast<int64_t>(recommendation.current_tier);
    entry["to_tier"] = static_cast<int64_t>(recommendation.recommended_tier);
    entry["minutes_saved"] = recommendation.manual_minutes_saved;
    entry["rationale"] = recommendation.rationale;
    plan.push_back(std::move(entry));
  }
  out["upgrade_plan"] = std::move(plan);
  return out;
}

std::string AssessmentReport::render() const {
  std::string out;
  out += "Assessment of workflow '" + workflow_name + "'\n";
  out += "Aggregate (weakest-link) gauge profile:\n" + aggregate.render();
  out += "Technical debt across contexts: " +
         std::to_string(total_debt.manual_count) + " manual steps (" +
         format_duration(total_debt.manual_minutes * 60.0) + " nominal), " +
         std::to_string(total_debt.automated_count) + " automated steps\n";
  if (!recommendations.empty()) {
    out += "Upgrade plan (by manual effort saved):\n";
    for (const auto& recommendation : recommendations) {
      out += "  " + pad_left(format_fixed(recommendation.manual_minutes_saved, 0), 5) +
             "m  " + recommendation.component_id + ": " + recommendation.rationale +
             "\n";
    }
  }
  return out;
}

}  // namespace ff::core
