#pragma once

#include <array>
#include <map>
#include <string>

#include "core/gauge.hpp"
#include "util/json.hpp"

namespace ff::core {

/// A component's position on all six gauge ladders, plus free-form evidence
/// notes per gauge ("schema: columns documented in README"). This is the
/// "reusability context" the paper attaches to every workflow artifact.
///
/// Profiles are deliberately *not* reducible to a single score — the paper
/// argues gauges are descriptive axes, not a metric (Section III-A). The
/// only aggregations offered are element-wise ones (dominates / min_tier).
class GaugeProfile {
 public:
  /// All gauges at tier 0 (Unknown).
  GaugeProfile() = default;

  uint8_t tier(Gauge gauge) const noexcept {
    return tiers_[static_cast<size_t>(gauge)];
  }

  /// Set a gauge's tier; throws ValidationError if out of the ladder.
  void set_tier(Gauge gauge, uint8_t tier);

  /// Raise a gauge to at least `tier` (no-op if already above).
  void raise_to(Gauge gauge, uint8_t tier);

  /// Evidence note explaining why the tier is justified.
  void set_evidence(Gauge gauge, std::string note);
  const std::string& evidence(Gauge gauge) const;

  /// True if every gauge of *this is >= the corresponding gauge of other.
  bool dominates(const GaugeProfile& other) const noexcept;

  /// True if tier(g) >= required.tier(g) for every gauge where required is
  /// above Unknown — i.e. `required` acts as a partial constraint.
  bool meets(const GaugeProfile& required) const noexcept;

  uint8_t min_tier() const noexcept;
  uint8_t min_data_tier() const noexcept;
  uint8_t min_software_tier() const noexcept;

  /// Sum of tiers — used only for *progress tracking* of one workflow over
  /// time, never for cross-workflow comparison (see paper Section III-A).
  int total_progress() const noexcept;

  Json to_json() const;
  static GaugeProfile from_json(const Json& json);

  /// Multi-line human-readable rendering with tier names.
  std::string render() const;

  bool operator==(const GaugeProfile& other) const {
    return tiers_ == other.tiers_;
  }

 private:
  std::array<uint8_t, kGaugeCount> tiers_{};  // value-init: all Unknown
  std::array<std::string, kGaugeCount> evidence_{};
};

/// Convenience builder for literal profiles in tests and examples.
GaugeProfile make_profile(uint8_t access, uint8_t schema, uint8_t semantics,
                          uint8_t granularity, uint8_t customizability,
                          uint8_t provenance);

/// This repository's own gauge profile — the paper's model applied to the
/// codebase that implements it, with evidence notes naming the artifacts
/// that justify each tier. The Provenance gauge sits at Exportable: the
/// structured trace layer (src/obs/) emits documented, schema-checked
/// events for every subsystem, and the JSONL/Chrome exporters are exactly
/// the "export policies" of that tier (contract: docs/trace_schema.md,
/// enforced by the trace_lint ctest).
GaugeProfile fairflow_self_profile();

}  // namespace ff::core
