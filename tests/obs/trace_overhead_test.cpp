// Smoke bounds on the tracing hot paths. These are deliberately generous
// (an order of magnitude above what a healthy build measures) so they only
// fire on a real regression — the precise numbers live in EXPERIMENTS.md,
// measured by bench/micro_bench.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "obs/trace.hpp"

namespace ff::obs {
namespace {

// Sanitizers (FF_SANITIZE=thread|address) slow every memory access ~10x,
// which breaks wall-clock budgets without saying anything about the code.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kSlowdown = 20.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kSlowdown = 20.0;
#else
constexpr double kSlowdown = 1.0;
#endif
#else
constexpr double kSlowdown = 1.0;
#endif

double ns_per_call(int iterations, const std::function<void(int)>& body) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) body(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iterations;
}

TEST(TraceOverhead, DisabledPathIsBranchCheap) {
  set_tracing(false);
  TraceRecorder::instance().clear();
  // Warm up, then measure: a disabled instant is one relaxed atomic load
  // and a branch. Budget 200 ns/call — two orders above the measured cost
  // on any machine this runs on, but far below an accidental mutex or
  // allocation sneaking into the gate.
  ns_per_call(10000, [](int i) { trace_instant("bench", "b.off", {{"i", i}}); });
  const double ns =
      ns_per_call(200000, [](int i) { trace_instant("bench", "b.off", {{"i", i}}); });
  EXPECT_LT(ns, 200.0 * kSlowdown);
  EXPECT_TRUE(TraceRecorder::instance().flush().empty());
}

TEST(TraceOverhead, EnabledEmitStaysMicrosecondScale) {
  auto& recorder = TraceRecorder::instance();
  recorder.set_ring_capacity(1 << 15);
  recorder.clear();
  set_tracing(true);
  ns_per_call(10000, [](int i) { trace_instant("bench", "b.on", {{"i", i}}); });
  recorder.clear();
  // One emit = uncontended lock + ring write + relaxed seq increment.
  // Budget 5 µs/call: roomy enough for CI noise, tight enough to catch an
  // accidental flush or allocation per event.
  const double ns =
      ns_per_call(20000, [](int i) { trace_instant("bench", "b.on", {{"i", i}}); });
  EXPECT_LT(ns, 5000.0 * kSlowdown);
  set_tracing(false);
  recorder.clear();
}

}  // namespace
}  // namespace ff::obs
