// Integration: the Savanna campaign runner's trace stream is a faithful,
// machine-actionable record of the job lifecycle — including retries —
// and reconstructs exactly the node timelines the executor reported.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "savanna/campaign_runner.hpp"
#include "savanna/timeline.hpp"
#include "util/error.hpp"

namespace ff::savanna {
namespace {

std::vector<sim::TaskSpec> tasks_with_durations(
    const std::vector<double>& durations) {
  std::vector<sim::TaskSpec> tasks;
  for (size_t i = 0; i < durations.size(); ++i) {
    sim::TaskSpec task;
    task.id = "t" + std::to_string(i);
    task.duration_s = durations[i];
    task.feature_index = static_cast<int>(i);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

const obs::Arg* find_arg(const obs::TraceEvent& event, const char* key) {
  for (size_t i = 0; i < event.arg_count; ++i) {
    if (std::strcmp(event.args[i].key, key) == 0) return &event.args[i];
  }
  return nullptr;
}

class SavannaTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::instance().set_ring_capacity(8192);
    obs::TraceRecorder::instance().clear();
    obs::set_tracing(true);
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::TraceRecorder::instance().clear();
  }
};

TEST_F(SavannaTraceTest, RetriedJobEmitsFullLifecycleSequence) {
  // t1 fails its first attempt, so the campaign needs a second allocation.
  CampaignRunOptions options;
  options.execution.nodes = 2;
  int t1_attempts = 0;
  options.execution.fails = [&](const sim::TaskSpec& task, int) {
    return task.id == "t1" && t1_attempts++ == 0;
  };
  RunTracker tracker;
  sim::Simulation sim;
  const auto result = run_with_resubmission(
      sim, tasks_with_durations({10, 20, 10, 10}), options, &tracker);
  ASSERT_EQ(result.allocations_used, 2u);
  ASSERT_EQ(result.completed_runs, 4u);

  // Project the trace onto run t1: the exact lifecycle, in order.
  std::vector<std::string> lifecycle;
  for (const auto& event : obs::TraceRecorder::instance().flush()) {
    const obs::Arg* run = find_arg(event, "run");
    if (!run || run->str_value != "t1") continue;
    std::string step = event.name;
    if (std::strcmp(event.name, "savanna.job.submit") == 0 ||
        std::strcmp(event.name, "savanna.job.retry") == 0) {
      step += "@" + std::to_string(find_arg(event, "attempt")->int_value);
    } else if (std::strcmp(event.name, "savanna.job.end") == 0) {
      step += ":" + find_arg(event, "outcome")->str_value;
    } else if (std::strcmp(event.name, "savanna.run.state") == 0) {
      continue;  // tracker's view, asserted separately below
    }
    lifecycle.push_back(step);
  }
  const std::vector<std::string> expected = {
      "savanna.job.submit@0", "savanna.job.start", "savanna.job.end:failed",
      "savanna.job.retry@1",  "savanna.job.submit@1",
      "savanna.job.start",    "savanna.job.end:done",
  };
  EXPECT_EQ(lifecycle, expected);
  EXPECT_EQ(tracker.attempts("t1"), 2u);
}

TEST_F(SavannaTraceTest, TrackerStateEventsMirrorProvenance) {
  CampaignRunOptions options;
  options.execution.nodes = 1;
  RunTracker tracker;
  sim::Simulation sim;
  run_with_resubmission(sim, tasks_with_durations({5, 5}), options, &tracker);

  size_t started = 0;
  size_t done = 0;
  for (const auto& event : obs::TraceRecorder::instance().flush()) {
    if (std::strcmp(event.name, "savanna.run.state") != 0) continue;
    const obs::Arg* state = find_arg(event, "state");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(event.clock, obs::ClockDomain::Virtual);
    if (state->str_value == "start") ++started;
    if (state->str_value == "done") ++done;
  }
  EXPECT_EQ(started, 2u);
  EXPECT_EQ(done, 2u);
}

TEST_F(SavannaTraceTest, TraceTimelineMatchesExecutionReport) {
  // The reconstruction from savanna.job.* events must agree with the
  // executor's own report — same intervals, same makespan, same busy time.
  const auto tasks = sim::make_ensemble(40, sim::DurationModel{}, 17);
  ExecutionOptions options;
  options.nodes = 5;
  sim::Simulation sim;
  const auto report = run_pilot(sim, tasks, options);
  const auto timeline =
      timeline_from_trace(obs::TraceRecorder::instance().flush());

  EXPECT_DOUBLE_EQ(timeline.makespan_s, report.makespan_s);
  EXPECT_NEAR(timeline.busy_node_seconds, report.busy_node_seconds, 1e-9);
  EXPECT_EQ(timeline.started, tasks.size());
  EXPECT_EQ(timeline.done, report.completed.size());
  ASSERT_EQ(timeline.node_timeline.size(), report.node_timeline.size());
  for (size_t node = 0; node < report.node_timeline.size(); ++node) {
    const auto& expected = report.node_timeline[node];
    const auto& actual = timeline.node_timeline[node];
    ASSERT_EQ(actual.size(), expected.size()) << "node " << node;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].start, expected[i].start);
      EXPECT_DOUBLE_EQ(actual[i].end, expected[i].end);
      EXPECT_EQ(actual[i].run_id, expected[i].run_id);
    }
  }
}

TEST_F(SavannaTraceTest, MalformedStreamsAreRejected) {
  std::vector<obs::TraceEvent> events(1);
  events[0].category = "savanna";
  events[0].name = "savanna.job.end";
  events[0].arg_count = 2;
  events[0].args[0] = obs::Arg("run", "ghost");
  events[0].args[1] = obs::Arg("node", 0);
  EXPECT_THROW(timeline_from_trace(events), ValidationError);

  events[0].name = "savanna.job.start";
  EXPECT_THROW(timeline_from_trace(events), ValidationError);  // never ends
}

}  // namespace
}  // namespace ff::savanna
