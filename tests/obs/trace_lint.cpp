// trace_lint: the executable behind the `trace_lint` ctest. Runs the
// quickstart provenance tour, then validates every emitted event against
// docs/trace_schema.md — the schema doc is a *contract*, so an event name
// or argument key that is emitted but not documented fails the build's
// test suite (and so does a malformed envelope).
//
// The contract is enforced in both directions: an event *documented* in
// the catalog that the tour never emits is a dead schema entry — either
// the instrumentation site was removed (delete the row) or the tour lost
// coverage (restore it). Events whose trigger the tour deliberately does
// not reproduce are allowlisted below, each with its reason.
//
//   trace_lint <quickstart-binary> <out.jsonl> <trace_schema.md>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

int g_failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "trace_lint: %s\n", message.c_str());
  ++g_failures;
}

/// Every `backticked` token in the markdown doc. Event names and argument
/// keys must each appear as one to count as documented.
std::set<std::string> backticked_tokens(const std::string& text) {
  std::set<std::string> tokens;
  size_t pos = 0;
  while ((pos = text.find('`', pos)) != std::string::npos) {
    const size_t end = text.find('`', pos + 1);
    if (end == std::string::npos) break;
    tokens.insert(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return tokens;
}

bool has_string(const ff::Json& object, const char* key) {
  return object.contains(key) && object[key].is_string();
}

/// Event names the catalog tables document: the first backticked token of
/// a markdown table row, when it is dotted (`savanna.job.submit`). The
/// dot requirement keeps envelope-field rows (`seq`, `ts`, ...) out.
std::set<std::string> documented_event_names(const std::string& text) {
  std::set<std::string> names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t bar = line.find_first_not_of(" \t");
    if (bar == std::string::npos || line[bar] != '|') continue;
    const size_t tick = line.find('`', bar);
    if (tick == std::string::npos) continue;
    // Only a backtick directly opening the first cell counts — rows whose
    // first cell is prose (the worked example is fenced, not a table).
    if (line.find_first_not_of(" \t", bar + 1) != tick) continue;
    const size_t end = line.find('`', tick + 1);
    if (end == std::string::npos) continue;
    const std::string token = line.substr(tick + 1, end - tick - 1);
    if (token.find('.') != std::string::npos) names.insert(token);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: trace_lint <quickstart> <out.jsonl> <schema.md>\n");
    return 2;
  }
  const std::string quickstart = argv[1];
  const std::string jsonl_path = argv[2];
  const std::string schema_path = argv[3];

  const std::string command =
      "\"" + quickstart + "\" --trace \"" + jsonl_path + "\"";
  if (std::system(command.c_str()) != 0) {
    fail("quickstart --trace failed: " + command);
    return 1;
  }

  const std::set<std::string> documented =
      backticked_tokens(ff::read_file(schema_path));
  const std::set<std::string> valid_clocks = {"wall", "virtual"};
  const std::set<std::string> valid_kinds = {"begin", "end", "instant",
                                             "counter"};

  std::istringstream lines(ff::read_file(jsonl_path));
  std::string line;
  size_t count = 0;
  int64_t last_seq = -1;
  std::set<std::string> names_seen;
  std::set<std::string> undocumented;

  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++count;
    ff::Json event;
    try {
      event = ff::Json::parse(line);
    } catch (const std::exception& error) {
      fail("line " + std::to_string(count) + ": not JSON (" + error.what() +
           ")");
      continue;
    }
    if (!event.is_object()) {
      fail("line " + std::to_string(count) + ": not an object");
      continue;
    }

    // Envelope: exactly the fields the schema doc promises.
    if (!event.contains("seq") || !event["seq"].is_int() ||
        !event.contains("ts") || !event["ts"].is_number() ||
        !has_string(event, "clock") || !has_string(event, "kind") ||
        !has_string(event, "cat") || !has_string(event, "name") ||
        !event.contains("tid") || !event["tid"].is_int() ||
        !event.contains("args") || !event["args"].is_object()) {
      fail("line " + std::to_string(count) + ": bad envelope: " + line);
      continue;
    }
    if (event["seq"].as_int() <= last_seq) {
      fail("line " + std::to_string(count) + ": seq not increasing");
    }
    last_seq = event["seq"].as_int();
    if (!valid_clocks.count(event["clock"].as_string())) {
      fail("line " + std::to_string(count) + ": unknown clock '" +
           event["clock"].as_string() + "'");
    }
    const std::string kind = event["kind"].as_string();
    if (!valid_kinds.count(kind)) {
      fail("line " + std::to_string(count) + ": unknown kind '" + kind + "'");
    }

    const std::string name = event["name"].as_string();
    names_seen.insert(name);
    if (!documented.count(name) && undocumented.insert(name).second) {
      fail("event `" + name + "` is emitted but not documented in " +
           schema_path);
    }
    for (const auto& [key, value] : event["args"].as_object()) {
      (void)value;
      if (!documented.count(key)) {
        const std::string qualified = name + "/" + key;
        if (undocumented.insert(qualified).second) {
          fail("argument `" + key + "` of `" + name +
               "` is not documented in " + schema_path);
        }
      }
    }
    if (kind == "counter" && !event["args"].contains("value")) {
      fail("line " + std::to_string(count) + ": counter without `value` arg");
    }
  }

  if (count == 0) fail("no events in " + jsonl_path);

  // Reverse direction: every cataloged event must actually fire during the
  // tour, unless its trigger is one the tour deliberately avoids.
  const std::set<std::string> dead_entry_allowlist = {
      // The tour's pipeline queue uses Overflow::Block, which never evicts;
      // lossy-overflow eviction is covered by tests/stream/pipeline_test.
      "stream.pipeline.drop",
      // Emitted only when a blocked channel op exhausts its spin budget and
      // actually sleeps — whether the tour's producer ever parks depends on
      // scheduling, so the event is inherently timing-dependent here.
      // Deterministic coverage: tests/stream/channel_test
      // (WaiterCountsReflectBlockedThreads and the blocking-wakeup tests).
      "stream.channel.park",
      // Emitted when a socket client issues `subscribe`; the quickstart
      // tour is in-process and has no socket to stream onto. Deterministic
      // coverage: tests/service/server_stream_test.
      "service.subscribe",
  };
  for (const std::string& name : documented_event_names(
           ff::read_file(schema_path))) {
    if (names_seen.count(name) || dead_entry_allowlist.count(name)) continue;
    fail("event `" + name + "` is documented in " + schema_path +
         " but the quickstart tour never emitted it — dead schema entry "
         "(delete the row, restore tour coverage, or allowlist it in "
         "trace_lint.cpp with a reason)");
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "trace_lint: %d failure(s) over %zu events\n",
                 g_failures, count);
    return 1;
  }
  std::printf("trace_lint: %zu events, %zu distinct names, all documented\n",
              count, names_seen.size());
  return 0;
}
